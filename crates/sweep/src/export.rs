//! Dataset export: the open-sourced artifacts the paper promises —
//! tabular CSV (one row per sample) and JSON (full fidelity via serde).

use crate::dataset::Dataset;
use crate::runner::SettingData;
use std::io::{self, Write};

/// CSV header for the tabular dataset.
pub const CSV_HEADER: &str = "arch,app,input_size,num_threads,omp_places,omp_proc_bind,\
omp_schedule,kmp_library,kmp_blocktime,kmp_force_reduction,kmp_align_alloc,speedup";

/// Write the processed dataset as CSV.
pub fn write_csv<W: Write>(ds: &Dataset, out: &mut W) -> io::Result<()> {
    writeln!(out, "{CSV_HEADER}")?;
    for r in &ds.records {
        let c = &r.config;
        writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{:.6}",
            r.arch.id(),
            r.app,
            r.input_size,
            c.num_threads,
            c.places.env_value().unwrap_or("unset"),
            c.proc_bind.env_value().unwrap_or("unset"),
            c.schedule.env_value(),
            c.library.env_value(),
            c.blocktime.env_value(),
            c.force_reduction.env_value().unwrap_or("unset"),
            c.align_alloc.bytes(),
            r.speedup,
        )?;
    }
    Ok(())
}

/// Serialize raw batches (the "raw output" artifact) as JSON.
pub fn write_raw_json<W: Write>(batches: &[SettingData], out: &mut W) -> io::Result<()> {
    serde_json::to_writer(out, batches).map_err(io::Error::other)
}

/// Round-trip helper used by tests and the repro binaries.
pub fn read_raw_json(data: &[u8]) -> io::Result<Vec<SettingData>> {
    serde_json::from_slice(data).map_err(io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{RawSample, RunKey};
    use omptune_core::analysis::AnalysisRecord;
    use omptune_core::{Arch, TuningConfig};

    fn small_dataset() -> Dataset {
        Dataset {
            records: vec![AnalysisRecord {
                arch: Arch::Milan,
                app: "cg".into(),
                input_size: 1.0,
                config: TuningConfig::default_for(Arch::Milan, 96),
                speedup: 1.25,
            }],
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut buf = Vec::new();
        write_csv(&small_dataset(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next().unwrap(), CSV_HEADER);
        let row = lines.next().unwrap();
        assert!(row.starts_with("milan,cg,1,96,unset,unset,static,"));
        assert!(row.ends_with("1.250000"));
        assert_eq!(row.split(',').count(), CSV_HEADER.split(',').count());
    }

    #[test]
    fn raw_json_roundtrip() {
        let batches = vec![SettingData {
            key: RunKey::new(Arch::A64fx, "ep", 2, 48),
            samples: vec![RawSample {
                config_index: 17,
                config: TuningConfig::default_for(Arch::A64fx, 48),
                runtimes: vec![0.5, 0.51, 0.49],
                telemetry: crate::runner::SampleTelemetry {
                    virtual_ns: 5.0e8,
                    regions: 12,
                    breakdown: omptel::Breakdown {
                        compute_ns: 4.0e8,
                        imbalance_ns: 1.0e8,
                        ..omptel::Breakdown::default()
                    },
                    energy: omptel::EnergyBreakdown::default(),
                },
            }],
            default_runtimes: vec![0.5, 0.5, 0.5],
            default_telemetry: crate::runner::SampleTelemetry {
                virtual_ns: 5.0e8,
                regions: 12,
                breakdown: omptel::Breakdown {
                    compute_ns: 4.0e8,
                    imbalance_ns: 1.0e8,
                    ..omptel::Breakdown::default()
                },
                energy: omptel::EnergyBreakdown::default(),
            },
        }];
        let mut buf = Vec::new();
        write_raw_json(&batches, &mut buf).unwrap();
        let back = read_raw_json(&buf).unwrap();
        assert_eq!(back, batches);
    }
}
