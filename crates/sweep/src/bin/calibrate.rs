//! Calibration harness: prints, per (application, architecture), the
//! default runtime and per-setting max speedups over the full
//! configuration space, next to the paper's reported ranges.
//!
//! Used during development to tune the workload models and cost
//! constants; kept as a reproducible artifact (see EXPERIMENTS.md).

use omptune_core::{Arch, ConfigSpace, TuningConfig};
use workloads::{apps_on, settings_for};

/// Paper Table VI ranges (plus Table V per-arch rows where given).
fn paper_range(app: &str) -> (f64, f64) {
    match app {
        "alignment" => (1.022, 1.186),
        "bt" => (1.027, 1.185),
        "cg" => (1.000, 1.857),
        "ep" => (1.000, 1.090),
        "ft" => (1.010, 1.545),
        "health" => (1.282, 2.218),
        "lu" => (1.020, 1.121),
        "lulesh" => (1.004, 1.062),
        "mg" => (1.011, 2.167),
        "nqueens" => (2.342, 4.851),
        "rsbench" => (1.004, 1.213),
        "sort" => (1.174, 1.180),
        "strassen" => (1.023, 1.025),
        "su3bench" => (1.002, 2.279),
        "xsbench" => (1.001, 2.602),
        _ => (0.0, 0.0),
    }
}

fn main() {
    let mut per_app: std::collections::BTreeMap<String, Vec<f64>> = Default::default();
    for arch in Arch::ALL {
        println!("=== {} ===", arch.display_name());
        let mut arch_maxima = Vec::new();
        for app in apps_on(arch) {
            let mut setting_maxima = Vec::new();
            let mut default_secs = Vec::new();
            for setting in settings_for(app, arch) {
                let model = (app.model)(arch, setting);
                let space = ConfigSpace::new(arch, setting.num_threads);
                let default = TuningConfig::default_for(arch, setting.num_threads);
                let base = simrt::simulate(arch, &default, &model, 0).seconds();
                default_secs.push(base);
                let mut best = f64::NEG_INFINITY;
                for config in space.iter() {
                    let t = simrt::simulate(arch, &config, &model, 0).seconds();
                    let sp = base / t;
                    if sp > best {
                        best = sp;
                    }
                }
                setting_maxima.push(best);
                arch_maxima.push(best);
            }
            let lo = setting_maxima.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = setting_maxima.iter().cloned().fold(0.0f64, f64::max);
            let (plo, phi) = paper_range(app.name);
            println!(
                "{:>10}  max-speedup per setting: {:.3} - {:.3}   (paper app-range {:.3} - {:.3})  default_s={:?}",
                app.name,
                lo,
                hi,
                plo,
                phi,
                default_secs.iter().map(|s| (s * 1000.0).round() / 1000.0).collect::<Vec<_>>()
            );
            per_app
                .entry(app.name.to_string())
                .or_default()
                .extend(setting_maxima);
        }
        arch_maxima.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = arch_maxima[arch_maxima.len() / 2];
        let max = arch_maxima.last().copied().unwrap_or(0.0);
        println!(
            "--- {} groups={} median={:.3} max={:.3} (paper medians: a64fx 1.02, milan 1.15, skylake 1.065; maxes 4.85/2.60/3.47)",
            arch.id(),
            arch_maxima.len(),
            median,
            max
        );
    }
    println!("\n=== Table VI comparison (range of per-(arch,setting) maxima) ===");
    for (app, maxima) in per_app {
        let lo = maxima.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = maxima.iter().cloned().fold(0.0f64, f64::max);
        let (plo, phi) = paper_range(&app);
        println!(
            "{:>10}  ours {:.3} - {:.3}   paper {:.3} - {:.3}",
            app, lo, hi, plo, phi
        );
    }
}
