//! `omptel-report` — "why was this slow" analysis over sweep telemetry.
//!
//! Modes:
//!
//! - `omptel-report [arch] [app]` — sweep a strided slice of one
//!   setting, pick the best and worst configurations by mean runtime,
//!   and render their telemetry side by side (paper Table VI shape):
//!   top time sink, imbalance ratio, steal efficiency, full sink table.
//! - `omptel-report --json [arch] [app]` — the same best-vs-worst
//!   analysis as schema-stamped machine-readable JSON (sink and energy
//!   breakdowns, scheduler statistics), for scripts that post-process
//!   the report instead of reading it.
//! - `omptel-report --spans [arch] [app] [--trace-out PATH]` — run one
//!   setting's sweep under the flight recorder (simulator virtual spans
//!   included) and print a per-span-kind latency quantile table plus
//!   the per-sample wall-latency distribution; `--trace-out` also dumps
//!   the Chrome trace_event JSON.
//! - `omptel-report --self-check` — run the acceptance invariants and
//!   exit nonzero on violation: every sampled region profile's breakdown
//!   must sum to the region's elapsed virtual time, and the pathological
//!   configuration (master binding at full thread count) must be
//!   diagnosed as dominated by barrier/imbalance wait.

use omptune_core::{Arch, OmpPlaces, OmpProcBind, TuningConfig};
use std::fmt::Write as _;
use std::process::ExitCode;
use sweep::{Scope, SweepSpec};
use workloads::Setting;

fn parse_arch(s: &str) -> Option<Arch> {
    Arch::ALL.iter().copied().find(|a| a.id() == s)
}

/// Compact nanosecond formatting for quantile tables.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Scheduler-statistics table (sweep counters the summary previously
/// kept to itself).
fn stats_table(stats: &sweep::SweepStats) -> String {
    let mut out = String::from("scheduler statistics\n");
    let rows: [(&str, u64); 6] = [
        ("plan cache hits", stats.plan_hits),
        ("plan cache misses", stats.plan_misses),
        ("sample cache hits", stats.sample_hits),
        ("sample cache misses", stats.sample_misses),
        ("unit steals", stats.steals),
        ("units executed", stats.units),
    ];
    for (label, v) in rows {
        let _ = writeln!(out, "  {label:<20} {v:>10}");
    }
    out
}

/// Quantile row of one histogram: count, p50/p95/p99 midpoints, max.
fn quantile_row(label: &str, h: &omptel::Histogram) -> String {
    let mid = |q: f64| h.quantile(q).map(|b| fmt_ns(b.mid())).unwrap_or_default();
    format!(
        "  {label:<14} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
        h.count,
        mid(0.50),
        mid(0.95),
        mid(0.99),
        fmt_ns(h.max)
    )
}

/// One-line description of a configuration for report titles.
fn describe(config: &TuningConfig) -> String {
    format!(
        "places={} bind={} sched={} lib={} blocktime={} red={} align={}",
        config.places.env_value().unwrap_or("unset"),
        config.proc_bind.env_value().unwrap_or("unset"),
        config.schedule.env_value(),
        config.library.env_value(),
        config.blocktime.env_value(),
        config.force_reduction.env_value().unwrap_or("unset"),
        config.align_alloc.bytes(),
    )
}

/// Region-level telemetry summary of one configuration: re-simulate it
/// under an exclusive session so the summary carries region profiles
/// (histograms, max region) on top of the sink totals.
fn summarize(
    arch: Arch,
    config: &TuningConfig,
    model: &simrt::Model,
    seed: u64,
) -> omptel::Summary {
    let session = omptel::session().expect("no concurrent telemetry session");
    simrt::simulate(arch, config, model, seed);
    session.finish().summary()
}

/// Sweep the standard report slice: strided 50, largest setting of
/// `app_name`, catalog position 0 — shared by the text and JSON modes
/// so both describe the same samples.
#[allow(clippy::type_complexity)]
fn report_slice(
    arch: Arch,
    app_name: &str,
) -> Result<
    (
        &'static workloads::AppSpec,
        Setting,
        SweepSpec,
        sweep::SettingData,
        sweep::SweepStats,
    ),
    String,
> {
    let app = workloads::app(app_name).ok_or_else(|| format!("unknown app {app_name:?}"))?;
    if !workloads::available_on(app_name, arch) {
        return Err(format!("{app_name} is not available on {}", arch.id()));
    }
    let spec = SweepSpec {
        scope: Scope::Strided(50),
        ..SweepSpec::default()
    };
    let setting = workloads::settings_for(app, arch)
        .last()
        .copied()
        .ok_or_else(|| format!("{app_name} has no settings on {}", arch.id()))?;
    let (data, stats) =
        sweep::sweep_setting_scheduled(arch, app, setting, 0, &spec, &sweep::SweepOptions::new(4));
    Ok((app, setting, spec, data, stats))
}

fn best_vs_worst(arch: Arch, app_name: &str) -> Result<String, String> {
    let (app, setting, spec, data, stats) = report_slice(arch, app_name)?;
    let best = data
        .samples
        .iter()
        .min_by(|a, b| a.mean_runtime().total_cmp(&b.mean_runtime()))
        .ok_or("empty sweep")?;
    let worst = data
        .samples
        .iter()
        .max_by(|a, b| a.mean_runtime().total_cmp(&b.mean_runtime()))
        .ok_or("empty sweep")?;

    let model = (app.model)(arch, setting);
    let best_sum = summarize(arch, &best.config, &model, spec.seed);
    let worst_sum = summarize(arch, &worst.config, &model, spec.seed);
    let best_ex = omptel::explain(
        &format!(
            "best  {app_name}/{} t={} speedup {:.2}x | {}",
            arch.id(),
            setting.num_threads,
            data.speedup(best),
            describe(&best.config)
        ),
        &best_sum,
    );
    let worst_ex = omptel::explain(
        &format!(
            "worst {app_name}/{} t={} speedup {:.2}x | {}",
            arch.id(),
            setting.num_threads,
            data.speedup(worst),
            describe(&worst.config)
        ),
        &worst_sum,
    );
    Ok(format!(
        "{}{}",
        omptel::render_pair((&best_ex, &best_sum), (&worst_ex, &worst_sum)),
        stats_table(&stats)
    ))
}

/// `--json`: the best-vs-worst analysis as deterministic hand-rolled
/// JSON (the same convention as the ompprof attribution export: schema
/// stamp first, fixed-precision decimals, stable key order).
fn json_report(arch: Arch, app_name: &str) -> Result<String, String> {
    let (_app, setting, spec, data, stats) = report_slice(arch, app_name)?;
    let best = data
        .samples
        .iter()
        .min_by(|a, b| a.mean_runtime().total_cmp(&b.mean_runtime()))
        .ok_or("empty sweep")?;
    let worst = data
        .samples
        .iter()
        .max_by(|a, b| a.mean_runtime().total_cmp(&b.mean_runtime()))
        .ok_or("empty sweep")?;
    let side = |s: &sweep::RawSample| {
        let t = &s.telemetry;
        let mut sinks = String::new();
        for (i, sink) in omptel::Sink::ALL.iter().enumerate() {
            if i > 0 {
                sinks.push_str(", ");
            }
            sinks.push_str(&format!(
                "\"{}\": {:.3}",
                format!("{sink:?}").to_lowercase(),
                t.breakdown.get(*sink)
            ));
        }
        let mut energy = format!("\"total_j\": {:.9}", t.energy.total_j);
        for sink in omptel::EnergySink::ALL {
            energy.push_str(&format!(
                ", \"{}_j\": {:.9}",
                format!("{sink:?}").to_lowercase(),
                t.energy.get(sink)
            ));
        }
        energy.push_str(&format!(
            ", \"edp_js\": {:.9}",
            t.energy.edp_js(t.virtual_ns)
        ));
        format!(
            "{{\"config\": \"{}\", \"speedup\": {:.6}, \"mean_runtime_s\": {:.9}, \
             \"virtual_ns\": {:.3},\n     \"sinks_ns\": {{{sinks}}},\n     \
             \"energy\": {{{energy}}}}}",
            describe(&s.config),
            data.speedup(s),
            s.mean_runtime(),
            t.virtual_ns
        )
    };
    let mut out = String::with_capacity(2048);
    out.push_str("{\n  \"schema\": \"omptel-report-v1\",\n");
    out.push_str(&format!(
        "  \"slice\": {{\"arch\": \"{}\", \"app\": \"{app_name}\", \"threads\": {}, \
         \"scope\": \"strided(50)\", \"seed\": {}, \"samples\": {}}},\n",
        arch.id(),
        setting.num_threads,
        spec.seed,
        data.samples.len()
    ));
    out.push_str(&format!("  \"best\": {},\n", side(best)));
    out.push_str(&format!("  \"worst\": {},\n", side(worst)));
    out.push_str(&format!(
        "  \"gap\": {:.6},\n",
        worst.mean_runtime() / best.mean_runtime()
    ));
    out.push_str(&format!(
        "  \"stats\": {{\"plan_hits\": {}, \"plan_misses\": {}, \"sample_hits\": {}, \
         \"sample_misses\": {}, \"steals\": {}, \"units\": {}}}\n}}\n",
        stats.plan_hits,
        stats.plan_misses,
        stats.sample_hits,
        stats.sample_misses,
        stats.steals,
        stats.units
    ));
    Ok(out)
}

/// `--spans`: sweep one setting under the flight recorder and report
/// per-span-kind duration quantiles, the sample latency distribution,
/// and (optionally) the Chrome trace.
fn spans_report(arch: Arch, app_name: &str, trace_out: Option<&str>) -> Result<String, String> {
    let app = workloads::app(app_name).ok_or_else(|| format!("unknown app {app_name:?}"))?;
    if !workloads::available_on(app_name, arch) {
        return Err(format!("{app_name} is not available on {}", arch.id()));
    }
    let spec = SweepSpec {
        scope: Scope::Strided(50),
        ..SweepSpec::default()
    };
    let setting = workloads::settings_for(app, arch)
        .last()
        .copied()
        .ok_or_else(|| format!("{app_name} has no settings on {}", arch.id()))?;

    let rec = omptel::Recorder::start(omptel::RecorderOptions {
        sim_spans: true,
        ..Default::default()
    })
    .map_err(|_| "another flight recorder is live".to_string())?;
    let progress = omptel::Progress::quiet("spans", 0);
    let opts = sweep::SweepOptions::new(4).with_progress(&progress);
    let (data, stats) = sweep::sweep_setting_scheduled(arch, app, setting, 0, &spec, &opts);
    let recording = rec.finish();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "span report: {app_name}/{} t={} ({} samples)",
        arch.id(),
        setting.num_threads,
        data.samples.len()
    );
    let _ = writeln!(
        out,
        "flight recorder: {} events across {} threads ({} dropped)",
        recording.total_events(),
        recording.threads.len(),
        recording.total_dropped()
    );
    let _ = writeln!(
        out,
        "  {:<14} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "span", "count", "p50", "p95", "p99", "max"
    );
    for (kind, hist) in recording.span_durations() {
        out.push_str(&quantile_row(kind.name(), &hist));
    }
    let lat = progress.latency_histogram();
    if !lat.is_empty() {
        out.push_str("sample wall latency\n");
        let _ = writeln!(
            out,
            "  {:<14} {:>8} {:>10} {:>10} {:>10} {:>10}",
            "", "count", "p50", "p95", "p99", "max"
        );
        out.push_str(&quantile_row("sample", &lat));
    }
    out.push_str(&stats_table(&stats));

    if let Some(path) = trace_out {
        omptel::validate_trace(&recording).map_err(|e| format!("trace validation: {e}"))?;
        let doc = omptel::chrome_trace_with_recording(&[], &recording);
        let json = serde_json::to_string(&doc).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| e.to_string())?;
        let _ = writeln!(out, "wrote {path}");
    }
    Ok(out)
}

/// The acceptance invariants, as a runnable check.
fn self_check() -> Result<(), String> {
    // 1. A sweep sample of an NPB workload: every region profile captured
    //    during simulation has a breakdown summing to its elapsed virtual
    //    time, and the sample-level aggregate closes against the total.
    let app = workloads::app("cg").expect("cg registered");
    let spec = SweepSpec {
        scope: Scope::Strided(400),
        ..SweepSpec::default()
    };
    let setting = Setting {
        input_code: 0,
        num_threads: 96,
    };
    let data = sweep::sweep_setting(Arch::Milan, app, setting, 0, &spec);
    if data.samples.is_empty() {
        return Err("self-check sweep produced no samples".into());
    }
    for s in &data.samples {
        let t = &s.telemetry;
        let sum = t.breakdown.sum();
        if (sum - t.virtual_ns).abs() > t.virtual_ns.max(1.0) * 1e-9 {
            return Err(format!(
                "sample {} breakdown sum {sum} != virtual total {}",
                s.config_index, t.virtual_ns
            ));
        }
    }
    let model = (app.model)(Arch::Milan, setting);
    let session = omptel::session().map_err(|e| e.to_string())?;
    simrt::simulate(Arch::Milan, &data.samples[0].config, &model, spec.seed);
    let batch = session.finish();
    if batch.regions.is_empty() {
        return Err("simulation recorded no region profiles".into());
    }
    for r in &batch.regions {
        let sum = r.breakdown.sum();
        if (sum - r.total_ns).abs() > r.total_ns.max(1.0) * 1e-9 {
            return Err(format!(
                "region {} breakdown sum {sum} != region total {}",
                r.name, r.total_ns
            ));
        }
    }
    println!(
        "self-check: {} samples and {} region profiles close against their totals",
        data.samples.len(),
        batch.regions.len()
    );

    // 2. The pathological configuration — every thread bound to the
    //    master's place — must be diagnosed as barrier/imbalance bound.
    let mut bad = TuningConfig::default_for(Arch::Milan, 96);
    bad.places = OmpPlaces::Cores;
    bad.proc_bind = OmpProcBind::Master;
    let summary = summarize(Arch::Milan, &bad, &model, spec.seed);
    let dominant = summary.dominant_sink();
    if dominant != omptel::Sink::Imbalance {
        return Err(format!(
            "pathological config diagnosed as {:?} ({}), expected barrier/imbalance wait",
            dominant,
            dominant.label()
        ));
    }
    println!(
        "self-check: master-bound config dominated by {} ({:.0}% of time)",
        dominant.label(),
        summary.sink_fraction(dominant) * 100.0
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--spans") {
        let mut arch = Arch::Milan;
        let mut app = "cg".to_string();
        let mut trace_out = None;
        let mut positional = 0usize;
        let mut rest = args[1..].iter();
        while let Some(a) = rest.next() {
            match a.as_str() {
                "--trace-out" => match rest.next() {
                    Some(p) => trace_out = Some(p.clone()),
                    None => {
                        eprintln!("--trace-out needs a value");
                        return ExitCode::FAILURE;
                    }
                },
                s => {
                    match positional {
                        0 => match parse_arch(s) {
                            Some(a) => arch = a,
                            None => {
                                eprintln!("unknown arch {s:?}");
                                return ExitCode::FAILURE;
                            }
                        },
                        1 => app = s.to_string(),
                        _ => {
                            eprintln!("unexpected argument: {s}");
                            return ExitCode::FAILURE;
                        }
                    }
                    positional += 1;
                }
            }
        }
        return match spans_report(arch, &app, trace_out.as_deref()) {
            Ok(report) => {
                print!("{report}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("omptel-report: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("--json") {
        let arch = match args.get(1) {
            Some(s) => match parse_arch(s) {
                Some(a) => a,
                None => {
                    eprintln!("unknown arch {s:?} (expected a64fx, skylake, or milan)");
                    return ExitCode::FAILURE;
                }
            },
            None => Arch::Milan,
        };
        let app = args.get(2).map(String::as_str).unwrap_or("cg");
        return match json_report(arch, app) {
            Ok(doc) => {
                print!("{doc}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("omptel-report: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("--self-check") {
        return match self_check() {
            Ok(()) => {
                println!("self-check: PASS");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("self-check: FAIL: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let arch = match args.first() {
        Some(s) => match parse_arch(s) {
            Some(a) => a,
            None => {
                eprintln!("unknown arch {s:?} (expected a64fx, skylake, or milan)");
                return ExitCode::FAILURE;
            }
        },
        None => Arch::Milan,
    };
    let app = args.get(1).map(String::as_str).unwrap_or("cg");
    match best_vs_worst(arch, app) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("omptel-report: {e}");
            ExitCode::FAILURE
        }
    }
}
