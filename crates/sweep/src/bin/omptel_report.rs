//! `omptel-report` — "why was this slow" analysis over sweep telemetry.
//!
//! Modes:
//!
//! - `omptel-report [arch] [app]` — sweep a strided slice of one
//!   setting, pick the best and worst configurations by mean runtime,
//!   and render their telemetry side by side (paper Table VI shape):
//!   top time sink, imbalance ratio, steal efficiency, full sink table.
//! - `omptel-report --self-check` — run the acceptance invariants and
//!   exit nonzero on violation: every sampled region profile's breakdown
//!   must sum to the region's elapsed virtual time, and the pathological
//!   configuration (master binding at full thread count) must be
//!   diagnosed as dominated by barrier/imbalance wait.

use omptune_core::{Arch, OmpPlaces, OmpProcBind, TuningConfig};
use std::process::ExitCode;
use sweep::{Scope, SweepSpec};
use workloads::Setting;

fn parse_arch(s: &str) -> Option<Arch> {
    Arch::ALL.iter().copied().find(|a| a.id() == s)
}

/// One-line description of a configuration for report titles.
fn describe(config: &TuningConfig) -> String {
    format!(
        "places={} bind={} sched={} lib={} blocktime={} red={} align={}",
        config.places.env_value().unwrap_or("unset"),
        config.proc_bind.env_value().unwrap_or("unset"),
        config.schedule.env_value(),
        config.library.env_value(),
        config.blocktime.env_value(),
        config.force_reduction.env_value().unwrap_or("unset"),
        config.align_alloc.bytes(),
    )
}

/// Region-level telemetry summary of one configuration: re-simulate it
/// under an exclusive session so the summary carries region profiles
/// (histograms, max region) on top of the sink totals.
fn summarize(
    arch: Arch,
    config: &TuningConfig,
    model: &simrt::Model,
    seed: u64,
) -> omptel::Summary {
    let session = omptel::session().expect("no concurrent telemetry session");
    simrt::simulate(arch, config, model, seed);
    session.finish().summary()
}

fn best_vs_worst(arch: Arch, app_name: &str) -> Result<String, String> {
    let app = workloads::app(app_name).ok_or_else(|| format!("unknown app {app_name:?}"))?;
    if !workloads::available_on(app_name, arch) {
        return Err(format!("{app_name} is not available on {}", arch.id()));
    }
    let spec = SweepSpec {
        scope: Scope::Strided(50),
        ..SweepSpec::default()
    };
    let setting = workloads::settings_for(app, arch)
        .last()
        .copied()
        .ok_or_else(|| format!("{app_name} has no settings on {}", arch.id()))?;
    let data = sweep::sweep_setting(arch, app, setting, 0, &spec);
    let best = data
        .samples
        .iter()
        .min_by(|a, b| a.mean_runtime().total_cmp(&b.mean_runtime()))
        .ok_or("empty sweep")?;
    let worst = data
        .samples
        .iter()
        .max_by(|a, b| a.mean_runtime().total_cmp(&b.mean_runtime()))
        .ok_or("empty sweep")?;

    let model = (app.model)(arch, setting);
    let best_sum = summarize(arch, &best.config, &model, spec.seed);
    let worst_sum = summarize(arch, &worst.config, &model, spec.seed);
    let best_ex = omptel::explain(
        &format!(
            "best  {app_name}/{} t={} speedup {:.2}x | {}",
            arch.id(),
            setting.num_threads,
            data.speedup(best),
            describe(&best.config)
        ),
        &best_sum,
    );
    let worst_ex = omptel::explain(
        &format!(
            "worst {app_name}/{} t={} speedup {:.2}x | {}",
            arch.id(),
            setting.num_threads,
            data.speedup(worst),
            describe(&worst.config)
        ),
        &worst_sum,
    );
    Ok(omptel::render_pair(
        (&best_ex, &best_sum),
        (&worst_ex, &worst_sum),
    ))
}

/// The acceptance invariants, as a runnable check.
fn self_check() -> Result<(), String> {
    // 1. A sweep sample of an NPB workload: every region profile captured
    //    during simulation has a breakdown summing to its elapsed virtual
    //    time, and the sample-level aggregate closes against the total.
    let app = workloads::app("cg").expect("cg registered");
    let spec = SweepSpec {
        scope: Scope::Strided(400),
        ..SweepSpec::default()
    };
    let setting = Setting {
        input_code: 0,
        num_threads: 96,
    };
    let data = sweep::sweep_setting(Arch::Milan, app, setting, 0, &spec);
    if data.samples.is_empty() {
        return Err("self-check sweep produced no samples".into());
    }
    for s in &data.samples {
        let t = &s.telemetry;
        let sum = t.breakdown.sum();
        if (sum - t.virtual_ns).abs() > t.virtual_ns.max(1.0) * 1e-9 {
            return Err(format!(
                "sample {} breakdown sum {sum} != virtual total {}",
                s.config_index, t.virtual_ns
            ));
        }
    }
    let model = (app.model)(Arch::Milan, setting);
    let session = omptel::session().map_err(|e| e.to_string())?;
    simrt::simulate(Arch::Milan, &data.samples[0].config, &model, spec.seed);
    let batch = session.finish();
    if batch.regions.is_empty() {
        return Err("simulation recorded no region profiles".into());
    }
    for r in &batch.regions {
        let sum = r.breakdown.sum();
        if (sum - r.total_ns).abs() > r.total_ns.max(1.0) * 1e-9 {
            return Err(format!(
                "region {} breakdown sum {sum} != region total {}",
                r.name, r.total_ns
            ));
        }
    }
    println!(
        "self-check: {} samples and {} region profiles close against their totals",
        data.samples.len(),
        batch.regions.len()
    );

    // 2. The pathological configuration — every thread bound to the
    //    master's place — must be diagnosed as barrier/imbalance bound.
    let mut bad = TuningConfig::default_for(Arch::Milan, 96);
    bad.places = OmpPlaces::Cores;
    bad.proc_bind = OmpProcBind::Master;
    let summary = summarize(Arch::Milan, &bad, &model, spec.seed);
    let dominant = summary.dominant_sink();
    if dominant != omptel::Sink::Imbalance {
        return Err(format!(
            "pathological config diagnosed as {:?} ({}), expected barrier/imbalance wait",
            dominant,
            dominant.label()
        ));
    }
    println!(
        "self-check: master-bound config dominated by {} ({:.0}% of time)",
        dominant.label(),
        summary.sink_fraction(dominant) * 100.0
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--self-check") {
        return match self_check() {
            Ok(()) => {
                println!("self-check: PASS");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("self-check: FAIL: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let arch = match args.first() {
        Some(s) => match parse_arch(s) {
            Some(a) => a,
            None => {
                eprintln!("unknown arch {s:?} (expected a64fx, skylake, or milan)");
                return ExitCode::FAILURE;
            }
        },
        None => Arch::Milan,
    };
    let app = args.get(1).map(String::as_str).unwrap_or("cg");
    match best_vs_worst(arch, app) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("omptel-report: {e}");
            ExitCode::FAILURE
        }
    }
}
