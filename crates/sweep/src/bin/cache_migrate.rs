//! `cache-migrate` — upgrade a legacy JSON-lines sample cache to the
//! indexed binary form.
//!
//! Walks a cache directory (the root and its per-architecture
//! subdirectories), converting every `*.jsonl` batch into the
//! fixed-record `*.bin` form the sweep's warm path reads. The JSONL
//! files are left in place as the archival form; conversion is atomic
//! per file (tmp + rename) and idempotent. Exit status is nonzero when
//! the directory cannot be walked or a converted file cannot be
//! written; unparsable records are skipped and reported, matching the
//! tolerant loader's semantics.

use std::process::ExitCode;

const HELP: &str = "\
cache-migrate — upgrade a JSONL sample cache to the indexed binary form

USAGE:
    cache-migrate CACHE_DIR

The archival .jsonl batches are kept; a .bin sibling is written next to
each (atomically, idempotently). Records that cannot be parsed, or that
disagree with their file's leading spec, are skipped — they were
already cache misses.

OPTIONS:
    -h, --help      print this help
";

fn main() -> ExitCode {
    let mut dir = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{HELP}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("cache-migrate: unknown option {other}");
                return ExitCode::FAILURE;
            }
            p => {
                if dir.replace(p.to_string()).is_some() {
                    eprintln!("cache-migrate: more than one directory given");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    let Some(dir) = dir else {
        eprint!("{HELP}");
        return ExitCode::FAILURE;
    };
    match sweep::cache::migrate_cache_dir(std::path::Path::new(&dir)) {
        Ok(report) => {
            println!(
                "cache-migrate: {} file(s) converted, {} record(s) written, \
                 {} record(s) skipped, {} file(s) skipped",
                report.files, report.records, report.skipped_records, report.skipped_files
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cache-migrate: FAIL: {dir}: {e}");
            ExitCode::FAILURE
        }
    }
}
