//! Dataset collection binary: produce the open-sourced artifacts the
//! paper promises — the processed tabular CSV and the raw per-batch JSON.
//!
//! Usage: `collect [fast|paper|full|pruned] [output-dir]`
//! Default: paper scope into `./dataset/`. `pruned` sweeps only the
//! configurations `omplint` certifies as canonical (no redundant or
//! invalid points).

use std::fs;
use std::io::BufWriter;
use std::path::PathBuf;
use sweep::{Dataset, Scope, SweepSpec};

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scope = match args.first().map(String::as_str) {
        Some("fast") => Scope::Strided(24),
        Some("full") => Scope::Full,
        Some("pruned") => Scope::Pruned,
        _ => Scope::PaperSized,
    };
    let out_dir = PathBuf::from(args.get(1).map(String::as_str).unwrap_or("dataset"));
    fs::create_dir_all(&out_dir)?;

    let spec = SweepSpec {
        scope,
        ..SweepSpec::default()
    };
    eprintln!("sweeping all architectures ({scope:?}) ...");
    let mut batches = sweep::sweep_all(&spec);
    let mut dropped = 0usize;
    for b in &mut batches {
        dropped += sweep::clean(b, spec.reps as usize).dropped.len();
    }
    let dataset = Dataset::build(&batches);
    eprintln!(
        "collected {} samples across {} batches ({} dropped in cleaning)",
        dataset.records.len(),
        batches.len(),
        dropped
    );

    let csv_path = out_dir.join("samples.csv");
    let mut csv = BufWriter::new(fs::File::create(&csv_path)?);
    sweep::export::write_csv(&dataset, &mut csv)?;
    eprintln!("wrote {}", csv_path.display());

    let raw_path = out_dir.join("raw_batches.json");
    let mut raw = BufWriter::new(fs::File::create(&raw_path)?);
    sweep::export::write_raw_json(&batches, &mut raw)?;
    eprintln!("wrote {}", raw_path.display());

    // Per-architecture Table II summary next to the data.
    let summary_path = out_dir.join("SUMMARY.txt");
    let mut summary = String::from("samples per architecture (paper Table II)\n");
    for (arch, apps, samples) in dataset.table2() {
        summary.push_str(&format!(
            "{}: {apps} applications, {samples} samples\n",
            arch.id()
        ));
    }
    fs::write(&summary_path, summary)?;
    eprintln!("wrote {}", summary_path.display());
    Ok(())
}
