//! Dataset collection binary: produce the open-sourced artifacts the
//! paper promises — the processed tabular CSV, the raw per-batch JSON,
//! per-sample provenance (JSON lines), and a structured run manifest.
//!
//! Collection runs through the work-stealing sweep scheduler with a
//! persistent sample cache: an interrupted or repeated run replays
//! finished batches from disk instead of recomputing them, and the
//! output is byte-identical either way.
//!
//! `--trace` additionally arms the omptrace flight recorder and the
//! anomaly watchdog for the whole run: a Chrome/Perfetto trace of every
//! scheduler span lands at the given path, and outlier samples (above
//! the p99.9 latency bracket) are dumped with their surrounding event
//! window to `OUT_DIR/anomalies.jsonl`. Tracing never changes results —
//! the provenance stays byte-identical with it on or off.
//!
//! `--monitor ADDR` starts the ompmon exposition server for the run:
//! `/metrics` (Prometheus text format), `/healthz`, `/sweep` (JSON
//! status of the sweep in flight, including live ring-buffer and
//! watchdog counters), `/influence` (the streaming logistic influence
//! ranking recomputed as samples arrive), and `/energy` (per-arch
//! modeled joules, EDP, sink split, and the energy-influence ranking —
//! the live half of the ompwatt disagreement map). If ADDR is busy the
//! server falls back to an ephemeral port on the same host; the bound
//! address is written to `OUT_DIR/monitor.addr` so scripts always
//! discover the real port. Monitoring is read-only and never changes
//! results either.
//!
//! Every run also writes `OUT_DIR/tsdb/` — ring-file time-series of
//! per-stratum virtual rep means and joules, per-arch energy and EDP
//! aggregates, wall sample latency, and scheduler rates — which
//! `ompmon drift` compares across runs.

use omptune_core::{Arch, LiveInfluence};
use std::fs;
use std::io::BufWriter;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use sweep::{Dataset, Roster, SampleCache, Scope, SweepOptions, SweepSpec};

/// Config strata the drift sentinel tests independently; must match
/// `ompmon::STRATA`.
const STRATA: usize = 8;

const HELP: &str = "\
collect — run the paper's data-collection sweep and export its artifacts

USAGE:
    collect [SCOPE] [OUT_DIR] [OPTIONS]

ARGS:
    SCOPE     tiny | fast | paper | full | pruned   (default: paper)
                tiny    smoke-test slice (every 400th config)
                fast    small slice (every 24th config)
                paper   Table II sample counts (the default)
                full    every configuration of every setting
                pruned  only omplint-canonical configurations
    OUT_DIR   output directory (default: dataset)

OPTIONS:
    --workers N       worker threads for the sweep scheduler
                      (default: available parallelism)
    --roster WHICH    paper | generated | all   (default: paper)
                      which application roster to sweep: the paper's
                      Table II apps, the promoted ompfuzz-generated
                      apps, or both
    --no-cache        recompute everything; do not read or write the
                      sample cache
    --cache-dir PATH  sample-cache directory
                      (default: target/sweep-cache)
    --trace PATH      record a flight-recorder trace of the sweep and
                      write it as a Chrome trace_event JSON to PATH;
                      also arms the anomaly watchdog (outliers beyond
                      the p99.9 latency bracket are dumped to
                      OUT_DIR/anomalies.jsonl)
    --monitor ADDR    serve live /metrics, /healthz, /sweep, /influence
                      and /energy over HTTP on ADDR (e.g. 127.0.0.1:0
                      for an ephemeral port; if ADDR is busy the server
                      falls back to an ephemeral port, and the bound
                      address always lands in OUT_DIR/monitor.addr);
                      opens a telemetry session so runtime counters
                      flow to /metrics
    --no-influence    skip the streaming influence tracker: /influence
                      reports it disabled and no influence time-series
                      are recorded
    --registry DIR    longitudinal run registry directory; every run
                      appends a content-addressed RunRecord there for
                      `ompobs` (default: a `.ompobs/` sibling of
                      OUT_DIR, or $OMPOBS_DIR when set)
    --no-registry     do not record this run in the registry
    --perturb A:F     fault injection for sentinel testing: scale every
                      runtime and virtual-time figure of architecture A
                      by factor F (e.g. skylake:1.10) before any
                      artifact is written
    -h, --help        print this help
";

struct Cli {
    scope: Scope,
    roster: Roster,
    out_dir: PathBuf,
    workers: usize,
    cache_dir: Option<PathBuf>,
    trace: Option<PathBuf>,
    monitor: Option<String>,
    influence: bool,
    registry: Option<PathBuf>,
    perturb: Option<(Arch, f64)>,
}

fn parse_cli() -> Result<Cli, String> {
    let mut scope = Scope::PaperSized;
    let mut roster = Roster::Paper;
    let mut positional = 0usize;
    let mut out_dir = PathBuf::from("dataset");
    let mut workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut no_cache = false;
    let mut cache_dir = PathBuf::from("target/sweep-cache");
    let mut trace = None;
    let mut monitor = None;
    let mut influence = true;
    let mut registry_dir: Option<PathBuf> = None;
    let mut no_registry = false;
    let mut perturb = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{HELP}");
                std::process::exit(0);
            }
            "--no-cache" => no_cache = true,
            "--no-influence" => influence = false,
            "--workers" => {
                let v = args.next().ok_or("--workers needs a value")?;
                workers = v
                    .parse::<usize>()
                    .map_err(|_| format!("invalid --workers value: {v}"))?;
                if workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--cache-dir" => {
                cache_dir = PathBuf::from(args.next().ok_or("--cache-dir needs a value")?);
            }
            "--trace" => {
                trace = Some(PathBuf::from(args.next().ok_or("--trace needs a value")?));
            }
            "--monitor" => {
                monitor = Some(args.next().ok_or("--monitor needs an address")?);
            }
            "--registry" => {
                registry_dir = Some(PathBuf::from(
                    args.next().ok_or("--registry needs a directory")?,
                ));
            }
            "--no-registry" => no_registry = true,
            "--perturb" => {
                let v = args.next().ok_or("--perturb needs ARCH:FACTOR")?;
                let (arch_s, factor_s) = v
                    .split_once(':')
                    .ok_or_else(|| format!("--perturb wants ARCH:FACTOR, got {v}"))?;
                let arch = *Arch::ALL
                    .iter()
                    .find(|a| a.id() == arch_s)
                    .ok_or_else(|| format!("unknown architecture: {arch_s}"))?;
                let factor = factor_s
                    .parse::<f64>()
                    .map_err(|_| format!("invalid perturbation factor: {factor_s}"))?;
                if !factor.is_finite() || factor <= 0.0 {
                    return Err("--perturb factor must be finite and positive".into());
                }
                perturb = Some((arch, factor));
            }
            "--roster" => {
                let v = args.next().ok_or("--roster needs a value")?;
                roster = match v.as_str() {
                    "paper" => Roster::Paper,
                    "generated" => Roster::Generated,
                    "all" => Roster::All,
                    other => return Err(format!("unknown roster: {other} (see --help)")),
                };
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option: {other} (see --help)"));
            }
            positional_arg => {
                match positional {
                    0 => {
                        scope = match positional_arg {
                            "tiny" => Scope::Strided(400),
                            "fast" => Scope::Strided(24),
                            "paper" => Scope::PaperSized,
                            "full" => Scope::Full,
                            "pruned" => Scope::Pruned,
                            other => return Err(format!("unknown scope: {other} (see --help)")),
                        };
                    }
                    1 => out_dir = PathBuf::from(positional_arg),
                    _ => return Err(format!("unexpected argument: {positional_arg}")),
                }
                positional += 1;
            }
        }
    }
    let registry = if no_registry {
        None
    } else {
        Some(
            registry_dir
                .or_else(sweep::registry::env_registry_dir)
                .unwrap_or_else(|| sweep::registry::default_registry_dir(&out_dir)),
        )
    };
    Ok(Cli {
        scope,
        roster,
        out_dir,
        workers,
        cache_dir: (!no_cache).then_some(cache_dir),
        trace,
        monitor,
        influence,
        registry,
        perturb,
    })
}

/// Fault injection for the change-point sentinel's acceptance test:
/// scale every runtime, virtual-time, and energy figure of one
/// architecture's batches, exactly as a real regression on that arch
/// would move them. Applied before any artifact (tsdb, provenance,
/// registry) is built.
fn perturb_batches(batches: &mut [sweep::SettingData], factor: f64) {
    for data in batches.iter_mut() {
        for t in &mut data.default_runtimes {
            if t.is_finite() {
                *t *= factor;
            }
        }
        data.default_telemetry.virtual_ns *= factor;
        data.default_telemetry.energy.scale(factor);
        for sample in &mut data.samples {
            for t in &mut sample.runtimes {
                if t.is_finite() {
                    *t *= factor;
                }
            }
            sample.telemetry.virtual_ns *= factor;
            sample.telemetry.energy.scale(factor);
        }
    }
}

/// One completed arch for the scoreboard.
struct ArchDone {
    arch: String,
    settings: usize,
    samples: usize,
    dropped: usize,
    elapsed_s: f64,
    energy: ArchEnergy,
}

/// Modeled energy an architecture's cleaned samples cost, accumulated
/// while the tsdb series are written (one pass, no extra walk).
#[derive(Default, Clone, Copy)]
struct ArchEnergy {
    /// Σ total_j over the finite samples.
    joules: f64,
    /// Σ total_j · virtual_s — the energy-delay product in J·s.
    edp_js: f64,
    /// Per-sink joules, `omptel::EnergySink::ALL` order.
    sinks: [f64; omptel::EnergySink::ALL.len()],
}

impl ArchEnergy {
    fn fold(&mut self, telemetry: &sweep::SampleTelemetry) {
        let e = &telemetry.energy;
        if !e.total_j.is_finite() {
            return;
        }
        self.joules += e.total_j;
        self.edp_js += e.edp_js(telemetry.virtual_ns);
        for (slot, sink) in self.sinks.iter_mut().zip(omptel::EnergySink::ALL) {
            *slot += e.get(sink);
        }
    }
}

/// Shared view of the sweep in flight, rendered by the `/sweep` route.
struct SweepState {
    scope: String,
    /// Longitudinal registry context at run start:
    /// (dir, records, corrupt_skipped). `None` with `--no-registry`.
    registry: Option<(String, u64, u64)>,
    current: Mutex<Option<(String, Arc<omptel::Progress>, u64)>>,
    completed: Mutex<Vec<ArchDone>>,
}

impl SweepState {
    fn new(scope: String, registry: Option<(String, u64, u64)>) -> SweepState {
        SweepState {
            scope,
            registry,
            current: Mutex::new(None),
            completed: Mutex::new(Vec::new()),
        }
    }

    fn begin_arch(&self, arch: &str, meter: Arc<omptel::Progress>, total: u64) {
        *self.current.lock().expect("sweep state poisoned") =
            Some((arch.to_string(), meter, total));
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_arch(
        &self,
        arch: &str,
        settings: usize,
        samples: usize,
        dropped: usize,
        elapsed_s: f64,
        energy: ArchEnergy,
    ) {
        *self.current.lock().expect("sweep state poisoned") = None;
        self.completed
            .lock()
            .expect("sweep state poisoned")
            .push(ArchDone {
                arch: arch.to_string(),
                settings,
                samples,
                dropped,
                elapsed_s,
                energy,
            });
    }

    /// (joules, EDP J·s) summed over the completed architectures.
    fn energy_totals(&self) -> (f64, f64) {
        let completed = self.completed.lock().expect("sweep state poisoned");
        completed.iter().fold((0.0, 0.0), |(j, e), a| {
            (j + a.energy.joules, e + a.energy.edp_js)
        })
    }

    /// The `/energy` JSON document: per-arch joules, EDP, and sink
    /// split over the cleaned samples, plus the streaming
    /// energy-influence ranking when the tracker is live.
    fn energy_json(&self, influence: Option<&str>) -> String {
        let mut out = String::from("{\"schema\":\"ompwatt-energy-v1\",\"arches\":[");
        let completed = self.completed.lock().expect("sweep state poisoned");
        for (i, a) in completed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"arch\":\"{}\",\"samples\":{},\"joules\":{:.6},\"edp_js\":{:.6},\"sinks\":{{",
                a.arch, a.samples, a.energy.joules, a.energy.edp_js
            ));
            for (j, sink) in omptel::EnergySink::ALL.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\"{}\":{:.6}",
                    format!("{sink:?}").to_lowercase(),
                    a.energy.sinks[j]
                ));
            }
            out.push_str("}}");
        }
        drop(completed);
        out.push_str("],\"influence\":");
        match influence {
            Some(doc) => out.push_str(doc),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }

    fn current_meter(&self) -> Option<(Arc<omptel::Progress>, u64)> {
        self.current
            .lock()
            .expect("sweep state poisoned")
            .as_ref()
            .map(|(_, m, total)| (m.clone(), *total))
    }

    /// The `/sweep` JSON document.
    fn json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"scope\":\"{}\",", self.scope));
        match &*self.current.lock().expect("sweep state poisoned") {
            Some((arch, meter, total)) => out.push_str(&format!(
                "\"state\":\"running\",\"current\":{{\"arch\":\"{arch}\",\
                 \"done\":{},\"total\":{total},\"elapsed_s\":{:.3}}},",
                meter.done(),
                meter.elapsed_s()
            )),
            None => out.push_str("\"state\":\"idle\",\"current\":null,"),
        }
        // Telemetry health: whether the event ring is keeping up (a
        // non-zero dropped count means the flight recorder is lossy)
        // and what the anomaly watchdog has dumped so far.
        let (threads, events, dropped) = omptel::live_ring_stats();
        out.push_str(&format!(
            "\"telemetry\":{{\"ring_threads\":{threads},\
             \"omptel_ring_events_total\":{events},\
             \"omptel_ring_dropped_total\":{dropped},"
        ));
        // Warm-sweep engine counters: batch pricing, the indexed binary
        // cache, and the worker allocation pools. Zero outside a
        // telemetry session (counters are session-gated).
        let counters = omptel::counters_now();
        out.push_str(&format!(
            "\"engine\":{{\"priced_batches\":{},\
             \"sample_cache_index_hits\":{},\
             \"sample_cache_tmp_reaped\":{},\
             \"pool_hits\":{},\"pool_misses\":{}}},",
            counters.get(omptel::Counter::PricedBatches),
            counters.get(omptel::Counter::SampleCacheIndexHits),
            counters.get(omptel::Counter::SampleCacheTmpReaped),
            counters.get(omptel::Counter::PoolHits),
            counters.get(omptel::Counter::PoolMisses),
        ));
        match omptel::installed_watchdog() {
            Some(w) => {
                let (flagged, corrupt) = w.counts();
                out.push_str(&format!(
                    "\"watchdog\":{{\"flagged\":{flagged},\"corrupt\":{corrupt}}}}},"
                ));
            }
            None => out.push_str("\"watchdog\":null},"),
        }
        // Longitudinal registry context: where this run will be
        // recorded and how much history was already there.
        match &self.registry {
            Some((dir, records, corrupt)) => out.push_str(&format!(
                "\"registry\":{{\"dir\":{},\"records\":{records},\
                 \"corrupt_skipped\":{corrupt}}},",
                serde_json::to_string(dir).unwrap_or_else(|_| "\"?\"".to_string())
            )),
            None => out.push_str("\"registry\":null,"),
        }
        out.push_str("\"completed\":[");
        let completed = self.completed.lock().expect("sweep state poisoned");
        for (i, a) in completed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"arch\":\"{}\",\"settings\":{},\"samples\":{},\
                 \"dropped\":{},\"elapsed_s\":{:.3},\
                 \"joules\":{:.6},\"edp_js\":{:.6}}}",
                a.arch,
                a.settings,
                a.samples,
                a.dropped,
                a.elapsed_s,
                a.energy.joules,
                a.energy.edp_js
            ));
        }
        out.push_str("]}");
        out
    }
}

fn main() -> std::io::Result<()> {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("collect: {msg}");
            std::process::exit(2);
        }
    };
    fs::create_dir_all(&cli.out_dir)?;
    let cache = cli.cache_dir.map(SampleCache::new);

    // Longitudinal run registry: this run appends a content-addressed
    // RunRecord when it finishes. Opened up front so the monitor can
    // serve /runs and report the registry location from the start.
    let registry = match &cli.registry {
        Some(dir) => Some(sweep::Registry::open(dir)?),
        None => None,
    };
    let registry_stats = registry.as_ref().map(|r| {
        let loaded = r.load().unwrap_or_default();
        (
            r.dir().display().to_string(),
            loaded.records.len() as u64,
            loaded.corrupt_skipped,
        )
    });

    // Live exposition: the monitor only *reads* (every route renders
    // from a closure at scrape time), so a monitored run's outputs stay
    // byte-identical to an unmonitored one. The telemetry session makes
    // runtime counters visible to /metrics; counters never feed results.
    let state = Arc::new(SweepState::new(
        format!("{:?}", cli.scope),
        registry_stats.clone(),
    ));

    // Streaming influence: an online logistic model updated from every
    // completed batch (label: did the config beat the arch default?),
    // so /influence can rank the tuning variables while the sweep is
    // still running instead of after the dataset lands. Exposition
    // only — it never feeds back into sampling or the artifacts.
    let influence = cli
        .influence
        .then(|| Arc::new(Mutex::new(LiveInfluence::new())));
    let influence_obs = influence.clone().map(|live| {
        move |data: &sweep::SettingData| {
            let default = data.default_mean();
            if !default.is_finite() || default <= 0.0 {
                return;
            }
            let mut live = live.lock().expect("influence tracker poisoned");
            for sample in &data.samples {
                let mean = sample.mean_runtime();
                if mean.is_finite() && mean > 0.0 {
                    live.observe(&sample.config, default / mean);
                }
            }
        }
    });
    // A second, independent logistic stream over the *energy* objective
    // (label: did the config cost fewer joules than the arch default?).
    // Where the two rankings disagree is exactly the ompwatt
    // disagreement map, live while the sweep runs.
    let energy_influence = cli
        .influence
        .then(|| Arc::new(Mutex::new(LiveInfluence::new())));
    let energy_obs = energy_influence.clone().map(|live| {
        move |data: &sweep::SettingData| {
            let default = data.default_telemetry.energy.total_j;
            if !default.is_finite() || default <= 0.0 {
                return;
            }
            let mut live = live.lock().expect("energy influence tracker poisoned");
            for sample in &data.samples {
                let joules = sample.telemetry.energy.total_j;
                if joules.is_finite() && joules > 0.0 {
                    live.observe(&sample.config, default / joules);
                }
            }
        }
    });

    let _session = cli
        .monitor
        .as_ref()
        .map(|_| omptel::session().expect("no other omptel session is live"));
    let monitor = match &cli.monitor {
        Some(addr) => {
            let st = state.clone();
            let reg_stats = registry_stats.clone();
            let metrics: omptel::BodyFn = Arc::new(move || {
                let mut snap = omptel::MetricsSnapshot::capture();
                // Registry counters: history depth at run start and how
                // many records corruption has cost, so scrapers can
                // alarm on a decaying registry.
                if let Some((_, records, corrupt)) = &reg_stats {
                    snap = snap
                        .gauge("registry_records", *records as f64)
                        .gauge("registry_corrupt_skipped", *corrupt as f64);
                }
                // Progress gauges are always present (zero between
                // arches) so scrapers never see a series disappear.
                let (done, total, elapsed) = match st.current_meter() {
                    Some((meter, total)) => {
                        snap = snap.histogram(
                            "sample_latency_ns",
                            meter.latency_histogram(),
                            Some(meter.latency_sum_ns()),
                        );
                        (meter.done() as f64, total as f64, meter.elapsed_s())
                    }
                    None => (0.0, 0.0, 0.0),
                };
                // Energy totals over the completed arches: joules and
                // the energy-delay product, so a scraper can watch the
                // second objective accumulate alongside virtual time.
                let (joules, edp) = st.energy_totals();
                snap.gauge("sweep_done", done)
                    .gauge("sweep_total", total)
                    .gauge("sweep_elapsed_seconds", elapsed)
                    .gauge("sweep_energy_joules", joules)
                    .gauge("sweep_energy_edp_js", edp)
                    .render_prometheus()
            });
            let st = state.clone();
            let sweep_body: omptel::BodyFn = Arc::new(move || st.json());
            let live = influence.clone();
            let influence_body: omptel::BodyFn = Arc::new(move || match &live {
                Some(live) => live.lock().expect("influence tracker poisoned").json(),
                None => "{\"disabled\":true}".to_string(),
            });
            let mut routes: Vec<omptel::Route> =
                vec![("/influence".to_string(), "application/json", influence_body)];
            // /energy: the ompwatt exposition — per-arch joules, EDP,
            // sink split, and the energy-influence ranking.
            let st = state.clone();
            let elive = energy_influence.clone();
            let energy_body: omptel::BodyFn = Arc::new(move || {
                let doc = elive.as_ref().map(|live| {
                    live.lock()
                        .expect("energy influence tracker poisoned")
                        .json()
                });
                st.energy_json(doc.as_deref())
            });
            routes.push(("/energy".to_string(), "application/json", energy_body));
            // /runs: the registry listing, loaded fresh per scrape so a
            // poller sees records land the moment runs finish.
            if let Some(reg) = &registry {
                let reg = reg.clone();
                let runs_body: omptel::BodyFn = Arc::new(move || reg.listing_json());
                routes.push(("/runs".to_string(), "application/json", runs_body));
            }
            // If the requested address is squatted, the monitor falls
            // back to an ephemeral port on the same host rather than
            // failing the whole collection run.
            let m = omptel::Monitor::start_with_fallback(addr, metrics, sweep_body, routes)?;
            // Scripts discover the actually-bound address (ephemeral
            // or fallback port included) from this file; it is written
            // before any sweeping so pollers never race the run.
            // First line: the bound address (scripts parse exactly the
            // first line). Following lines: sidecar metadata, currently
            // the registry directory this run will record into.
            let mut addr_doc = format!("{}\n", m.local_addr());
            if let Some(reg) = &registry {
                addr_doc.push_str(&format!("registry {}\n", reg.dir().display()));
            }
            fs::write(cli.out_dir.join("monitor.addr"), addr_doc)?;
            eprintln!(
                "monitor: serving /metrics /healthz /sweep /influence /energy{} on http://{}",
                if registry.is_some() { " /runs" } else { "" },
                m.local_addr()
            );
            Some(m)
        }
        None => None,
    };

    // Arm the flight recorder and anomaly watchdog when tracing.
    let recorder = if cli.trace.is_some() {
        let rec = omptel::Recorder::start(omptel::RecorderOptions::default())
            .expect("no other flight recorder is live");
        let sink = fs::File::create(cli.out_dir.join("anomalies.jsonl"))?;
        let watchdog = Arc::new(omptel::Watchdog::new(0.999, Box::new(sink)));
        omptel::install_watchdog(Some(watchdog.clone()));
        Some((rec, watchdog))
    } else {
        None
    };

    let spec = SweepSpec {
        scope: cli.scope,
        roster: cli.roster,
        ..SweepSpec::default()
    };
    let mut manifest = sweep::RunManifest::new(&spec);
    let mut batches = Vec::new();
    let mut timings = Vec::new();
    // The content-addressed core this run will register: per-arch
    // stratum series and cost digests, folded from the cleaned batches.
    let mut run_core = registry.as_ref().map(|_| sweep::CollectCore::new(&spec));
    let mut agg_stats = sweep::SweepStats::default();
    // Every run records its time-series; `ompmon drift` compares them
    // across runs, so unmonitored CI runs need them too.
    let mut tsdb = omptel::Tsdb::open(cli.out_dir.join("tsdb"), omptel::DEFAULT_CAPACITY)?;

    for &arch in Arch::ALL.iter() {
        let total = sweep::planned_samples(arch, &spec);
        let meter = Arc::new(omptel::Progress::stderr(
            &format!("sweep {} ({:?})", arch.id(), cli.scope),
            total,
        ));
        state.begin_arch(arch.id(), meter.clone(), total);
        let mut opts = SweepOptions::new(cli.workers).with_progress(&meter);
        if let Some(c) = &cache {
            opts = opts.with_cache(c);
        }
        // Registry digest partials fold per batch on the worker that
        // finalized it — while the samples are cache-hot — so recording
        // the run never re-walks the whole sweep. A perturbed arch opts
        // out: perturbation mutates samples after the sweep, so its
        // digest must fold the mutated batches instead.
        let fold_partials =
            run_core.is_some() && cli.perturb.is_none_or(|(perturbed, _)| perturbed != arch);
        let fold_sink: Mutex<Vec<(sweep::RunKey, sweep::BatchPartial)>> = Mutex::new(Vec::new());
        let observer = |data: &sweep::SettingData| {
            if let Some(obs) = &influence_obs {
                obs(data);
            }
            if let Some(obs) = &energy_obs {
                obs(data);
            }
            if fold_partials {
                let partial = sweep::BatchPartial::fold(data);
                fold_sink
                    .lock()
                    .expect("fold sink poisoned")
                    .push((data.key.clone(), partial));
            }
        };
        if influence_obs.is_some() || fold_partials {
            opts = opts.with_batch_observer(&observer);
        }
        if let Some((_, w)) = &recorder {
            opts = opts.with_watchdog(w);
        }
        let t0 = Instant::now();
        let before_cache = cache.as_ref().map(|c| c.stats()).unwrap_or((0, 0));
        let outcome = sweep::sweep_arch_scheduled(arch, &spec, &opts);
        eprintln!("{}", meter.finish());
        let elapsed = t0.elapsed().as_secs_f64();

        let mut arch_batches = outcome.batches;
        // Sentinel fault injection: shift this arch's figures before
        // any artifact sees them, so the perturbation looks exactly
        // like a real regression to every downstream consumer.
        if let Some((parch, factor)) = cli.perturb {
            if parch == arch {
                perturb_batches(&mut arch_batches, factor);
                eprintln!("perturb: scaled {} virtual time by {factor}", arch.id());
            }
        }
        let mut arch_dropped = 0usize;
        for data in &mut arch_batches {
            arch_dropped += sweep::clean(data, spec.reps as usize).dropped.len();
        }
        if let Some(core) = &mut run_core {
            let partials = std::mem::take(&mut *fold_sink.lock().expect("fold sink poisoned"));
            if fold_partials && arch_dropped == 0 {
                // The cleaner kept every sample, so the cache-hot
                // partials describe exactly the batches being recorded.
                core.push_arch_partials(arch.id(), &arch_batches, partials, 0);
            } else {
                core.push_arch(arch.id(), &arch_batches, arch_dropped as u64);
            }
        }

        // Time-series for the drift sentinel, from the cleaned samples.
        // The virt series carry per-sample mean rep times, stratified by
        // config index: deterministic given the seed, so same-seed runs
        // must agree exactly — those are ompmon's gating series. Wall
        // latency and scheduler rates legitimately vary and are
        // informational.
        let mut stratum_seq = [0u64; STRATA];
        let mut arch_energy = ArchEnergy::default();
        for data in &arch_batches {
            for sample in &data.samples {
                arch_energy.fold(&sample.telemetry);
                let finite: Vec<f64> = sample
                    .runtimes
                    .iter()
                    .copied()
                    .filter(|t| t.is_finite())
                    .collect();
                if finite.is_empty() {
                    continue;
                }
                let k = sample.config_index % STRATA;
                let ts = stratum_seq[k];
                stratum_seq[k] += 1;
                let point = omptel::Point {
                    ts,
                    count: finite.len() as u64,
                    sum: finite.iter().sum(),
                };
                tsdb.append(&format!("{}/virt/s{k}", arch.id()), point)?;
                // Joules ride the same stratified, deterministic series
                // layout as virtual time: one point per sample, same
                // stratum sequence, so the drift sentinel gates energy
                // exactly the way it gates time.
                let joules = sample.telemetry.energy.total_j;
                if joules.is_finite() && joules > 0.0 {
                    let point = omptel::Point {
                        ts,
                        count: 1,
                        sum: joules,
                    };
                    tsdb.append(&format!("{}/energy/s{k}", arch.id()), point)?;
                }
            }
        }
        // Arch-level energy aggregates: total joules and the EDP over
        // the cleaned samples, deterministic given the seed.
        if arch_energy.joules > 0.0 {
            let samples_n: usize = arch_batches.iter().map(|b| b.samples.len()).sum();
            let point = omptel::Point {
                ts: 0,
                count: samples_n as u64,
                sum: arch_energy.joules,
            };
            tsdb.append(&format!("{}/energy/joules", arch.id()), point)?;
            let point = omptel::Point {
                ts: 0,
                count: samples_n as u64,
                sum: arch_energy.edp_js,
            };
            tsdb.append(&format!("{}/energy/edp_js", arch.id()), point)?;
        }
        let lat = meter.latency_histogram();
        if !lat.is_empty() {
            let point = omptel::Point {
                ts: 0,
                count: lat.count,
                sum: meter.latency_sum_ns() as f64,
            };
            tsdb.append(&format!("{}/wall/sample_ns", arch.id()), point)?;
        }
        let st = outcome.stats;
        let lookups = st.sample_hits + st.sample_misses;
        if lookups > 0 {
            let point = omptel::Point {
                ts: 0,
                count: lookups,
                sum: st.sample_hits as f64,
            };
            tsdb.append(&format!("{}/rate/cache_hit", arch.id()), point)?;
        }
        if st.units > 0 {
            let point = omptel::Point {
                ts: 0,
                count: st.units,
                sum: st.steals as f64,
            };
            tsdb.append(&format!("{}/rate/steal", arch.id()), point)?;
        }
        // Snapshot the streaming influence ranking after each arch so
        // `ompmon` can chart how the ranking firmed up over the run.
        // Batch completion order is scheduling-dependent, so these
        // series are informational, not drift-gating.
        if let Some(live) = &influence {
            let snap = live.lock().expect("influence tracker poisoned");
            if snap.samples() > 0 {
                for (feature, value) in snap.influence() {
                    let point = omptel::Point {
                        ts: 0,
                        count: snap.samples(),
                        sum: value,
                    };
                    let slug = feature.name().to_lowercase();
                    tsdb.append(&format!("{}/influence/{slug}", arch.id()), point)?;
                }
            }
        }
        if let Some(live) = &energy_influence {
            let snap = live.lock().expect("energy influence tracker poisoned");
            if snap.samples() > 0 {
                for (feature, value) in snap.influence() {
                    let point = omptel::Point {
                        ts: 0,
                        count: snap.samples(),
                        sum: value,
                    };
                    let slug = feature.name().to_lowercase();
                    tsdb.append(&format!("{}/influence-energy/{slug}", arch.id()), point)?;
                }
            }
        }

        manifest.push_arch(
            arch,
            &arch_batches,
            arch_dropped,
            elapsed,
            outcome.stats,
            meter.latency_histogram(),
        );
        let samples: usize = arch_batches.iter().map(|b| b.samples.len()).sum();
        let s = outcome.stats;
        let arch_cache = (
            s.sample_hits - before_cache.0,
            s.sample_misses - before_cache.1,
        );
        eprintln!(
            "{}: plan cache {}/{} hits, sample cache {}/{} hits, {} steals over {} units",
            arch.id(),
            s.plan_hits,
            s.plan_hits + s.plan_misses,
            arch_cache.0,
            arch_cache.0 + arch_cache.1,
            s.steals,
            s.units
        );
        agg_stats.plan_hits += s.plan_hits;
        agg_stats.plan_misses += s.plan_misses;
        agg_stats.steals += s.steals;
        agg_stats.units += s.units;
        eprintln!(
            "{}: modeled energy {:.1} J over {samples} samples (EDP {:.3} J·s)",
            arch.id(),
            arch_energy.joules,
            arch_energy.edp_js
        );
        state.finish_arch(
            arch.id(),
            arch_batches.len(),
            samples,
            arch_dropped,
            elapsed,
            arch_energy,
        );
        timings.push((arch, arch_batches.len(), samples, arch_dropped, elapsed));
        batches.extend(arch_batches);
    }

    let dataset = Dataset::build(&batches);

    let csv_path = cli.out_dir.join("samples.csv");
    let mut csv = BufWriter::new(fs::File::create(&csv_path)?);
    sweep::export::write_csv(&dataset, &mut csv)?;
    eprintln!("wrote {}", csv_path.display());

    let raw_path = cli.out_dir.join("raw_batches.json");
    let mut raw = BufWriter::new(fs::File::create(&raw_path)?);
    sweep::export::write_raw_json(&batches, &mut raw)?;
    eprintln!("wrote {}", raw_path.display());

    let prov_path = cli.out_dir.join("provenance.jsonl");
    let provenance = sweep::provenance_of(&batches, &spec);
    let mut prov = BufWriter::new(fs::File::create(&prov_path)?);
    sweep::write_provenance_jsonl(&provenance, &mut prov)?;
    eprintln!(
        "wrote {} ({} samples)",
        prov_path.display(),
        provenance.len()
    );

    let manifest_path = cli.out_dir.join("manifest.json");
    let mut mf = BufWriter::new(fs::File::create(&manifest_path)?);
    sweep::write_manifest(&manifest, &mut mf)?;
    eprintln!("wrote {}", manifest_path.display());

    // Per-architecture Table II summary next to the data.
    let summary_path = cli.out_dir.join("SUMMARY.txt");
    let mut summary = String::from("samples per architecture (paper Table II)\n");
    for (arch, apps, samples) in dataset.table2() {
        summary.push_str(&format!(
            "{}: {apps} applications, {samples} samples\n",
            arch.id()
        ));
    }
    fs::write(&summary_path, summary)?;
    eprintln!("wrote {}", summary_path.display());

    // Final per-architecture timing summary.
    eprintln!("--- collection timing ---");
    for (arch, settings, samples, dropped, elapsed) in &timings {
        let rate = *samples as f64 / elapsed.max(1e-9);
        eprintln!(
            "{}: {settings} settings, {samples} samples ({dropped} dropped) in {elapsed:.1}s ({rate:.0} samples/s)",
            arch.id()
        );
    }
    eprintln!(
        "total: {} samples, {} dropped",
        manifest.total_samples, manifest.total_dropped
    );
    if let Some(c) = &cache {
        let (h, m) = c.stats();
        eprintln!(
            "sample cache at {}: {h} hits, {m} misses",
            c.dir().display()
        );
    }

    // Harvest the flight recorder and export the Chrome trace.
    if let Some((rec, watchdog)) = recorder {
        omptel::install_watchdog(None);
        watchdog.flush();
        let recording = rec.finish();
        let trace_path = cli.trace.expect("recorder implies --trace");
        let doc = omptel::chrome_trace_with_recording(&[], &recording);
        fs::write(
            &trace_path,
            serde_json::to_string(&doc).map_err(std::io::Error::other)?,
        )?;
        let (flagged, corrupt) = watchdog.counts();
        eprintln!(
            "trace: {} events ({} dropped) across {} threads -> {}",
            recording.total_events(),
            recording.total_dropped(),
            recording.threads.len(),
            trace_path.display()
        );
        eprintln!(
            "watchdog: {flagged} slow-sample anomalies, {corrupt} corrupt cache records -> {}",
            cli.out_dir.join("anomalies.jsonl").display()
        );
    }

    // Register the finished run: the deterministic core (hashed) plus
    // the run-varying context (informational). A registry failure warns
    // but never fails a collection run that already produced its data.
    if let (Some(registry), Some(core)) = (&registry, run_core) {
        if let Some(c) = &cache {
            let (h, m) = c.stats();
            agg_stats.sample_hits = h;
            agg_stats.sample_misses = m;
        }
        let engine = omptel::counters_now();
        let mut counters = vec![
            ("plan_hits".to_string(), agg_stats.plan_hits),
            ("plan_misses".to_string(), agg_stats.plan_misses),
            ("sample_hits".to_string(), agg_stats.sample_hits),
            ("sample_misses".to_string(), agg_stats.sample_misses),
            ("steals".to_string(), agg_stats.steals),
            ("units".to_string(), agg_stats.units),
            (
                "priced_batches".to_string(),
                engine.get(omptel::Counter::PricedBatches),
            ),
            (
                "pool_hits".to_string(),
                engine.get(omptel::Counter::PoolHits),
            ),
            (
                "pool_misses".to_string(),
                engine.get(omptel::Counter::PoolMisses),
            ),
            (
                "energy_samples".to_string(),
                engine.get(omptel::Counter::EnergySamples),
            ),
            (
                "energy_uj".to_string(),
                engine.get(omptel::Counter::EnergyUj),
            ),
        ];
        counters.sort();
        let info = sweep::RunInfo {
            workers: cli.workers as u64,
            elapsed_s: timings.iter().map(|t| t.4).sum(),
            manifest_digest: fs::read(&manifest_path)
                .map(|b| sweep::registry::fnv_bytes(&b))
                .unwrap_or(0),
            out_dir: cli.out_dir.display().to_string(),
            counters,
        };
        match registry.append(
            sweep::RunCore::Collect(core),
            info,
            &sweep::detect_git_rev(std::path::Path::new(".")),
            sweep::registry::unix_now(),
        ) {
            Ok(rec) => eprintln!(
                "registry: recorded run #{} ({:016x}) -> {}",
                rec.seq,
                rec.record_hash,
                registry.dir().display()
            ),
            Err(e) => eprintln!("registry: failed to record run: {e}"),
        }
    }

    // Stop serving only after every artifact is on disk, so a scraper
    // that saw /healthz up can still fetch the final state.
    if let Some(m) = monitor {
        m.shutdown();
    }
    Ok(())
}
