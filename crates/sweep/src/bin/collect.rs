//! Dataset collection binary: produce the open-sourced artifacts the
//! paper promises — the processed tabular CSV, the raw per-batch JSON,
//! per-sample provenance (JSON lines), and a structured run manifest.
//!
//! Usage: `collect [fast|paper|full|pruned] [output-dir]`
//! Default: paper scope into `./dataset/`. `pruned` sweeps only the
//! configurations `omplint` certifies as canonical (no redundant or
//! invalid points).

use omptune_core::Arch;
use std::fs;
use std::io::BufWriter;
use std::path::PathBuf;
use std::time::Instant;
use sweep::{Dataset, Scope, SweepSpec};

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scope = match args.first().map(String::as_str) {
        Some("fast") => Scope::Strided(24),
        Some("full") => Scope::Full,
        Some("pruned") => Scope::Pruned,
        _ => Scope::PaperSized,
    };
    let out_dir = PathBuf::from(args.get(1).map(String::as_str).unwrap_or("dataset"));
    fs::create_dir_all(&out_dir)?;

    let spec = SweepSpec {
        scope,
        ..SweepSpec::default()
    };
    let mut manifest = sweep::RunManifest::new(&spec);
    let mut batches = Vec::new();
    let mut timings = Vec::new();

    for &arch in Arch::ALL.iter() {
        // The same work list the runner uses, unrolled here so the meter
        // ticks once per completed (app, setting) batch.
        let work: Vec<_> = {
            let mut w = Vec::new();
            let mut idx = 0usize;
            for app in workloads::apps_on(arch) {
                for setting in workloads::settings_for(app, arch) {
                    w.push((app, setting, idx));
                    idx += 1;
                }
            }
            w
        };
        let meter = omptel::Progress::stderr(
            &format!("sweep {} ({scope:?})", arch.id()),
            work.len() as u64,
        );
        let t0 = Instant::now();
        let mut arch_batches = Vec::new();
        let mut arch_dropped = 0usize;
        for (app, setting, idx) in work {
            let mut data = sweep::sweep_setting(arch, app, setting, idx, &spec);
            arch_dropped += sweep::clean(&mut data, spec.reps as usize).dropped.len();
            arch_batches.push(data);
            meter.inc(1);
        }
        eprintln!("{}", meter.finish());
        let elapsed = t0.elapsed().as_secs_f64();
        manifest.push_arch(arch, &arch_batches, arch_dropped, elapsed);
        let samples: usize = arch_batches.iter().map(|b| b.samples.len()).sum();
        timings.push((arch, arch_batches.len(), samples, arch_dropped, elapsed));
        batches.extend(arch_batches);
    }

    let dataset = Dataset::build(&batches);

    let csv_path = out_dir.join("samples.csv");
    let mut csv = BufWriter::new(fs::File::create(&csv_path)?);
    sweep::export::write_csv(&dataset, &mut csv)?;
    eprintln!("wrote {}", csv_path.display());

    let raw_path = out_dir.join("raw_batches.json");
    let mut raw = BufWriter::new(fs::File::create(&raw_path)?);
    sweep::export::write_raw_json(&batches, &mut raw)?;
    eprintln!("wrote {}", raw_path.display());

    let prov_path = out_dir.join("provenance.jsonl");
    let provenance = sweep::provenance_of(&batches, &spec);
    let mut prov = BufWriter::new(fs::File::create(&prov_path)?);
    sweep::write_provenance_jsonl(&provenance, &mut prov)?;
    eprintln!(
        "wrote {} ({} samples)",
        prov_path.display(),
        provenance.len()
    );

    let manifest_path = out_dir.join("manifest.json");
    let mut mf = BufWriter::new(fs::File::create(&manifest_path)?);
    sweep::write_manifest(&manifest, &mut mf)?;
    eprintln!("wrote {}", manifest_path.display());

    // Per-architecture Table II summary next to the data.
    let summary_path = out_dir.join("SUMMARY.txt");
    let mut summary = String::from("samples per architecture (paper Table II)\n");
    for (arch, apps, samples) in dataset.table2() {
        summary.push_str(&format!(
            "{}: {apps} applications, {samples} samples\n",
            arch.id()
        ));
    }
    fs::write(&summary_path, summary)?;
    eprintln!("wrote {}", summary_path.display());

    // Final per-architecture timing summary.
    eprintln!("--- collection timing ---");
    for (arch, settings, samples, dropped, elapsed) in &timings {
        let rate = *samples as f64 / elapsed.max(1e-9);
        eprintln!(
            "{}: {settings} settings, {samples} samples ({dropped} dropped) in {elapsed:.1}s ({rate:.0} samples/s)",
            arch.id()
        );
    }
    eprintln!(
        "total: {} samples, {} dropped",
        manifest.total_samples, manifest.total_dropped
    );
    Ok(())
}
