//! `trace-check` — validate an exported Chrome trace_event JSON.
//!
//! Checks the structural invariants a well-formed flight-recorder
//! export must satisfy: spans on each (pid, tid) track are laminar
//! (properly nested, never partially overlapping) and every
//! cross-worker flow arrow has both its emitting and receiving side.
//! Exit status is nonzero on any violation, any unresolved flow, or any
//! orphaned span — verify.sh runs this against a live traced sweep.

use std::process::ExitCode;

const HELP: &str = "\
trace-check — validate a Chrome trace_event JSON export

USAGE:
    trace-check TRACE.json [--allow-drops]

OPTIONS:
    --allow-drops   tolerate ring-buffer drops (orphan spans are then
                    expected at the window edge); flows must still all
                    resolve
    -h, --help      print this help
";

fn main() -> ExitCode {
    let mut path = None;
    let mut allow_drops = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{HELP}");
                return ExitCode::SUCCESS;
            }
            "--allow-drops" => allow_drops = true,
            other if other.starts_with('-') => {
                eprintln!("trace-check: unknown option {other}");
                return ExitCode::FAILURE;
            }
            p => {
                if path.replace(p.to_string()).is_some() {
                    eprintln!("trace-check: more than one trace path given");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    let Some(path) = path else {
        eprint!("{HELP}");
        return ExitCode::FAILURE;
    };
    let json = match std::fs::read_to_string(&path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("trace-check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match omptel::validate_trace_json(&json) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("trace-check: FAIL: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("trace-check: {report}");
    if report.unresolved_flows > 0 {
        eprintln!(
            "trace-check: FAIL: {} unresolved flow(s)",
            report.unresolved_flows
        );
        return ExitCode::FAILURE;
    }
    if report.orphan_spans > 0 && !(allow_drops && report.dropped > 0) {
        eprintln!(
            "trace-check: FAIL: {} orphaned span(s)",
            report.orphan_spans
        );
        return ExitCode::FAILURE;
    }
    println!("trace-check: PASS");
    ExitCode::SUCCESS
}
