//! Work-stealing sweep scheduler: fine-grained `(app, setting,
//! config-chunk)` units over per-worker deques.
//!
//! The old parallel runner split whole `(app, setting)` batches across
//! workers, which load-balances badly once a sample cache makes some
//! batches nearly free: a worker stuck with the last cold batch runs
//! alone while the rest idle. Here every batch is cut into chunks of at
//! most [`UNIT_CONFIGS`] configurations (plus one unit for the default
//! row); each worker starts with a contiguous stripe of units and
//! steals from the busiest end of other workers' deques when its own
//! runs dry.
//!
//! **Determinism.** Results land in per-batch slots addressed by
//! configuration position, and batches assemble in catalog order — so
//! the output is byte-identical for any worker count, with or without
//! the sample cache, and equal to the sequential
//! [`crate::runner::sweep_arch`]. The property tests pin this.

use crate::cache::{BatchEntries, SampleCache, DEFAULT_ROW_INDEX};
use crate::runner::{
    model_of, run_config_sim, sample_from_sim, work_list, RawSample, RunKey, SampleTelemetry,
    SettingData,
};
use crate::spec::{configs_for, samples_for_setting, SweepSpec};
use archsim::NoiseModel;
use omptel::SpanKind;
use omptune_core::{Arch, TuningConfig};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use workloads::{AppSpec, Setting};

/// Maximum configurations per scheduling unit. Small enough that a
/// warm-cache batch splinters into stealable pieces, large enough that
/// deque traffic stays negligible against thousands of simulations.
pub const UNIT_CONFIGS: usize = 256;

/// Aggregated scheduler statistics for one sweep. Serializable so the
/// run manifest can persist them per architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SweepStats {
    /// Simulation-plan cache hits/misses across all batches.
    pub plan_hits: u64,
    pub plan_misses: u64,
    /// Sample-cache hits/misses (zero when no cache is attached).
    pub sample_hits: u64,
    pub sample_misses: u64,
    /// Units taken from another worker's deque.
    pub steals: u64,
    /// Total scheduling units executed.
    pub units: u64,
}

impl SweepStats {
    fn absorb(&mut self, other: &SweepStats) {
        self.plan_hits += other.plan_hits;
        self.plan_misses += other.plan_misses;
        self.sample_hits += other.sample_hits;
        self.sample_misses += other.sample_misses;
        self.steals += other.steals;
        self.units += other.units;
    }
}

/// Scheduler knobs: worker count plus optional sample cache, progress
/// meter, and anomaly watchdog.
pub struct SweepOptions<'a> {
    pub workers: usize,
    pub cache: Option<&'a SampleCache>,
    pub progress: Option<&'a omptel::Progress>,
    pub watchdog: Option<&'a omptel::Watchdog>,
    /// Called with each completed batch (on the worker thread that
    /// finished it) before it is stored — live observers such as the
    /// streaming influence tracker hook here. Completion order is
    /// scheduling-dependent; observers must not rely on it.
    pub on_batch: Option<&'a (dyn Fn(&SettingData) + Sync)>,
}

impl<'a> SweepOptions<'a> {
    /// Plain parallel sweep: no cache, no progress meter.
    pub fn new(workers: usize) -> SweepOptions<'static> {
        SweepOptions {
            workers,
            cache: None,
            progress: None,
            watchdog: None,
            on_batch: None,
        }
    }

    /// Attach a persistent sample cache.
    pub fn with_cache(mut self, cache: &'a SampleCache) -> SweepOptions<'a> {
        self.cache = Some(cache);
        self
    }

    /// Attach a progress meter (incremented once per sample).
    pub fn with_progress(mut self, progress: &'a omptel::Progress) -> SweepOptions<'a> {
        self.progress = Some(progress);
        self
    }

    /// Attach an anomaly watchdog (fed every sample's wall latency).
    pub fn with_watchdog(mut self, watchdog: &'a omptel::Watchdog) -> SweepOptions<'a> {
        self.watchdog = Some(watchdog);
        self
    }

    /// Attach a completed-batch observer (see [`SweepOptions::on_batch`]).
    pub fn with_batch_observer(
        mut self,
        observer: &'a (dyn Fn(&SettingData) + Sync),
    ) -> SweepOptions<'a> {
        self.on_batch = Some(observer);
        self
    }

    /// Should per-sample wall latency be measured at all?
    fn observing(&self) -> bool {
        self.progress.is_some() || self.watchdog.is_some()
    }
}

/// A completed sweep with its scheduler statistics.
pub struct SweepOutcome {
    /// One entry per (app, setting), in catalog order.
    pub batches: Vec<SettingData>,
    pub stats: SweepStats,
}

/// Samples the scheduler will produce for `arch` under `spec` (sampled
/// configurations plus one default row per setting) — the progress
/// meter total.
pub fn planned_samples(arch: Arch, spec: &SweepSpec) -> u64 {
    work_list(arch, spec.roster)
        .iter()
        .map(|&(_, setting, idx)| {
            samples_for_setting(arch, setting.num_threads, idx, spec.scope) as u64 + 1
        })
        .sum()
}

/// One batch's shared execution state.
struct BatchJob {
    key: RunKey,
    model: simrt::Model,
    noise: NoiseModel,
    configs: Vec<(usize, TuningConfig)>,
    entries: BatchEntries,
    plans: simrt::PlanCache,
    slots: Mutex<Vec<Option<RawSample>>>,
    default_slot: Mutex<Option<(Vec<f64>, SampleTelemetry)>>,
    /// Units still outstanding; the worker that drops this to zero
    /// assembles and (if fresh work happened) persists the batch.
    remaining: AtomicUsize,
    /// Whether any sample was computed rather than served from cache.
    fresh: AtomicBool,
}

enum UnitKind {
    /// Configurations `[start, end)` of the batch.
    Configs { start: usize, end: usize },
    /// The batch's default-configuration row.
    Default,
}

struct Unit {
    batch: usize,
    kind: UnitKind,
    /// Cross-thread flow handle stitching the seeding span to the
    /// executing worker's span in the trace (0 when not tracing).
    flow: u64,
}

fn build_jobs(
    arch: Arch,
    list: &[(&'static AppSpec, Setting, usize)],
    spec: &SweepSpec,
    cache: Option<&SampleCache>,
) -> Vec<BatchJob> {
    list.iter()
        .map(|&(app, setting, setting_idx)| {
            let key = RunKey::new(arch, app.name, setting.input_code, setting.num_threads);
            let model = model_of(app, &key);
            let configs = configs_for(arch, setting.num_threads, setting_idx, spec.scope);
            let entries = match cache {
                Some(c) => c.load_batch(&key, spec),
                None => BatchEntries::empty(),
            };
            let n = configs.len();
            let units = n.div_ceil(UNIT_CONFIGS) + 1;
            BatchJob {
                plans: simrt::PlanCache::new(arch, &model, spec.seed),
                noise: NoiseModel::for_machine(arch.id()),
                key,
                model,
                configs,
                entries,
                slots: Mutex::new(vec![None; n]),
                default_slot: Mutex::new(None),
                remaining: AtomicUsize::new(units),
                fresh: AtomicBool::new(false),
            }
        })
        .collect()
}

fn units_of(jobs: &[BatchJob]) -> Vec<Unit> {
    let mut units = Vec::new();
    for (b, job) in jobs.iter().enumerate() {
        let n = job.configs.len();
        let mut start = 0;
        while start < n {
            let end = (start + UNIT_CONFIGS).min(n);
            units.push(Unit {
                batch: b,
                kind: UnitKind::Configs { start, end },
                flow: omptel::flow_handle(),
            });
            start = end;
        }
        units.push(Unit {
            batch: b,
            kind: UnitKind::Default,
            flow: omptel::flow_handle(),
        });
    }
    units
}

/// Per-worker reusable buffers: one allocation pool per worker thread,
/// so steady-state unit execution does no per-sample Vec churn. Each
/// acquisition is scored as a pool hit (capacity reused) or miss
/// (buffer had to grow) under the `PoolHits`/`PoolMisses` counters.
#[derive(Default)]
struct WorkerScratch {
    /// SoA accumulators for [`simrt::RegionPlan::price_batch`].
    price: simrt::PriceScratch,
    /// Batch-pricing output, cleared per miss group.
    sims: Vec<simrt::SimResult>,
    /// The configurations of one miss group, contiguous for pricing.
    group: Vec<TuningConfig>,
    /// Positions (within the unit slice) that missed the sample cache,
    /// with each config's plan projection computed once for grouping.
    miss_at: Vec<(usize, omptune_core::PlanProjection)>,
    /// Assembled samples of the unit, in slice order.
    produced: Vec<Option<RawSample>>,
}

/// Ready a pooled buffer for `needed` items, scoring whether its
/// retained capacity could be reused.
fn pool_reserve<T>(buf: &mut Vec<T>, needed: usize) {
    let counter = if buf.capacity() >= needed {
        omptel::Counter::PoolHits
    } else {
        omptel::Counter::PoolMisses
    };
    omptel::add(counter, 1);
    buf.clear();
    buf.reserve(needed);
}

/// Feed one sample's wall latency to the progress meter and watchdog.
fn observe_sample(opts: &SweepOptions, job: &BatchJob, config_index: usize, t0: Option<Instant>) {
    let Some(t0) = t0 else { return };
    let ns = t0.elapsed().as_nanos() as u64;
    if let Some(p) = opts.progress {
        p.observe_ns(ns);
    }
    if let Some(w) = opts.watchdog {
        w.observe(ns, || {
            format!(
                "{}/{} i{} t{} c{}",
                job.key.arch.id(),
                job.key.app,
                job.key.input_code,
                job.key.num_threads,
                config_index
            )
        });
    }
}

/// Execute one unit; returns the number of samples it produced.
fn run_unit(
    unit: &Unit,
    job: &BatchJob,
    spec: &SweepSpec,
    opts: &SweepOptions,
    scratch: &mut WorkerScratch,
) -> u64 {
    let cache = opts.cache;
    let observing = opts.observing();
    match unit.kind {
        UnitKind::Configs { start, end } => {
            let _uspan = omptel::span(SpanKind::Unit, unit.batch as u64);
            omptel::flow_in(SpanKind::Unit, unit.flow);
            // Raw-speed path: no flight recorder, no per-sample anomaly
            // watchdog — lookups and batched pricing only. Per-sample
            // spans/instants would all be no-ops here, the batched path
            // prices bit-identically (property-tested), and under a
            // telemetry session `price_batch` delegates to the sequential
            // pricer so region records and counters come out the same —
            // the two paths differ in speed alone. A progress meter rides
            // along (its latency series turns unit-amortized); only the
            // watchdog forces true per-sample timing.
            if !omptel::tracing() && opts.watchdog.is_none() {
                return run_unit_configs_batched(job, spec, opts, scratch, start, end);
            }
            let mut produced = Vec::with_capacity(end - start);
            let mut hits = 0u64;
            let mut misses = 0u64;
            for (config_index, config) in &job.configs[start..end] {
                let sspan = omptel::span(SpanKind::Sample, *config_index as u64);
                let t0 = observing.then(Instant::now);
                let (runtimes, telemetry) = match job.entries.lookup(*config_index, config) {
                    Some(cached) => {
                        hits += 1;
                        omptel::instant(SpanKind::CacheHit, *config_index as u64);
                        cached
                    }
                    None => {
                        misses += 1;
                        run_config_sim(
                            &job.key,
                            &job.model,
                            config,
                            *config_index,
                            spec,
                            &job.noise,
                            Some(&job.plans),
                        )
                    }
                };
                drop(sspan);
                observe_sample(opts, job, *config_index, t0);
                produced.push(RawSample {
                    config_index: *config_index,
                    config: *config,
                    runtimes,
                    telemetry,
                });
            }
            if let Some(c) = cache {
                c.count_hits(hits);
                c.count_misses(misses);
            }
            if misses > 0 {
                job.fresh.store(true, Ordering::Relaxed);
            }
            let mut slots = job.slots.lock().expect("batch slots poisoned");
            for (offset, sample) in produced.into_iter().enumerate() {
                slots[start + offset] = Some(sample);
            }
            (end - start) as u64
        }
        UnitKind::Default => {
            let _uspan = omptel::span(SpanKind::DefaultRow, unit.batch as u64);
            omptel::flow_in(SpanKind::Unit, unit.flow);
            let default_config = TuningConfig::default_for(job.key.arch, job.key.num_threads);
            let sspan = omptel::span(SpanKind::Sample, DEFAULT_ROW_INDEX as u64);
            let t0 = observing.then(Instant::now);
            let result = match job.entries.lookup(DEFAULT_ROW_INDEX, &default_config) {
                Some(cached) => {
                    if let Some(c) = cache {
                        c.count_hits(1);
                    }
                    omptel::instant(SpanKind::CacheHit, DEFAULT_ROW_INDEX as u64);
                    cached
                }
                None => {
                    if let Some(c) = cache {
                        c.count_misses(1);
                    }
                    job.fresh.store(true, Ordering::Relaxed);
                    run_config_sim(
                        &job.key,
                        &job.model,
                        &default_config,
                        DEFAULT_ROW_INDEX,
                        spec,
                        &job.noise,
                        Some(&job.plans),
                    )
                }
            };
            drop(sspan);
            observe_sample(opts, job, DEFAULT_ROW_INDEX, t0);
            *job.default_slot.lock().expect("default slot poisoned") = Some(result);
            1
        }
    }
}

/// The Configs arm of [`run_unit`] when nothing observes per-sample
/// events: every cache lookup runs first, then each run of consecutive
/// misses sharing a plan projection is priced as one SoA batch against
/// a single plan fetch ([`simrt::RegionPlan::price_batch`]). Sampled
/// spaces enumerate the odometer's pricing digits innermost, so a
/// typical cold unit collapses into a handful of plan fetches.
fn run_unit_configs_batched(
    job: &BatchJob,
    spec: &SweepSpec,
    opts: &SweepOptions,
    scratch: &mut WorkerScratch,
    start: usize,
    end: usize,
) -> u64 {
    let slice = &job.configs[start..end];
    let t0 = opts.progress.map(|_| Instant::now());
    pool_reserve(&mut scratch.produced, slice.len());
    pool_reserve(&mut scratch.miss_at, slice.len());
    for (at, (config_index, config)) in slice.iter().enumerate() {
        match job.entries.lookup(*config_index, config) {
            Some((runtimes, telemetry)) => scratch.produced.push(Some(RawSample {
                config_index: *config_index,
                config: *config,
                runtimes,
                telemetry,
            })),
            None => {
                scratch.produced.push(None);
                scratch.miss_at.push((at, config.plan_projection()));
            }
        }
    }
    let hits = (slice.len() - scratch.miss_at.len()) as u64;
    let misses = scratch.miss_at.len() as u64;

    let mut g0 = 0;
    while g0 < scratch.miss_at.len() {
        let projection = scratch.miss_at[g0].1;
        let mut g1 = g0 + 1;
        while g1 < scratch.miss_at.len() && scratch.miss_at[g1].1 == projection {
            g1 += 1;
        }
        scratch.group.clear();
        scratch
            .group
            .extend(scratch.miss_at[g0..g1].iter().map(|&(at, _)| slice[at].1));
        let plan = job
            .plans
            .plan_batch(&scratch.group[0], &job.model, scratch.group.len() as u64);
        scratch.sims.clear();
        plan.price_batch(&scratch.group, &mut scratch.price, &mut scratch.sims);
        omptel::add(omptel::Counter::PricedBatches, 1);
        for (k, sim) in scratch.sims.iter().enumerate() {
            let (at, _) = scratch.miss_at[g0 + k];
            let (config_index, config) = slice[at];
            let (runtimes, telemetry) =
                sample_from_sim(&job.key, sim, &config, config_index, spec, &job.noise);
            scratch.produced[at] = Some(RawSample {
                config_index,
                config,
                runtimes,
                telemetry,
            });
        }
        g0 = g1;
    }

    if let Some(c) = opts.cache {
        c.count_hits(hits);
        c.count_misses(misses);
    }
    if misses > 0 {
        job.fresh.store(true, Ordering::Relaxed);
    }
    let mut slots = job.slots.lock().expect("batch slots poisoned");
    for (offset, sample) in scratch.produced.drain(..).enumerate() {
        slots[start + offset] = Some(sample.expect("every unit sample assembled"));
    }
    drop(slots);
    // Batched execution can't time individual samples; the meter's
    // latency series gets the unit-amortized value instead (its done
    // count advances in the worker loop either way).
    if let (Some(p), Some(t0)) = (opts.progress, t0) {
        let avg = t0.elapsed().as_nanos() as u64 / slice.len().max(1) as u64;
        for _ in 0..slice.len() {
            p.observe_ns(avg);
        }
    }
    slice.len() as u64
}

/// Assemble one finished batch (every unit done) into its output slot
/// and persist it when fresh samples were computed.
fn finalize_batch(
    job: &BatchJob,
    spec: &SweepSpec,
    opts: &SweepOptions,
    out: &Mutex<Vec<Option<SettingData>>>,
    batch_index: usize,
) {
    let cache = opts.cache;
    let samples: Vec<RawSample> = job
        .slots
        .lock()
        .expect("batch slots poisoned")
        .iter_mut()
        .map(|s| s.take().expect("every config slot filled"))
        .collect();
    let (default_runtimes, default_telemetry) = job
        .default_slot
        .lock()
        .expect("default slot poisoned")
        .take()
        .expect("default row filled");
    let data = SettingData {
        key: job.key.clone(),
        samples,
        default_runtimes,
        default_telemetry,
    };
    if let Some(c) = cache {
        if job.fresh.load(Ordering::Relaxed) {
            if let Err(e) = c.store_batch(&data, spec) {
                eprintln!(
                    "sweep-cache: failed to persist {}/{}: {e}",
                    job.key.arch.id(),
                    job.key.app
                );
            }
        }
    }
    if let Some(observe) = opts.on_batch {
        observe(&data);
    }
    out.lock().expect("output poisoned")[batch_index] = Some(data);
}

/// Run a set of batch jobs through the work-stealing worker pool.
fn run_scheduler(jobs: Vec<BatchJob>, spec: &SweepSpec, opts: &SweepOptions) -> SweepOutcome {
    let units = units_of(&jobs);
    let n_units = units.len();
    let workers = opts.workers.clamp(1, n_units.max(1));

    // Seed each worker's deque with a contiguous stripe — the old static
    // split — so steals happen exactly when that split is unbalanced.
    // Each unit's flow handle is "emitted" here so the trace can stitch
    // the seeding thread to whichever worker ultimately runs the unit.
    let mut deques: Vec<Mutex<VecDeque<Unit>>> = Vec::with_capacity(workers);
    {
        let _seed_span = omptel::span(SpanKind::Seed, n_units as u64);
        let mut units = VecDeque::from(units);
        for w in 0..workers {
            let take = (n_units * (w + 1)) / workers - (n_units * w) / workers;
            let stripe: VecDeque<Unit> = units.drain(..take).collect();
            for u in &stripe {
                omptel::flow_out(SpanKind::Unit, u.flow);
            }
            deques.push(Mutex::new(stripe));
        }
        debug_assert!(units.is_empty());
    }

    let out: Mutex<Vec<Option<SettingData>>> = Mutex::new((0..jobs.len()).map(|_| None).collect());
    let steals = AtomicU64::new(0);
    let units_run = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for w in 0..workers {
            let (jobs, deques, out, steals, units_run) =
                (&jobs, &deques, &out, &steals, &units_run);
            scope.spawn(move || {
                let mut scratch = WorkerScratch::default();
                loop {
                    // Own work first, then steal from the back of the
                    // longest-suffering victim in ring order.
                    let mut unit = deques[w].lock().expect("deque poisoned").pop_front();
                    if unit.is_none() {
                        for v in 1..workers {
                            let victim = (w + v) % workers;
                            if let Some(u) =
                                deques[victim].lock().expect("deque poisoned").pop_back()
                            {
                                steals.fetch_add(1, Ordering::Relaxed);
                                omptel::add(omptel::Counter::SweepSteals, 1);
                                omptel::instant(SpanKind::Steal, victim as u64);
                                unit = Some(u);
                                break;
                            }
                        }
                    }
                    // Units are only ever removed, so all-empty means done.
                    let Some(unit) = unit else { break };
                    let job = &jobs[unit.batch];
                    let produced = run_unit(&unit, job, spec, opts, &mut scratch);
                    units_run.fetch_add(1, Ordering::Relaxed);
                    if let Some(p) = opts.progress {
                        p.inc(produced);
                    }
                    if job.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                        finalize_batch(job, spec, opts, out, unit.batch);
                    }
                }
            });
        }
    });

    let batches: Vec<SettingData> = out
        .into_inner()
        .expect("output poisoned")
        .into_iter()
        .map(|d| d.expect("every batch finalized"))
        .collect();

    let mut stats = SweepStats {
        steals: steals.load(Ordering::Relaxed),
        units: units_run.load(Ordering::Relaxed),
        ..SweepStats::default()
    };
    for job in &jobs {
        let (h, m) = job.plans.stats();
        stats.plan_hits += h;
        stats.plan_misses += m;
    }
    if let Some(c) = opts.cache {
        let (h, m) = c.stats();
        stats.sample_hits = h;
        stats.sample_misses = m;
    }
    SweepOutcome { batches, stats }
}

/// Sweep one architecture through the work-stealing scheduler.
pub fn sweep_arch_scheduled(arch: Arch, spec: &SweepSpec, opts: &SweepOptions) -> SweepOutcome {
    let _arch_span = omptel::span(SpanKind::ArchSweep, arch as u64);
    let jobs = build_jobs(arch, &work_list(arch, spec.roster), spec, opts.cache);
    run_scheduler(jobs, spec, opts)
}

/// Sweep one `(app, setting)` batch through the scheduler — the same
/// units, spans, and flows as a full arch sweep, scoped to one batch.
pub fn sweep_setting_scheduled(
    arch: Arch,
    app: &'static AppSpec,
    setting: Setting,
    setting_idx: usize,
    spec: &SweepSpec,
    opts: &SweepOptions,
) -> (SettingData, SweepStats) {
    let jobs = build_jobs(arch, &[(app, setting, setting_idx)], spec, opts.cache);
    let outcome = run_scheduler(jobs, spec, opts);
    let [data] = <[SettingData; 1]>::try_from(outcome.batches)
        .unwrap_or_else(|_| unreachable!("one job in, one batch out"));
    (data, outcome.stats)
}

/// Sweep all architectures through the scheduler, aggregating stats.
/// Note: with a shared [`SampleCache`], per-arch sample stats are
/// cumulative across the whole cache handle.
pub fn sweep_all_scheduled(spec: &SweepSpec, opts: &SweepOptions) -> SweepOutcome {
    let mut batches = Vec::new();
    let mut stats = SweepStats::default();
    for &arch in Arch::ALL.iter() {
        let outcome = sweep_arch_scheduled(arch, spec, opts);
        batches.extend(outcome.batches);
        stats.absorb(&outcome.stats);
    }
    // Sample hits/misses were absorbed per arch from one shared counter;
    // re-read the final cumulative values instead of the triple-sum.
    if let Some(c) = opts.cache {
        let (h, m) = c.stats();
        stats.sample_hits = h;
        stats.sample_misses = m;
    }
    SweepOutcome { batches, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::sweep_arch as sweep_arch_sequential;
    use crate::spec::Scope;

    fn spec(scope: Scope, failure_rate: f64) -> SweepSpec {
        SweepSpec {
            scope,
            reps: 2,
            seed: 13,
            failure_rate,
            ..SweepSpec::default()
        }
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("omptune-sched-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn bits(xs: &[f64]) -> Vec<u64> {
        xs.iter().map(|x| x.to_bits()).collect()
    }

    /// Bit-pattern equality for batch lists: `assert_eq!` would reject
    /// identical data containing failure-injected NaN repetitions.
    fn assert_identical(a: &[SettingData], b: &[SettingData], label: &str) {
        assert_eq!(a.len(), b.len(), "{label}: batch count");
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.key, y.key, "{label}");
            assert_eq!(x.samples.len(), y.samples.len(), "{label}: {:?}", x.key);
            for (s, t) in x.samples.iter().zip(&y.samples) {
                assert_eq!(s.config_index, t.config_index, "{label}");
                assert_eq!(s.config, t.config, "{label}");
                assert_eq!(
                    bits(&s.runtimes),
                    bits(&t.runtimes),
                    "{label}: {:?} config {}",
                    x.key,
                    s.config_index
                );
                assert_eq!(
                    s.telemetry.virtual_ns.to_bits(),
                    t.telemetry.virtual_ns.to_bits(),
                    "{label}"
                );
                assert_eq!(s.telemetry.regions, t.telemetry.regions, "{label}");
                for sink in [s.telemetry.energy.total_j, s.telemetry.energy.wait_j]
                    .into_iter()
                    .zip([t.telemetry.energy.total_j, t.telemetry.energy.wait_j])
                {
                    assert_eq!(sink.0.to_bits(), sink.1.to_bits(), "{label}: energy bits");
                }
            }
            assert_eq!(
                bits(&x.default_runtimes),
                bits(&y.default_runtimes),
                "{label}: default row of {:?}",
                x.key
            );
        }
    }

    #[test]
    fn scheduled_sweep_matches_sequential_at_any_worker_count() {
        let spec = spec(Scope::Strided(1100), 0.0);
        let seq = sweep_arch_sequential(Arch::A64fx, &spec);
        for workers in [1usize, 2, 4] {
            let outcome = sweep_arch_scheduled(Arch::A64fx, &spec, &SweepOptions::new(workers));
            assert_eq!(outcome.batches, seq, "{workers} workers diverged");
            assert!(outcome.stats.units > 0);
            assert!(outcome.stats.plan_misses > 0);
        }
    }

    #[test]
    fn batch_observer_sees_every_batch_exactly_once() {
        use std::sync::Mutex;
        let spec = spec(Scope::Strided(1100), 0.05);
        let plain = sweep_arch_scheduled(Arch::A64fx, &spec, &SweepOptions::new(2));
        let seen: Mutex<Vec<(RunKey, usize)>> = Mutex::new(Vec::new());
        let observer = |data: &SettingData| {
            seen.lock()
                .unwrap()
                .push((data.key.clone(), data.samples.len()));
        };
        let observed = sweep_arch_scheduled(
            Arch::A64fx,
            &spec,
            &SweepOptions::new(4).with_batch_observer(&observer),
        );
        // Observation must not perturb the sweep itself.
        assert_identical(&observed.batches, &plain.batches, "observed run");
        let mut seen = seen.into_inner().unwrap();
        seen.sort_by_key(|(k, _)| format!("{k:?}"));
        let mut expect: Vec<(RunKey, usize)> = plain
            .batches
            .iter()
            .map(|d| (d.key.clone(), d.samples.len()))
            .collect();
        expect.sort_by_key(|(k, _)| format!("{k:?}"));
        assert_eq!(seen, expect, "each batch observed exactly once");
    }

    #[test]
    fn cached_sweep_is_byte_identical_cold_and_warm() {
        let spec = spec(Scope::Strided(900), 0.05);
        let seq = sweep_arch_sequential(Arch::A64fx, &spec);
        let cache = SampleCache::new(tmp_dir("coldwarm"));

        let cold =
            sweep_arch_scheduled(Arch::A64fx, &spec, &SweepOptions::new(3).with_cache(&cache));
        assert_identical(&cold.batches, &seq, "cold cached run");
        let (h0, m0) = cache.stats();
        assert_eq!(h0, 0, "cold run cannot hit");
        assert!(m0 > 0);

        for workers in [1usize, 2, 4] {
            let warm = sweep_arch_scheduled(
                Arch::A64fx,
                &spec,
                &SweepOptions::new(workers).with_cache(&cache),
            );
            assert_identical(&warm.batches, &seq, "warm run");
        }
        let (h1, m1) = cache.stats();
        assert_eq!(m1, m0, "warm runs must not recompute");
        assert_eq!(h1, 3 * m0, "three fully-warm replays");
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn poisoned_cache_degrades_to_recompute_with_identical_results() {
        let spec = spec(Scope::Strided(1300), 0.0);
        let seq = sweep_arch_sequential(Arch::A64fx, &spec);
        let cache = SampleCache::new(tmp_dir("poison"));
        let cold =
            sweep_arch_scheduled(Arch::A64fx, &spec, &SweepOptions::new(2).with_cache(&cache));
        assert_eq!(cold.batches, seq);

        // Vandalize the first record of every hot binary batch (its
        // checksum now fails, so it degrades to a miss — never to a
        // fallback on the archival JSONL, which stays intact beside it).
        let header = 8 * 8;
        let mut damaged = 0;
        for entry in std::fs::read_dir(cache.dir().join("a64fx")).unwrap() {
            let path = entry.unwrap().path();
            if path.extension().is_none_or(|e| e != "bin") {
                continue;
            }
            let mut bytes = std::fs::read(&path).unwrap();
            bytes[header + 16] ^= 0xff;
            std::fs::write(&path, &bytes).unwrap();
            damaged += 1;
        }
        assert!(damaged > 0);

        let warm =
            sweep_arch_scheduled(Arch::A64fx, &spec, &SweepOptions::new(2).with_cache(&cache));
        assert_eq!(warm.batches, seq, "poisoned cache changed results");
        let (_, misses) = cache.stats();
        // Every damaged record was recomputed (one per file).
        assert!(misses as usize >= cold.stats.sample_misses as usize + damaged);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn progress_counts_every_sample() {
        let spec = spec(Scope::Strided(400), 0.0);
        let total = planned_samples(Arch::Skylake, &spec);
        let progress = omptel::Progress::quiet("sweep", total);
        let outcome = sweep_arch_scheduled(
            Arch::Skylake,
            &spec,
            &SweepOptions::new(4).with_progress(&progress),
        );
        assert_eq!(progress.done(), total);
        let produced: u64 = outcome
            .batches
            .iter()
            .map(|b| b.samples.len() as u64 + 1)
            .sum();
        assert_eq!(produced, total);
    }

    #[test]
    fn plan_cache_hits_dominate_dense_batches() {
        // Pricing variables are the odometer's three innermost digits
        // (2 × 4 × 3 = 24 consecutive indices per plan projection on
        // A64FX). Stride 8 samples three configs per projection block,
        // so two of every three simulations re-price a cached plan.
        let spec = spec(Scope::Strided(8), 0.0);
        let outcome = sweep_arch_scheduled(Arch::A64fx, &spec, &SweepOptions::new(4));
        let s = outcome.stats;
        assert!(
            s.plan_hits > s.plan_misses,
            "plan hits {} should dominate misses {}",
            s.plan_hits,
            s.plan_misses
        );
    }
}
