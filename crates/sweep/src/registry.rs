//! The longitudinal run registry backing `ompobs`: an append-only,
//! content-addressed log of every collection run and bench invocation.
//!
//! Layout of a registry directory (`.ompobs/`):
//!
//! - `registry.jsonl` — the archival truth: one JSON record per run,
//!   append-only, never rewritten. A damaged line degrades to
//!   skip-with-counter on load (the [`SampleCache`](crate::SampleCache)
//!   discipline) — corruption costs one record, never the registry.
//! - `registry.idx` — a binary index in the `OMTSDB01` style
//!   (`OMPOBS01` magic, fixed-width u64 records, per-record checksums).
//!   The index is a rebuildable cache over the JSONL: any mismatch —
//!   truncation, stale length, bad checksum — silently falls back to a
//!   full JSONL scan and the index is rewritten.
//!
//! Every record splits into two parts:
//!
//! - **`core`** — the content-addressed digest of what the run
//!   *computed*: sweep spec, per-arch per-stratum virtual-time series,
//!   per-app and per-(variable, value) cost digests (or, for bench
//!   records, the scalar and repetition arrays of a `BENCH_*.json`).
//!   Virtual time is deterministic given the seed, so the core — and
//!   therefore [`RunRecord::record_hash`] — is byte-identical at any
//!   worker count. `f64` figures are stored as `u64` bit patterns for
//!   exact round-trips.
//! - **`info`** — everything legitimately run-varying: wall time,
//!   worker count, scheduler steals, engine counters, the manifest
//!   digest, the timestamp. Informational only; never hashed.
//!
//! The split is what makes the registry a regression instrument: two
//! records with equal `record_hash` computed the same results, whatever
//! machine, worker count, or wall clock produced them.

use crate::runner::{RunKey, SettingData};
use crate::spec::{Roster, Scope, SweepSpec};
use omptune_core::{
    Feature, KmpBlocktime, KmpForceReduction, KmpLibrary, OmpPlaces, OmpProcBind, OmpSchedule,
    TuningConfig,
};
use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Schema marker of pre-energy JSONL lines (still accepted on read).
pub const SCHEMA: &str = "ompobs-run-v1";

/// Schema marker written into every new JSONL line. v2 adds the
/// per-arch energy stratum series and per-app / per-cell microjoule
/// digests; v1 lines parse with those fields empty, and the content
/// hash mixes energy words only when present, so old registries keep
/// validating against their stored addresses.
pub const SCHEMA_V2: &str = "ompobs-run-v2";

/// Config strata the virtual-time series fold into
/// (`config_index % STRATA`); must match `collect`'s tsdb writer and
/// `ompmon::STRATA`.
pub const STRATA: usize = 8;

/// Per-stratum series tail retained in a record. The sentinel pairs
/// points positionally (tail-aligned, like ring files), so the tail is
/// the comparable region; capping it keeps record building — and the
/// record's serialized footprint, which the append path hashes and
/// writes on every run — inside the warm sweep's ≤1.05x overhead
/// budget at paper scale.
pub const SERIES_RETAIN: usize = 16;

const MAGIC: &[u8; 8] = b"OMPOBS01";
const HEADER_BYTES: usize = 40;
const RECORD_BYTES: usize = 56;

const KIND_COLLECT: u64 = 0;
const KIND_BENCH: u64 = 1;

// ---------------------------------------------------------------------------
// Hashing: FNV-1a over bytes for strings/files, and an FNV-style
// word-at-a-time mix for the record core (the core is mostly u64 words;
// hashing words instead of rendered text keeps content addressing off
// the serialization hot path).

/// FNV-1a over raw bytes (same constants as
/// [`config_hash`](crate::config_hash)).
pub fn fnv_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn mix(h: &mut u64, w: u64) {
    *h ^= w;
    *h = h.wrapping_mul(0x100000001b3);
}

fn mix_str(h: &mut u64, s: &str) {
    mix(h, fnv_bytes(s.as_bytes()));
    mix(h, s.len() as u64);
}

/// Content fingerprint of a sweep specification: two runs with equal
/// fingerprints swept the same space the same way, so the sentinel may
/// compare them point-for-point.
pub fn spec_fingerprint(spec: &SweepSpec) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    match spec.scope {
        Scope::Full => mix(&mut h, 1),
        Scope::PaperSized => mix(&mut h, 2),
        Scope::Strided(n) => {
            mix(&mut h, 3);
            mix(&mut h, n as u64);
        }
        Scope::Pruned => mix(&mut h, 4),
    }
    match spec.roster {
        Roster::Paper => mix(&mut h, 11),
        Roster::Generated => mix(&mut h, 12),
        Roster::All => mix(&mut h, 13),
    }
    mix(&mut h, spec.reps as u64);
    mix(&mut h, spec.seed);
    mix(&mut h, spec.failure_rate.to_bits());
    h
}

// ---------------------------------------------------------------------------
// Value domains: the same union label space `ompprof` attributes over
// (stable across architectures), reimplemented here because `ompprof`
// sits above `sweep` in the crate graph.

const ALIGN_UNION: [u32; 4] = [64, 128, 256, 512];

/// Union value labels of one tuning variable, in domain order.
pub fn value_labels(feature: Feature) -> Vec<String> {
    let unset = |v: Option<&str>| v.unwrap_or("unset").to_string();
    match feature {
        Feature::Places => OmpPlaces::ALL
            .iter()
            .map(|v| unset(v.env_value()))
            .collect(),
        Feature::ProcBind => OmpProcBind::ALL
            .iter()
            .map(|v| unset(v.env_value()))
            .collect(),
        Feature::Schedule => OmpSchedule::ALL
            .iter()
            .map(|v| v.env_value().to_string())
            .collect(),
        Feature::Library => KmpLibrary::ALL
            .iter()
            .map(|v| v.env_value().to_string())
            .collect(),
        Feature::Blocktime => KmpBlocktime::ALL
            .iter()
            .map(|v| v.env_value().to_string())
            .collect(),
        Feature::ForceReduction => KmpForceReduction::ALL
            .iter()
            .map(|v| unset(v.env_value()))
            .collect(),
        Feature::AlignAlloc => ALIGN_UNION.iter().map(|b| b.to_string()).collect(),
        other => panic!("{other:?} is not an environment-variable feature"),
    }
}

fn value_index(config: &TuningConfig, feature: Feature) -> usize {
    // Every enum domain's `ALL` array lists variants in declaration
    // order, so the discriminant cast IS the position — O(1) on the
    // per-sample fold path (pinned by `value_index_matches_domain_order`).
    match feature {
        Feature::Places => config.places as usize,
        Feature::ProcBind => config.proc_bind as usize,
        Feature::Schedule => config.schedule as usize,
        Feature::Library => config.library as usize,
        Feature::Blocktime => config.blocktime as usize,
        Feature::ForceReduction => config.force_reduction as usize,
        Feature::AlignAlloc => ALIGN_UNION
            .iter()
            .position(|b| *b == config.align_alloc.0)
            .expect("alignment in union domain"),
        other => panic!("{other:?} is not an environment-variable feature"),
    }
}

// ---------------------------------------------------------------------------
// The content-addressed core of a collection run.

/// One stratum's virtual-time series: one point per sample carrying the
/// simulation's deterministic `virtual_ns` (count 1, sum the ns figure),
/// ring-capped to the most recent [`SERIES_RETAIN`] points. Virtual
/// time is what the perturbation gate scales and what the dashboard
/// renders, and it lives inline in every sample — the fold never has to
/// chase the per-repetition runtime arrays.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StratumSeries {
    /// Points folded over the whole run (retained + evicted).
    pub total: u64,
    /// Point count per retained entry (1 per sample), oldest first.
    pub counts: Vec<u64>,
    /// Virtual-ns figure per retained point, as `f64` bit patterns.
    pub sum_bits: Vec<u64>,
}

impl StratumSeries {
    /// Reference ring-append; [`ArchDigest::fold`] inlines the same
    /// discipline over flat arrays for speed, and
    /// `fold_matches_push_reference` pins the two together.
    #[cfg(test)]
    fn push(&mut self, count: u64, sum: f64) {
        if self.counts.len() < SERIES_RETAIN {
            self.counts.push(count);
            self.sum_bits.push(sum.to_bits());
        } else {
            let at = (self.total as usize) % SERIES_RETAIN;
            self.counts[at] = count;
            self.sum_bits[at] = sum.to_bits();
        }
        self.total += 1;
    }

    /// Restore oldest-first order after ring wrap.
    fn seal(&mut self) {
        if self.counts.len() == SERIES_RETAIN {
            let at = (self.total as usize) % SERIES_RETAIN;
            self.counts.rotate_left(at);
            self.sum_bits.rotate_left(at);
        }
    }

    /// Per-point mean repetition times, oldest first.
    pub fn means(&self) -> Vec<f64> {
        self.counts
            .iter()
            .zip(&self.sum_bits)
            .map(|(&c, &s)| f64::from_bits(s) / c.max(1) as f64)
            .collect()
    }
}

/// Aggregate cost of one application on one architecture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppDigest {
    pub app: String,
    pub samples: u64,
    /// Summed virtual nanoseconds (whole-ns truncation per sample).
    pub virt_ns: u64,
    /// Summed modeled energy in microjoules (whole-µJ truncation per
    /// sample; 0 in pre-energy records).
    pub energy_uj: u64,
}

/// Aggregate cost of one (variable, value) cell on one architecture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellDigest {
    pub variable: String,
    pub value: String,
    pub samples: u64,
    pub virt_ns: u64,
    /// Summed modeled energy in microjoules (0 in pre-energy records).
    pub energy_uj: u64,
}

/// Everything one architecture contributed to a run's core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchDigest {
    pub arch: String,
    pub settings: u64,
    pub samples: u64,
    pub dropped: u64,
    /// `virt[k]` = stratum `config_index % STRATA == k`.
    pub virt: Vec<StratumSeries>,
    /// Per-stratum energy series mirroring `virt`: `sum_bits` hold the
    /// per-sample `total_j` bit patterns (joules), same slots, same
    /// totals. Empty in pre-energy (v1) records — and excluded from the
    /// content hash when empty, so those records keep re-hashing to
    /// their stored address.
    pub energy: Vec<StratumSeries>,
    pub apps: Vec<AppDigest>,
    /// [`Feature::ENV_FEATURES`] × [`value_labels`] order, flattened.
    pub cells: Vec<CellDigest>,
}

/// Flat cell-table capacity; the union label space is 25 slots today.
const CELL_CAP: usize = 32;

/// Per-feature slot offsets into the flat cell table plus its length —
/// no label strings built, so this is cheap enough for every
/// [`BatchPartial::fold`] call.
fn cell_offsets() -> ([usize; Feature::ENV_FEATURES.len()], usize) {
    let mut offsets = [0usize; Feature::ENV_FEATURES.len()];
    let mut len = 0usize;
    for (fi, f) in Feature::ENV_FEATURES.iter().enumerate() {
        offsets[fi] = len;
        len += match f {
            Feature::Places => OmpPlaces::ALL.len(),
            Feature::ProcBind => OmpProcBind::ALL.len(),
            Feature::Schedule => OmpSchedule::ALL.len(),
            Feature::Library => KmpLibrary::ALL.len(),
            Feature::Blocktime => KmpBlocktime::ALL.len(),
            Feature::ForceReduction => KmpForceReduction::ALL.len(),
            Feature::AlignAlloc => ALIGN_UNION.len(),
            other => panic!("{other:?} is not an environment-variable feature"),
        };
    }
    (offsets, len)
}

/// One batch's registry-digest contribution: flat fixed-size
/// accumulators a worker folds the moment it finalizes the batch —
/// while the samples are still cache-hot — so recording a run never
/// needs a second cold walk over every sample. Merged into an
/// [`ArchDigest`] in canonical batch order by
/// [`ArchDigest::from_partials`]; [`ArchDigest::fold`] is the
/// sequential composition of the two steps, so the split cannot drift
/// from the whole-batch definition.
#[derive(Debug, Clone)]
pub struct BatchPartial {
    samples: u64,
    virt: u64,
    energy_uj: u64,
    /// Stratum point counts (`config_index % STRATA`, positive finite
    /// virtual time only).
    strata_count: [u64; STRATA],
    /// Per-stratum ring of `virtual_ns` bit patterns: slot `s` holds
    /// the batch's last point with in-batch index ≡ s (mod RETAIN).
    strata_ring: [[u64; SERIES_RETAIN]; STRATA],
    /// Per-stratum ring of `total_j` bit patterns, written at exactly
    /// the `strata_ring` slots — energy exists for precisely the
    /// samples virtual time does, so the two rings share their count.
    strata_ring_energy: [[u64; SERIES_RETAIN]; STRATA],
    /// (samples, virt_ns, energy_uj) triples interleaved so each slot
    /// update is one index computation touching adjacent words.
    cells: [[u64; 3]; CELL_CAP],
}

impl BatchPartial {
    /// Fold one batch. Per-sample work is a handful of integer adds
    /// over L1-resident arrays, so attaching this as a batch observer
    /// keeps record building inside the warm sweep's overhead budget.
    pub fn fold(data: &SettingData) -> BatchPartial {
        let (offsets, cells_len) = cell_offsets();
        debug_assert!(cells_len <= CELL_CAP, "cell table outgrew CELL_CAP");
        let mut p = BatchPartial {
            samples: 0,
            virt: 0,
            energy_uj: 0,
            strata_count: [0; STRATA],
            strata_ring: [[0; SERIES_RETAIN]; STRATA],
            strata_ring_energy: [[0; SERIES_RETAIN]; STRATA],
            cells: [[0; 3]; CELL_CAP],
        };
        for sample in &data.samples {
            let vns = sample.telemetry.virtual_ns;
            let ej = sample.telemetry.energy.total_j;
            let v = if vns.is_finite() && vns > 0.0 {
                vns as u64
            } else {
                0
            };
            let e = if ej.is_finite() && ej > 0.0 {
                (ej * 1e6) as u64
            } else {
                0
            };
            if v > 0 {
                let k = sample.config_index % STRATA;
                let at = (p.strata_count[k] as usize) % SERIES_RETAIN;
                p.strata_ring[k][at] = vns.to_bits();
                p.strata_ring_energy[k][at] = ej.to_bits();
                p.strata_count[k] += 1;
            }
            p.samples += 1;
            p.virt += v;
            p.energy_uj += e;
            // Unrolled `ENV_FEATURES` walk via `value_index`'s O(1)
            // discriminant casts — no per-feature dispatch. The align
            // slot maps 64/128/256/512 bytes to 0..=3 with a bit trick
            // instead of scanning `ALIGN_UNION`; the
            // `value_index_matches_domain_order` test pins both to the
            // same ordering.
            let c = &sample.config;
            let align_at = ((c.align_alloc.0.trailing_zeros() as usize).saturating_sub(6)).min(3);
            debug_assert_eq!(align_at, value_index(c, Feature::AlignAlloc));
            let slots = [
                offsets[0] + c.places as usize,
                offsets[1] + c.proc_bind as usize,
                offsets[2] + c.schedule as usize,
                offsets[3] + c.library as usize,
                offsets[4] + c.blocktime as usize,
                offsets[5] + c.force_reduction as usize,
                offsets[6] + align_at,
            ];
            for &at in &slots {
                p.cells[at][0] += 1;
                p.cells[at][1] += v;
                p.cells[at][2] += e;
            }
        }
        p
    }
}

impl ArchDigest {
    /// Fold one architecture's batches: per-batch partials merged in
    /// batch order. Equivalent to one per-sample pass, but callers that
    /// folded each batch at production time (cache-hot, via a sweep
    /// batch observer) can hand the partials to
    /// [`ArchDigest::from_partials`] and skip re-walking every sample.
    pub fn fold(arch: &str, batches: &[SettingData], dropped: u64) -> ArchDigest {
        Self::from_partials(
            arch,
            batches
                .iter()
                .map(|d| (d.key.app.as_str(), BatchPartial::fold(d))),
            dropped,
        )
    }

    /// Merge per-batch partials — in canonical batch order — into
    /// exactly the digest a whole-arch per-sample fold produces. The
    /// per-stratum ring merge is exact: after `T` earlier points, a
    /// batch's ring slot `s` (its last point with in-batch index ≡ s
    /// mod RETAIN) lands at arch slot `(T + s) % RETAIN`; any point the
    /// batch ring evicted had ≥ RETAIN later points in the same batch,
    /// so it could never survive the arch-wide ring either.
    pub fn from_partials<'p, I>(arch: &str, parts: I, dropped: u64) -> ArchDigest
    where
        I: IntoIterator<Item = (&'p str, BatchPartial)>,
    {
        let mut ring_sums = [[0u64; SERIES_RETAIN]; STRATA];
        let mut ring_energy = [[0u64; SERIES_RETAIN]; STRATA];
        let mut ring_total = [0u64; STRATA];
        let mut cells_acc = [[0u64; 3]; CELL_CAP];
        let mut apps: Vec<AppDigest> = Vec::new();
        let mut samples_total = 0u64;
        let mut settings = 0u64;
        for (app, p) in parts {
            settings += 1;
            let app_at = match apps.iter().position(|a| a.app == app) {
                Some(i) => i,
                None => {
                    apps.push(AppDigest {
                        app: app.to_string(),
                        samples: 0,
                        virt_ns: 0,
                        energy_uj: 0,
                    });
                    apps.len() - 1
                }
            };
            apps[app_at].samples += p.samples;
            apps[app_at].virt_ns += p.virt;
            apps[app_at].energy_uj += p.energy_uj;
            samples_total += p.samples;
            for k in 0..STRATA {
                let c = p.strata_count[k];
                let written = (c as usize).min(SERIES_RETAIN);
                let t = ring_total[k] as usize;
                for s in 0..written {
                    ring_sums[k][(t + s) % SERIES_RETAIN] = p.strata_ring[k][s];
                    ring_energy[k][(t + s) % SERIES_RETAIN] = p.strata_ring_energy[k][s];
                }
                ring_total[k] += c;
            }
            for (acc, part) in cells_acc.iter_mut().zip(&p.cells) {
                acc[0] += part[0];
                acc[1] += part[1];
                acc[2] += part[2];
            }
        }
        let mut virt = Vec::with_capacity(STRATA);
        let mut energy = Vec::with_capacity(STRATA);
        for k in 0..STRATA {
            let total = ring_total[k];
            let retained = (total as usize).min(SERIES_RETAIN);
            let mut s = StratumSeries {
                total,
                // Every retained point is a single sample.
                counts: vec![1; retained],
                sum_bits: ring_sums[k][..retained].to_vec(),
            };
            s.seal();
            virt.push(s);
            let mut e = StratumSeries {
                total,
                counts: vec![1; retained],
                sum_bits: ring_energy[k][..retained].to_vec(),
            };
            e.seal();
            energy.push(e);
        }
        let mut labels: Vec<(&'static str, String)> = Vec::new();
        for f in Feature::ENV_FEATURES.iter() {
            for value in value_labels(*f) {
                labels.push((f.name(), value));
            }
        }
        assert!(labels.len() <= CELL_CAP, "cell table outgrew CELL_CAP");
        let cells = labels
            .into_iter()
            .enumerate()
            .map(|(i, (variable, value))| CellDigest {
                variable: variable.to_string(),
                value,
                samples: cells_acc[i][0],
                virt_ns: cells_acc[i][1],
                energy_uj: cells_acc[i][2],
            })
            .collect();
        ArchDigest {
            arch: arch.to_string(),
            settings,
            samples: samples_total,
            dropped,
            virt,
            energy,
            apps,
            cells,
        }
    }

    /// Total attributed virtual nanoseconds (sum over apps).
    pub fn virt_ns(&self) -> u64 {
        self.apps.iter().map(|a| a.virt_ns).sum()
    }

    /// Total attributed modeled energy in microjoules (sum over apps;
    /// 0 for pre-energy records).
    pub fn energy_uj(&self) -> u64 {
        self.apps.iter().map(|a| a.energy_uj).sum()
    }
}

/// The deterministic, content-addressed core of a collection run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectCore {
    pub scope: String,
    pub roster: String,
    pub reps: u32,
    pub seed: u64,
    pub failure_rate_bits: u64,
    pub spec_fingerprint: u64,
    pub arches: Vec<ArchDigest>,
}

impl CollectCore {
    pub fn new(spec: &SweepSpec) -> CollectCore {
        CollectCore {
            scope: format!("{:?}", spec.scope),
            roster: format!("{:?}", spec.roster),
            reps: spec.reps,
            seed: spec.seed,
            failure_rate_bits: spec.failure_rate.to_bits(),
            spec_fingerprint: spec_fingerprint(spec),
            arches: Vec::new(),
        }
    }

    /// Fold and append one architecture's cleaned batches.
    pub fn push_arch(&mut self, arch: &str, batches: &[SettingData], dropped: u64) {
        self.arches.push(ArchDigest::fold(arch, batches, dropped));
    }

    /// Append one architecture from per-batch partials folded at
    /// production time (a sweep batch observer). `partials` may arrive
    /// in any completion order; they are matched to `batches` by batch
    /// key and merged canonically, so the digest — and the record hash
    /// — is byte-identical to [`CollectCore::push_arch`] on the same
    /// batches at any worker count.
    ///
    /// Panics if a batch has no matching partial: the observer runs for
    /// every finalized batch, so a hole means the caller wired the
    /// observer to a different sweep.
    pub fn push_arch_partials(
        &mut self,
        arch: &str,
        batches: &[SettingData],
        mut partials: Vec<(RunKey, BatchPartial)>,
        dropped: u64,
    ) {
        let ordered = batches.iter().map(|data| {
            let at = partials
                .iter()
                .position(|(key, _)| *key == data.key)
                .expect("every batch has an observed partial");
            let (key, partial) = partials.swap_remove(at);
            debug_assert_eq!(key.app, data.key.app);
            (data.key.app.as_str(), partial)
        });
        self.arches
            .push(ArchDigest::from_partials(arch, ordered, dropped));
    }

    fn hash_into(&self, h: &mut u64) {
        mix_str(h, &self.scope);
        mix_str(h, &self.roster);
        mix(h, self.reps as u64);
        mix(h, self.seed);
        mix(h, self.failure_rate_bits);
        mix(h, self.spec_fingerprint);
        for a in &self.arches {
            mix_str(h, &a.arch);
            mix(h, a.settings);
            mix(h, a.samples);
            mix(h, a.dropped);
            for s in &a.virt {
                mix(h, s.total);
                for (&c, &b) in s.counts.iter().zip(&s.sum_bits) {
                    mix(h, c);
                    mix(h, b);
                }
            }
            for app in &a.apps {
                mix_str(h, &app.app);
                mix(h, app.samples);
                mix(h, app.virt_ns);
            }
            for cell in &a.cells {
                mix_str(h, &cell.variable);
                mix_str(h, &cell.value);
                mix(h, cell.samples);
                mix(h, cell.virt_ns);
            }
            // Energy words are content-gated: a pre-energy record
            // parses with an empty series and zero µJ digests, and must
            // keep hashing to its stored content address.
            if !a.energy.is_empty() {
                for s in &a.energy {
                    mix(h, s.total);
                    for (&c, &b) in s.counts.iter().zip(&s.sum_bits) {
                        mix(h, c);
                        mix(h, b);
                    }
                }
                for app in &a.apps {
                    mix(h, app.energy_uj);
                }
                for cell in &a.cells {
                    mix(h, cell.energy_uj);
                }
            }
        }
    }
}

/// The content-addressed core of one bench invocation: every scalar and
/// every repetition array of a `BENCH_*.json`, bits-exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchCore {
    pub bench: String,
    /// Scalar keys with `f64` bit patterns, key-sorted.
    pub scalars: Vec<(String, u64)>,
    /// `*_reps` arrays with `f64` bit patterns, key-sorted.
    pub reps: Vec<(String, Vec<u64>)>,
}

impl BenchCore {
    /// Digest one bench result document (the `BENCH_*.json` format).
    pub fn from_bench_json(bench: &str, text: &str) -> Result<BenchCore, String> {
        let doc: serde::Value =
            serde_json::from_str(text).map_err(|e| format!("unparsable bench JSON: {e}"))?;
        let map = doc.as_map().ok_or("bench JSON is not an object")?;
        let mut scalars = Vec::new();
        let mut reps = Vec::new();
        for (k, v) in map {
            let Some(key) = k.as_str() else { continue };
            if let Some(seq) = v.as_seq() {
                let bits: Vec<u64> = seq
                    .iter()
                    .filter_map(|x| x.as_f64())
                    .map(f64::to_bits)
                    .collect();
                reps.push((key.to_string(), bits));
            } else if let Some(x) = v.as_f64() {
                scalars.push((key.to_string(), x.to_bits()));
            }
        }
        scalars.sort();
        reps.sort();
        Ok(BenchCore {
            bench: bench.to_string(),
            scalars,
            reps,
        })
    }

    fn hash_into(&self, h: &mut u64) {
        mix_str(h, &self.bench);
        for (k, bits) in &self.scalars {
            mix_str(h, k);
            mix(h, *bits);
        }
        for (k, arr) in &self.reps {
            mix_str(h, k);
            mix(h, arr.len() as u64);
            for &b in arr {
                mix(h, b);
            }
        }
    }
}

/// What a registered run computed — the hashed half of a record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunCore {
    Collect(CollectCore),
    Bench(BenchCore),
}

impl RunCore {
    pub fn kind(&self) -> &'static str {
        match self {
            RunCore::Collect(_) => "collect",
            RunCore::Bench(_) => "bench",
        }
    }

    fn kind_code(&self) -> u64 {
        match self {
            RunCore::Collect(_) => KIND_COLLECT,
            RunCore::Bench(_) => KIND_BENCH,
        }
    }

    /// Grouping key: sweeps group by spec fingerprint, benches by name.
    pub fn spec_fp(&self) -> u64 {
        match self {
            RunCore::Collect(c) => c.spec_fingerprint,
            RunCore::Bench(b) => fnv_bytes(b.bench.as_bytes()),
        }
    }

    /// The content address. Covers every word of the core and nothing
    /// of the info, so equal hashes mean equal computed results.
    pub fn hash(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        match self {
            RunCore::Collect(c) => {
                mix(&mut h, KIND_COLLECT);
                c.hash_into(&mut h);
            }
            RunCore::Bench(b) => {
                mix(&mut h, KIND_BENCH);
                b.hash_into(&mut h);
            }
        }
        h
    }
}

/// The run-varying half of a record: context, never identity.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunInfo {
    pub workers: u64,
    pub elapsed_s: f64,
    /// FNV-1a of `manifest.json` bytes (0 when absent).
    pub manifest_digest: u64,
    pub out_dir: String,
    /// Engine/scheduler counters, name-sorted by the writer.
    pub counters: Vec<(String, u64)>,
}

/// One immutable registry entry.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    pub seq: u64,
    pub ts_unix: u64,
    pub git_rev: String,
    pub record_hash: u64,
    pub core: RunCore,
    pub info: RunInfo,
}

// ---------------------------------------------------------------------------
// Serialization: hand-rolled writer (the warm path must not pay
// `format!` per number) and a permissive `serde::Value` reader.

fn push_u64(out: &mut String, v: u64) {
    let mut buf = [0u8; 20];
    let mut at = buf.len();
    let mut v = v;
    loop {
        at -= 1;
        buf[at] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[at..]).expect("decimal digits"));
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    // Names are overwhelmingly clean identifiers: bulk-copy when no
    // byte needs escaping, walk char-by-char only otherwise.
    if s.bytes().all(|b| b >= 0x20 && b != b'"' && b != b'\\') {
        out.push_str(s);
        out.push('"');
        return;
    }
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_u64_array(out: &mut String, vs: &[u64]) {
    out.push('[');
    for (i, &v) in vs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_u64(out, v);
    }
    out.push(']');
}

impl RunRecord {
    /// Render the full JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut o = String::with_capacity(64 * 1024);
        o.push_str("{\"schema\":\"");
        o.push_str(SCHEMA_V2);
        o.push_str("\",\"seq\":");
        push_u64(&mut o, self.seq);
        o.push_str(",\"ts_unix\":");
        push_u64(&mut o, self.ts_unix);
        o.push_str(",\"git_rev\":");
        push_json_str(&mut o, &self.git_rev);
        o.push_str(",\"kind\":\"");
        o.push_str(self.core.kind());
        o.push_str("\",\"record_hash\":");
        push_u64(&mut o, self.record_hash);
        o.push_str(",\"spec_fp\":");
        push_u64(&mut o, self.core.spec_fp());
        o.push_str(",\"core\":");
        match &self.core {
            RunCore::Collect(c) => write_collect_core(&mut o, c),
            RunCore::Bench(b) => write_bench_core(&mut o, b),
        }
        o.push_str(",\"info\":{\"workers\":");
        push_u64(&mut o, self.info.workers);
        o.push_str(&format!(",\"elapsed_s\":{:.6}", self.info.elapsed_s));
        o.push_str(",\"manifest_digest\":");
        push_u64(&mut o, self.info.manifest_digest);
        o.push_str(",\"out_dir\":");
        push_json_str(&mut o, &self.info.out_dir);
        o.push_str(",\"counters\":[");
        for (i, (k, v)) in self.info.counters.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push('[');
            push_json_str(&mut o, k);
            o.push(',');
            push_u64(&mut o, *v);
            o.push(']');
        }
        o.push_str("]}}");
        o
    }

    /// Parse one JSONL line. `Err` carries a short reason; callers
    /// count it and move on — a damaged line never takes the registry
    /// down.
    pub fn from_jsonl(line: &str) -> Result<RunRecord, String> {
        let doc: serde::Value =
            serde_json::from_str(line).map_err(|e| format!("unparsable record: {e}"))?;
        let map = doc.as_map().ok_or("record is not an object")?;
        let get = |name: &str| {
            map.iter()
                .find(|(k, _)| k.as_str() == Some(name))
                .map(|(_, v)| v)
        };
        let schema = get("schema").and_then(|v| v.as_str()).unwrap_or("");
        if schema != SCHEMA && schema != SCHEMA_V2 {
            return Err(format!("unknown schema {schema:?}"));
        }
        let seq = get("seq").and_then(|v| v.as_u64()).ok_or("missing seq")?;
        let ts_unix = get("ts_unix").and_then(|v| v.as_u64()).unwrap_or(0);
        let git_rev = get("git_rev")
            .and_then(|v| v.as_str())
            .unwrap_or("unknown")
            .to_string();
        let record_hash = get("record_hash")
            .and_then(|v| v.as_u64())
            .ok_or("missing record_hash")?;
        let kind = get("kind").and_then(|v| v.as_str()).ok_or("missing kind")?;
        let core_v = get("core").ok_or("missing core")?;
        let core = match kind {
            "collect" => RunCore::Collect(read_collect_core(core_v)?),
            "bench" => RunCore::Bench(read_bench_core(core_v)?),
            other => return Err(format!("unknown kind {other:?}")),
        };
        let mut info = RunInfo::default();
        if let Some(info_map) = get("info").and_then(|v| v.as_map()) {
            for (k, v) in info_map {
                match k.as_str() {
                    Some("workers") => info.workers = v.as_u64().unwrap_or(0),
                    Some("elapsed_s") => info.elapsed_s = v.as_f64().unwrap_or(0.0),
                    Some("manifest_digest") => info.manifest_digest = v.as_u64().unwrap_or(0),
                    Some("out_dir") => {
                        info.out_dir = v.as_str().unwrap_or("").to_string();
                    }
                    Some("counters") => {
                        for pair in v.as_seq().unwrap_or(&[]) {
                            if let Some(p) = pair.as_seq() {
                                if p.len() == 2 {
                                    if let (Some(name), Some(val)) = (p[0].as_str(), p[1].as_u64())
                                    {
                                        info.counters.push((name.to_string(), val));
                                    }
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        // Integrity: the stored address must match the parsed content.
        // A mismatch means the line was altered — treat as corrupt.
        if core.hash() != record_hash {
            return Err("record_hash does not match core content".to_string());
        }
        Ok(RunRecord {
            seq,
            ts_unix,
            git_rev,
            record_hash,
            core,
            info,
        })
    }
}

fn write_collect_core(o: &mut String, c: &CollectCore) {
    o.push_str("{\"scope\":");
    push_json_str(o, &c.scope);
    o.push_str(",\"roster\":");
    push_json_str(o, &c.roster);
    o.push_str(",\"reps\":");
    push_u64(o, c.reps as u64);
    o.push_str(",\"seed\":");
    push_u64(o, c.seed);
    o.push_str(",\"failure_rate_bits\":");
    push_u64(o, c.failure_rate_bits);
    o.push_str(",\"spec_fingerprint\":");
    push_u64(o, c.spec_fingerprint);
    o.push_str(",\"arches\":[");
    for (i, a) in c.arches.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str("{\"arch\":");
        push_json_str(o, &a.arch);
        o.push_str(",\"settings\":");
        push_u64(o, a.settings);
        o.push_str(",\"samples\":");
        push_u64(o, a.samples);
        o.push_str(",\"dropped\":");
        push_u64(o, a.dropped);
        o.push_str(",\"virt\":[");
        for (j, s) in a.virt.iter().enumerate() {
            if j > 0 {
                o.push(',');
            }
            o.push_str("{\"total\":");
            push_u64(o, s.total);
            o.push_str(",\"counts\":");
            push_u64_array(o, &s.counts);
            o.push_str(",\"sum_bits\":");
            push_u64_array(o, &s.sum_bits);
            o.push('}');
        }
        o.push(']');
        if !a.energy.is_empty() {
            o.push_str(",\"energy\":[");
            for (j, s) in a.energy.iter().enumerate() {
                if j > 0 {
                    o.push(',');
                }
                o.push_str("{\"total\":");
                push_u64(o, s.total);
                o.push_str(",\"counts\":");
                push_u64_array(o, &s.counts);
                o.push_str(",\"sum_bits\":");
                push_u64_array(o, &s.sum_bits);
                o.push('}');
            }
            o.push(']');
        }
        o.push_str(",\"apps\":[");
        for (j, app) in a.apps.iter().enumerate() {
            if j > 0 {
                o.push(',');
            }
            o.push_str("{\"app\":");
            push_json_str(o, &app.app);
            o.push_str(",\"samples\":");
            push_u64(o, app.samples);
            o.push_str(",\"virt_ns\":");
            push_u64(o, app.virt_ns);
            o.push_str(",\"energy_uj\":");
            push_u64(o, app.energy_uj);
            o.push('}');
        }
        o.push_str("],\"cells\":[");
        for (j, cell) in a.cells.iter().enumerate() {
            if j > 0 {
                o.push(',');
            }
            o.push_str("{\"var\":");
            push_json_str(o, &cell.variable);
            o.push_str(",\"value\":");
            push_json_str(o, &cell.value);
            o.push_str(",\"samples\":");
            push_u64(o, cell.samples);
            o.push_str(",\"virt_ns\":");
            push_u64(o, cell.virt_ns);
            o.push_str(",\"energy_uj\":");
            push_u64(o, cell.energy_uj);
            o.push('}');
        }
        o.push_str("]}");
    }
    o.push_str("]}");
}

fn write_bench_core(o: &mut String, b: &BenchCore) {
    o.push_str("{\"bench\":");
    push_json_str(o, &b.bench);
    o.push_str(",\"scalars\":[");
    for (i, (k, bits)) in b.scalars.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push('[');
        push_json_str(o, k);
        o.push(',');
        push_u64(o, *bits);
        o.push(']');
    }
    o.push_str("],\"reps\":[");
    for (i, (k, arr)) in b.reps.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push('[');
        push_json_str(o, k);
        o.push(',');
        push_u64_array(o, arr);
        o.push(']');
    }
    o.push_str("]}");
}

fn field<'v>(map: &'v [(serde::Value, serde::Value)], name: &str) -> Option<&'v serde::Value> {
    map.iter()
        .find(|(k, _)| k.as_str() == Some(name))
        .map(|(_, v)| v)
}

fn u64_field(map: &[(serde::Value, serde::Value)], name: &str) -> Result<u64, String> {
    field(map, name)
        .and_then(|v| v.as_u64())
        .ok_or_else(|| format!("missing field {name}"))
}

fn str_field(map: &[(serde::Value, serde::Value)], name: &str) -> Result<String, String> {
    field(map, name)
        .and_then(|v| v.as_str())
        .map(str::to_string)
        .ok_or_else(|| format!("missing field {name}"))
}

fn u64_seq(v: &serde::Value) -> Vec<u64> {
    v.as_seq()
        .unwrap_or(&[])
        .iter()
        .filter_map(|x| x.as_u64())
        .collect()
}

fn read_collect_core(v: &serde::Value) -> Result<CollectCore, String> {
    let map = v.as_map().ok_or("core is not an object")?;
    let mut core = CollectCore {
        scope: str_field(map, "scope")?,
        roster: str_field(map, "roster")?,
        reps: u64_field(map, "reps")? as u32,
        seed: u64_field(map, "seed")?,
        failure_rate_bits: u64_field(map, "failure_rate_bits")?,
        spec_fingerprint: u64_field(map, "spec_fingerprint")?,
        arches: Vec::new(),
    };
    for a in field(map, "arches").and_then(|v| v.as_seq()).unwrap_or(&[]) {
        let am = a.as_map().ok_or("arch digest is not an object")?;
        let mut digest = ArchDigest {
            arch: str_field(am, "arch")?,
            settings: u64_field(am, "settings")?,
            samples: u64_field(am, "samples")?,
            dropped: u64_field(am, "dropped")?,
            virt: Vec::new(),
            energy: Vec::new(),
            apps: Vec::new(),
            cells: Vec::new(),
        };
        for s in field(am, "virt").and_then(|v| v.as_seq()).unwrap_or(&[]) {
            let sm = s.as_map().ok_or("stratum is not an object")?;
            digest.virt.push(StratumSeries {
                total: u64_field(sm, "total")?,
                counts: field(sm, "counts").map(u64_seq).unwrap_or_default(),
                sum_bits: field(sm, "sum_bits").map(u64_seq).unwrap_or_default(),
            });
        }
        // Absent in v1 records: parse to empty, which the content hash
        // gates out.
        for s in field(am, "energy").and_then(|v| v.as_seq()).unwrap_or(&[]) {
            let sm = s.as_map().ok_or("energy stratum is not an object")?;
            digest.energy.push(StratumSeries {
                total: u64_field(sm, "total")?,
                counts: field(sm, "counts").map(u64_seq).unwrap_or_default(),
                sum_bits: field(sm, "sum_bits").map(u64_seq).unwrap_or_default(),
            });
        }
        let opt_u64 = |m: &[(serde::Value, serde::Value)], name: &str| {
            field(m, name).and_then(|v| v.as_u64()).unwrap_or(0)
        };
        for app in field(am, "apps").and_then(|v| v.as_seq()).unwrap_or(&[]) {
            let pm = app.as_map().ok_or("app digest is not an object")?;
            digest.apps.push(AppDigest {
                app: str_field(pm, "app")?,
                samples: u64_field(pm, "samples")?,
                virt_ns: u64_field(pm, "virt_ns")?,
                energy_uj: opt_u64(pm, "energy_uj"),
            });
        }
        for cell in field(am, "cells").and_then(|v| v.as_seq()).unwrap_or(&[]) {
            let cm = cell.as_map().ok_or("cell digest is not an object")?;
            digest.cells.push(CellDigest {
                variable: str_field(cm, "var")?,
                value: str_field(cm, "value")?,
                samples: u64_field(cm, "samples")?,
                virt_ns: u64_field(cm, "virt_ns")?,
                energy_uj: opt_u64(cm, "energy_uj"),
            });
        }
        core.arches.push(digest);
    }
    Ok(core)
}

fn read_bench_core(v: &serde::Value) -> Result<BenchCore, String> {
    let map = v.as_map().ok_or("core is not an object")?;
    let mut core = BenchCore {
        bench: str_field(map, "bench")?,
        scalars: Vec::new(),
        reps: Vec::new(),
    };
    for pair in field(map, "scalars")
        .and_then(|v| v.as_seq())
        .unwrap_or(&[])
    {
        if let Some(p) = pair.as_seq() {
            if p.len() == 2 {
                if let (Some(k), Some(bits)) = (p[0].as_str(), p[1].as_u64()) {
                    core.scalars.push((k.to_string(), bits));
                }
            }
        }
    }
    for pair in field(map, "reps").and_then(|v| v.as_seq()).unwrap_or(&[]) {
        if let Some(p) = pair.as_seq() {
            if p.len() == 2 {
                if let Some(k) = p[0].as_str() {
                    core.reps.push((k.to_string(), u64_seq(&p[1])));
                }
            }
        }
    }
    Ok(core)
}

// ---------------------------------------------------------------------------
// The on-disk registry.

/// Append-only run registry over one directory.
#[derive(Debug, Clone)]
pub struct Registry {
    dir: PathBuf,
}

/// Everything a registry load reports: the surviving records plus the
/// degradation counters (never a panic, never a hard error for data
/// damage — only I/O errors propagate).
#[derive(Debug, Default)]
pub struct RegistryLoad {
    /// Surviving records, seq order.
    pub records: Vec<RunRecord>,
    /// Damaged JSONL lines (or hash-mismatched records) skipped.
    pub corrupt_skipped: u64,
    /// The binary index was missing/stale/damaged and the JSONL was
    /// rescanned (and the index rewritten).
    pub index_rebuilt: bool,
}

struct LockGuard {
    file: fs::File,
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        let _ = self.file.unlock();
    }
}

fn word(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().expect("word in bounds"))
}

fn put_word(buf: &mut Vec<u8>, w: u64) {
    buf.extend_from_slice(&w.to_le_bytes());
}

fn header_checksum(count: u64, jsonl_len: u64) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    mix(&mut h, count);
    mix(&mut h, jsonl_len);
    h
}

fn record_checksum(words: &[u64; 6]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &w in words {
        mix(&mut h, w);
    }
    h
}

impl Registry {
    /// Open (creating if needed) a registry directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Registry> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Registry { dir })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn jsonl_path(&self) -> PathBuf {
        self.dir.join("registry.jsonl")
    }

    fn idx_path(&self) -> PathBuf {
        self.dir.join("registry.idx")
    }

    /// Advisory whole-registry lock: a blocking OS file lock on
    /// `registry.lock`. The kernel releases it when the holder exits —
    /// crashed writers never leave a stale lock behind, so there is no
    /// timeout/takeover heuristic to get wrong, and acquiring it in the
    /// common uncontended case is a single open.
    fn lock(&self) -> io::Result<LockGuard> {
        let file = fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(self.dir.join("registry.lock"))?;
        file.lock()?;
        Ok(LockGuard { file })
    }

    /// Append one run. Assigns the next sequence number, writes the
    /// JSONL line, and extends the binary index, all under the registry
    /// lock. Returns the completed record. The hot path costs a fixed
    /// handful of filesystem operations: one lock-file open (the OS
    /// lock itself is free when uncontended), one append-mode open of
    /// the JSONL, and one read+write open of the index that serves both
    /// the sequence lookup and the in-place extension.
    pub fn append(
        &self,
        core: RunCore,
        info: RunInfo,
        git_rev: &str,
        ts_unix: u64,
    ) -> io::Result<RunRecord> {
        // Content hashing needs no sequence number — do it before
        // taking the lock to keep the critical section I/O-only.
        let record_hash = core.hash();
        let _guard = self.lock()?;
        let mut jsonl = fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(self.jsonl_path())?;
        let jsonl_len = jsonl.metadata()?.len();
        let idx = self.open_trusted_idx(jsonl_len);
        let seq = match &idx {
            Some((_, count)) => *count,
            None if jsonl_len == 0 => 0,
            None => fs::read_to_string(self.jsonl_path())?
                .lines()
                .filter(|l| !l.trim().is_empty())
                .count() as u64,
        };
        let record = RunRecord {
            seq,
            ts_unix,
            git_rev: git_rev.to_string(),
            record_hash,
            core,
            info,
        };
        let mut line = record.to_jsonl();
        line.push('\n');
        jsonl.write_all(line.as_bytes())?;
        jsonl.flush()?;
        self.extend_index(idx, seq, jsonl_len, line.len() as u64, &record)?;
        Ok(record)
    }

    /// Open the index read+write and validate its header against the
    /// current JSONL length. Returns the open handle plus the record
    /// count when everything checks out — the caller reuses the handle
    /// both as the next sequence number and for the in-place extension
    /// — and `None` on any doubt (missing, stale, or damaged index).
    fn open_trusted_idx(&self, jsonl_len: u64) -> Option<(fs::File, u64)> {
        let mut file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(self.idx_path())
            .ok()?;
        let mut head = [0u8; HEADER_BYTES];
        if file.read_exact(&mut head).is_err() || &head[..8] != MAGIC {
            return None;
        }
        let count = word(&head, 8);
        let idx_len = word(&head, 16);
        let checksum = word(&head, 24);
        let file_len = file.metadata().ok()?.len();
        if checksum != header_checksum(count, idx_len)
            || idx_len != jsonl_len
            || file_len != (HEADER_BYTES + count as usize * RECORD_BYTES) as u64
        {
            return None;
        }
        Some((file, count))
    }

    fn extend_index(
        &self,
        idx: Option<(fs::File, u64)>,
        seq: u64,
        offset: u64,
        len: u64,
        record: &RunRecord,
    ) -> io::Result<()> {
        let words = [
            seq,
            offset,
            len,
            record.record_hash,
            record.core.spec_fp(),
            record.core.kind_code(),
        ];
        let entry = [
            words[0],
            words[1],
            words[2],
            words[3],
            words[4],
            words[5],
            record_checksum(&words),
        ];
        let jsonl_len = offset + len;
        // Extend-in-place when the pre-validated handle is available:
        // append the entry, then patch the header. The record lands
        // before the header does, so a crash between the two leaves a
        // stale header — which the next load treats as "rebuild from
        // JSONL", never as truth.
        if let Some((mut file, count)) = idx {
            debug_assert_eq!(count, seq);
            let mut rec = Vec::with_capacity(RECORD_BYTES);
            for &w in &entry {
                put_word(&mut rec, w);
            }
            file.seek(SeekFrom::End(0))?;
            file.write_all(&rec)?;
            let mut patch = Vec::with_capacity(24);
            put_word(&mut patch, count + 1);
            put_word(&mut patch, jsonl_len);
            put_word(&mut patch, header_checksum(count + 1, jsonl_len));
            file.seek(SeekFrom::Start(8))?;
            file.write_all(&patch)?;
            file.flush()?;
            return Ok(());
        }
        // Anything else — missing, stale, or damaged index — is
        // rewritten wholesale from whatever prefix still validates.
        let mut records: Vec<[u64; 7]> = Vec::new();
        if let Ok(buf) = fs::read(self.idx_path()) {
            if buf.len() >= HEADER_BYTES && &buf[..8] == MAGIC {
                let count = word(&buf, 8) as usize;
                if buf.len() == HEADER_BYTES + count * RECORD_BYTES {
                    for i in 0..count {
                        let at = HEADER_BYTES + i * RECORD_BYTES;
                        let mut w = [0u64; 7];
                        for (j, slot) in w.iter_mut().enumerate() {
                            *slot = word(&buf, at + j * 8);
                        }
                        records.push(w);
                    }
                }
            }
        }
        records.truncate(seq as usize);
        records.push(entry);
        let mut buf = Vec::with_capacity(HEADER_BYTES + records.len() * RECORD_BYTES);
        buf.extend_from_slice(MAGIC);
        put_word(&mut buf, records.len() as u64);
        put_word(&mut buf, jsonl_len);
        put_word(&mut buf, header_checksum(records.len() as u64, jsonl_len));
        put_word(&mut buf, 0); // reserved
        for w in &records {
            for &x in w {
                put_word(&mut buf, x);
            }
        }
        let tmp = self.dir.join("registry.idx.tmp");
        fs::write(&tmp, &buf)?;
        fs::rename(&tmp, self.idx_path())
    }

    /// Load every surviving record. Damage degrades, it never fails:
    /// a stale or corrupt index triggers a JSONL rescan (and an index
    /// rewrite), a damaged JSONL line is skipped and counted.
    pub fn load(&self) -> io::Result<RegistryLoad> {
        let mut out = RegistryLoad::default();
        let mut jsonl = Vec::new();
        match fs::File::open(self.jsonl_path()) {
            Ok(mut f) => {
                f.read_to_end(&mut jsonl)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e),
        }
        if let Some(records) = self.load_via_index(&jsonl, &mut out) {
            out.records = records;
            return Ok(out);
        }
        // Index unusable: rescan the archival JSONL line by line.
        out.index_rebuilt = true;
        out.corrupt_skipped = 0;
        let mut offsets = Vec::new();
        let mut at = 0usize;
        let text = String::from_utf8_lossy(&jsonl);
        for line in text.split_inclusive('\n') {
            let trimmed = line.trim();
            if !trimmed.is_empty() {
                match RunRecord::from_jsonl(trimmed) {
                    Ok(rec) => {
                        offsets.push((at as u64, line.len() as u64, rec));
                    }
                    Err(_) => out.corrupt_skipped += 1,
                }
            }
            at += line.len();
        }
        // Best-effort index rewrite so the next load is O(records).
        if let Ok(_guard) = self.lock() {
            let _ = self.rewrite_index(&offsets, jsonl.len() as u64);
        }
        out.records = offsets.into_iter().map(|(_, _, r)| r).collect();
        Ok(out)
    }

    fn load_via_index(&self, jsonl: &[u8], out: &mut RegistryLoad) -> Option<Vec<RunRecord>> {
        let buf = fs::read(self.idx_path()).ok()?;
        if buf.len() < HEADER_BYTES || &buf[..8] != MAGIC {
            return None;
        }
        let count = word(&buf, 8) as usize;
        let jsonl_len = word(&buf, 16);
        if word(&buf, 24) != header_checksum(count as u64, jsonl_len)
            || jsonl_len != jsonl.len() as u64
            || buf.len() != HEADER_BYTES + count * RECORD_BYTES
        {
            return None;
        }
        let mut records = Vec::with_capacity(count);
        for i in 0..count {
            let at = HEADER_BYTES + i * RECORD_BYTES;
            let words = [
                word(&buf, at),
                word(&buf, at + 8),
                word(&buf, at + 16),
                word(&buf, at + 24),
                word(&buf, at + 32),
                word(&buf, at + 40),
            ];
            if word(&buf, at + 48) != record_checksum(&words) {
                return None;
            }
            let (offset, len) = (words[1] as usize, words[2] as usize);
            if offset + len > jsonl.len() {
                return None;
            }
            let Ok(line) = std::str::from_utf8(&jsonl[offset..offset + len]) else {
                out.corrupt_skipped += 1;
                continue;
            };
            match RunRecord::from_jsonl(line.trim()) {
                Ok(rec) if rec.record_hash == words[3] => records.push(rec),
                _ => out.corrupt_skipped += 1,
            }
        }
        Some(records)
    }

    fn rewrite_index(&self, entries: &[(u64, u64, RunRecord)], jsonl_len: u64) -> io::Result<()> {
        let mut buf = Vec::with_capacity(HEADER_BYTES + entries.len() * RECORD_BYTES);
        buf.extend_from_slice(MAGIC);
        put_word(&mut buf, entries.len() as u64);
        put_word(&mut buf, jsonl_len);
        put_word(&mut buf, header_checksum(entries.len() as u64, jsonl_len));
        put_word(&mut buf, 0);
        for (offset, len, rec) in entries {
            let words = [
                rec.seq,
                *offset,
                *len,
                rec.record_hash,
                rec.core.spec_fp(),
                rec.core.kind_code(),
            ];
            for &w in &words {
                put_word(&mut buf, w);
            }
            put_word(&mut buf, record_checksum(&words));
        }
        let tmp = self.dir.join("registry.idx.tmp");
        fs::write(&tmp, &buf)?;
        fs::rename(&tmp, self.idx_path())
    }

    /// Registry listing as JSON — the `/runs` route body and the
    /// `ompobs list --json` output. Hashes render as hex strings so
    /// consumers without exact u64 parsing stay safe.
    pub fn listing_json(&self) -> String {
        let loaded = match self.load() {
            Ok(l) => l,
            Err(e) => {
                let mut o = String::from("{\"error\":");
                push_json_str(&mut o, &e.to_string());
                o.push('}');
                return o;
            }
        };
        let mut o = String::from("{\"dir\":");
        push_json_str(&mut o, &self.dir.display().to_string());
        o.push_str(",\"corrupt_skipped\":");
        push_u64(&mut o, loaded.corrupt_skipped);
        o.push_str(&format!(",\"index_rebuilt\":{},", loaded.index_rebuilt));
        o.push_str("\"records\":[");
        for (i, r) in loaded.records.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str("{\"seq\":");
            push_u64(&mut o, r.seq);
            o.push_str(",\"ts_unix\":");
            push_u64(&mut o, r.ts_unix);
            o.push_str(",\"kind\":\"");
            o.push_str(r.core.kind());
            o.push_str("\",\"git_rev\":");
            push_json_str(&mut o, &r.git_rev);
            o.push_str(&format!(
                ",\"record_hash\":\"{:016x}\",\"spec_fp\":\"{:016x}\"",
                r.record_hash,
                r.core.spec_fp()
            ));
            if let RunCore::Collect(c) = &r.core {
                let samples: u64 = c.arches.iter().map(|a| a.samples).sum();
                o.push_str(",\"samples\":");
                push_u64(&mut o, samples);
            }
            if let RunCore::Bench(b) = &r.core {
                o.push_str(",\"bench\":");
                push_json_str(&mut o, &b.bench);
            }
            o.push('}');
        }
        o.push_str("]}");
        o
    }
}

// ---------------------------------------------------------------------------
// Context helpers for writers.

/// Default registry location for a collection run: a `.ompobs/` sibling
/// of the output directory, so every run written next to its peers
/// lands in the same longitudinal history.
pub fn default_registry_dir(out_dir: &Path) -> PathBuf {
    match out_dir.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.join(".ompobs"),
        _ => PathBuf::from(".ompobs"),
    }
}

/// Registry directory override from the environment (`OMPOBS_DIR`).
pub fn env_registry_dir() -> Option<PathBuf> {
    std::env::var_os("OMPOBS_DIR").map(PathBuf::from)
}

/// Seconds since the Unix epoch (0 if the clock is before it).
pub fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Resolve the current git revision without shelling out: walk up from
/// `start` to a `.git`, follow `HEAD` through loose refs or
/// `packed-refs`. `"unknown"` when nothing resolves — the registry
/// works outside a checkout too.
pub fn detect_git_rev(start: &Path) -> String {
    let start = start.canonicalize().unwrap_or_else(|_| start.to_path_buf());
    for dir in start.ancestors() {
        let dot_git = dir.join(".git");
        let git_dir = if dot_git.is_dir() {
            dot_git
        } else if dot_git.is_file() {
            // Worktree: `.git` is a file "gitdir: <path>".
            match fs::read_to_string(&dot_git) {
                Ok(text) => match text.trim().strip_prefix("gitdir:") {
                    Some(p) => {
                        let p = p.trim();
                        let pb = PathBuf::from(p);
                        if pb.is_absolute() {
                            pb
                        } else {
                            dir.join(pb)
                        }
                    }
                    None => continue,
                },
                Err(_) => continue,
            }
        } else {
            continue;
        };
        let Ok(head) = fs::read_to_string(git_dir.join("HEAD")) else {
            continue;
        };
        let head = head.trim();
        if let Some(refname) = head.strip_prefix("ref:") {
            let refname = refname.trim();
            if let Ok(hash) = fs::read_to_string(git_dir.join(refname)) {
                let hash = hash.trim();
                if !hash.is_empty() {
                    return hash.to_string();
                }
            }
            if let Ok(packed) = fs::read_to_string(git_dir.join("packed-refs")) {
                for line in packed.lines() {
                    let line = line.trim();
                    if line.starts_with('#') || line.starts_with('^') {
                        continue;
                    }
                    if let Some((hash, name)) = line.split_once(' ') {
                        if name.trim() == refname {
                            return hash.trim().to_string();
                        }
                    }
                }
            }
            return "unknown".to_string();
        }
        if head.len() >= 7 && head.bytes().all(|b| b.is_ascii_hexdigit()) {
            return head.to_string();
        }
    }
    "unknown".to_string()
}

/// Register one bench result document into `dir`. The convenience the
/// bench harness and `bench-diff` call: parses the `BENCH_*.json` text,
/// stamps timestamp and git revision, appends.
pub fn record_bench(dir: &Path, bench: &str, json_text: &str) -> io::Result<RunRecord> {
    let core = BenchCore::from_bench_json(bench, json_text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let registry = Registry::open(dir)?;
    registry.append(
        RunCore::Bench(core),
        RunInfo::default(),
        &detect_git_rev(Path::new(".")),
        unix_now(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{sweep_arch_scheduled, SweepOptions};
    use omptune_core::Arch;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ompobs-reg-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn tiny_core(seed: u64) -> CollectCore {
        let spec = SweepSpec {
            scope: Scope::Strided(2000),
            seed,
            ..SweepSpec::default()
        };
        let mut core = CollectCore::new(&spec);
        let outcome = sweep_arch_scheduled(Arch::Skylake, &spec, &SweepOptions::new(2));
        let mut batches = outcome.batches;
        let mut dropped = 0usize;
        for data in &mut batches {
            dropped += crate::clean(data, spec.reps as usize).dropped.len();
        }
        core.push_arch(Arch::Skylake.id(), &batches, dropped as u64);
        core
    }

    #[test]
    fn stratum_series_ring_keeps_tail() {
        let mut s = StratumSeries::default();
        for i in 0..(SERIES_RETAIN as u64 + 10) {
            s.push(3, i as f64);
        }
        s.seal();
        assert_eq!(s.total, SERIES_RETAIN as u64 + 10);
        assert_eq!(s.counts.len(), SERIES_RETAIN);
        let means = s.means();
        // Oldest retained point is #10, newest is the last pushed.
        assert_eq!(means[0], 10.0 / 3.0);
        assert_eq!(means[SERIES_RETAIN - 1], (SERIES_RETAIN as f64 + 9.0) / 3.0);
    }

    #[test]
    fn value_index_matches_domain_order() {
        // The O(1) discriminant cast in `value_index` is only correct
        // while every `ALL` array lists variants in declaration order;
        // pin that for each swept enum domain.
        for (i, v) in OmpPlaces::ALL.iter().enumerate() {
            assert_eq!(*v as usize, i, "OmpPlaces::ALL out of order at {i}");
        }
        for (i, v) in OmpProcBind::ALL.iter().enumerate() {
            assert_eq!(*v as usize, i, "OmpProcBind::ALL out of order at {i}");
        }
        for (i, v) in OmpSchedule::ALL.iter().enumerate() {
            assert_eq!(*v as usize, i, "OmpSchedule::ALL out of order at {i}");
        }
        for (i, v) in KmpLibrary::ALL.iter().enumerate() {
            assert_eq!(*v as usize, i, "KmpLibrary::ALL out of order at {i}");
        }
        for (i, v) in KmpBlocktime::ALL.iter().enumerate() {
            assert_eq!(*v as usize, i, "KmpBlocktime::ALL out of order at {i}");
        }
        for (i, v) in KmpForceReduction::ALL.iter().enumerate() {
            assert_eq!(*v as usize, i, "KmpForceReduction::ALL out of order at {i}");
        }
        // And the alignment union still scans: every union member maps
        // to its own slot, and the fold's trailing-zeros shortcut
        // agrees with the scan.
        for (i, b) in ALIGN_UNION.iter().enumerate() {
            let config = TuningConfig {
                align_alloc: omptune_core::KmpAlignAlloc(*b),
                ..TuningConfig::default_for(Arch::Milan, 96)
            };
            assert_eq!(value_index(&config, Feature::AlignAlloc), i);
            let shortcut = ((b.trailing_zeros() as usize).saturating_sub(6)).min(3);
            assert_eq!(shortcut, i, "bit trick diverged for {b}-byte alignment");
        }
    }

    #[test]
    fn observed_partials_match_whole_fold() {
        // The cache-hot observer path — per-batch partials folded in
        // scheduling-dependent completion order, matched back to
        // canonical order by batch key — must produce bit-identical
        // digests to the one-pass whole-arch fold, at any worker
        // count. Strided(1500) covers both ring regimes: busy strata
        // wrap SERIES_RETAIN, sparse ones stay under it.
        use std::sync::Mutex;
        let spec = SweepSpec {
            scope: Scope::Strided(1500),
            ..SweepSpec::default()
        };
        for workers in [1usize, 2, 4] {
            let sink: Mutex<Vec<(RunKey, BatchPartial)>> = Mutex::new(Vec::new());
            let observe = |data: &SettingData| {
                let partial = BatchPartial::fold(data);
                sink.lock().unwrap().push((data.key.clone(), partial));
            };
            let opts = SweepOptions::new(workers).with_batch_observer(&observe);
            let batches = sweep_arch_scheduled(Arch::Milan, &spec, &opts).batches;
            let partials = sink.into_inner().unwrap();
            assert_eq!(partials.len(), batches.len());
            let whole = ArchDigest::fold(Arch::Milan.id(), &batches, 7);
            let mut core = CollectCore::new(&spec);
            core.push_arch_partials(Arch::Milan.id(), &batches, partials, 7);
            assert_eq!(core.arches[0], whole, "{workers} workers diverged");
        }
    }

    #[test]
    fn pre_energy_records_parse_and_keep_their_address() {
        // Simulate a v1-era record: no energy words anywhere.
        let mut core = tiny_core(9);
        for a in &mut core.arches {
            a.energy.clear();
            for app in &mut a.apps {
                app.energy_uj = 0;
            }
            for cell in &mut a.cells {
                cell.energy_uj = 0;
            }
        }
        let rc = RunCore::Collect(core);
        let record = RunRecord {
            seq: 0,
            ts_unix: 0,
            git_rev: "unknown".to_string(),
            record_hash: rc.hash(),
            core: rc,
            info: RunInfo::default(),
        };
        // A v1 writer stamped the v1 schema and knew nothing of the
        // energy fields; the reader must accept that line and re-derive
        // the same content address (the gate in `hash_into`).
        let v1 = record
            .to_jsonl()
            .replace(SCHEMA_V2, SCHEMA)
            .replace(",\"energy_uj\":0", "");
        assert!(!v1.contains("energy"), "{v1}");
        let back = RunRecord::from_jsonl(&v1).unwrap();
        assert_eq!(back.record_hash, record.record_hash);
        assert_eq!(back, record);
    }

    #[test]
    fn energy_words_are_content_addressed() {
        let core = tiny_core(10);
        let a = &core.arches[0];
        assert!(a.energy.iter().any(|s| s.total > 0), "energy series empty");
        assert!(a.energy_uj() > 0, "no attributed energy");
        // Cell energy must close against app energy the way virt does.
        let app_uj: u64 = a.apps.iter().map(|x| x.energy_uj).sum();
        let cell_uj: u64 = a.cells.iter().map(|c| c.energy_uj).sum();
        assert_eq!(
            cell_uj,
            app_uj * Feature::ENV_FEATURES.len() as u64,
            "each sample lands in one cell per variable"
        );
        let h = RunCore::Collect(core.clone()).hash();
        let mut tampered = core;
        let bit = tampered.arches[0]
            .energy
            .iter_mut()
            .flat_map(|s| s.sum_bits.iter_mut())
            .next()
            .expect("at least one energy point");
        *bit ^= 1;
        assert_ne!(h, RunCore::Collect(tampered).hash(), "energy bit flip");
    }

    #[test]
    fn spec_fingerprint_distinguishes_specs() {
        let base = SweepSpec::default();
        let strided = SweepSpec {
            scope: Scope::Strided(400),
            ..base
        };
        let reseeded = SweepSpec { seed: 7, ..base };
        assert_ne!(spec_fingerprint(&base), spec_fingerprint(&strided));
        assert_ne!(spec_fingerprint(&base), spec_fingerprint(&reseeded));
        assert_eq!(spec_fingerprint(&base), spec_fingerprint(&base.clone()));
    }

    #[test]
    fn fold_is_worker_count_invariant() {
        let spec = SweepSpec {
            scope: Scope::Strided(2000),
            ..SweepSpec::default()
        };
        let mut digests = Vec::new();
        for workers in [1usize, 4] {
            let outcome = sweep_arch_scheduled(Arch::Milan, &spec, &SweepOptions::new(workers));
            let mut batches = outcome.batches;
            for data in &mut batches {
                crate::clean(data, spec.reps as usize);
            }
            digests.push(ArchDigest::fold(Arch::Milan.id(), &batches, 0));
        }
        assert_eq!(digests[0], digests[1]);
        let mut core = CollectCore::new(&spec);
        core.arches.push(digests[0].clone());
        let h1 = RunCore::Collect(core.clone()).hash();
        core.arches[0] = digests[1].clone();
        assert_eq!(h1, RunCore::Collect(core).hash());
    }

    #[test]
    fn collect_record_roundtrips_through_jsonl() {
        let core = tiny_core(0x0527_1CEB);
        let rc = RunCore::Collect(core);
        let record = RunRecord {
            seq: 3,
            ts_unix: 1_700_000_000,
            git_rev: "abcdef012345".to_string(),
            record_hash: rc.hash(),
            core: rc,
            info: RunInfo {
                workers: 4,
                elapsed_s: 1.25,
                manifest_digest: 42,
                out_dir: "dataset".to_string(),
                counters: vec![("steals".to_string(), 17)],
            },
        };
        let line = record.to_jsonl();
        let back = RunRecord::from_jsonl(&line).unwrap();
        assert_eq!(back, record);
        // The round-trip preserves the content address bits-exactly.
        assert_eq!(back.core.hash(), record.record_hash);
    }

    #[test]
    fn bench_core_digests_scalars_and_rep_arrays() {
        let json = r#"{"warm_s": 0.005, "samples": 9090, "warm_s_reps": [0.005, 0.0051, null], "label": "x"}"#;
        let core = BenchCore::from_bench_json("sweep", json).unwrap();
        assert_eq!(core.scalars.len(), 2, "{:?}", core.scalars);
        assert_eq!(core.reps.len(), 1);
        // null reps parse as NaN bits; the array length survives.
        assert_eq!(core.reps[0].1.len(), 3);
        let rc = RunCore::Bench(core);
        let record = RunRecord {
            seq: 0,
            ts_unix: 0,
            git_rev: "unknown".to_string(),
            record_hash: rc.hash(),
            core: rc,
            info: RunInfo::default(),
        };
        let back = RunRecord::from_jsonl(&record.to_jsonl()).unwrap();
        assert_eq!(back, record);
    }

    #[test]
    fn registry_append_load_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let registry = Registry::open(&dir).unwrap();
        let core = tiny_core(1);
        for i in 0..3u64 {
            let rec = registry
                .append(
                    RunCore::Collect(core.clone()),
                    RunInfo {
                        workers: i + 1,
                        ..RunInfo::default()
                    },
                    "deadbeef",
                    100 + i,
                )
                .unwrap();
            assert_eq!(rec.seq, i);
        }
        let loaded = registry.load().unwrap();
        assert_eq!(loaded.records.len(), 3);
        assert_eq!(loaded.corrupt_skipped, 0);
        assert!(!loaded.index_rebuilt, "fresh index must be trusted");
        // Same core content => same address on every record.
        let h0 = loaded.records[0].record_hash;
        assert!(loaded.records.iter().all(|r| r.record_hash == h0));
        assert!(loaded.records.iter().map(|r| r.seq).eq(0..3));
        let listing = registry.listing_json();
        assert!(listing.contains("\"records\""), "{listing}");
        assert!(listing.contains(&format!("{h0:016x}")), "{listing}");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn damaged_jsonl_line_skips_with_counter() {
        let dir = tmp_dir("damaged");
        let registry = Registry::open(&dir).unwrap();
        let core = tiny_core(2);
        registry
            .append(RunCore::Collect(core.clone()), RunInfo::default(), "a", 1)
            .unwrap();
        registry
            .append(RunCore::Collect(core), RunInfo::default(), "b", 2)
            .unwrap();
        // Damage the middle of the first line (content no longer
        // matches its stored hash) without touching the second.
        let jsonl = fs::read_to_string(dir.join("registry.jsonl")).unwrap();
        let damaged = jsonl.replacen("\"samples\":", "\"samplez\":", 1);
        fs::write(dir.join("registry.jsonl"), &damaged).unwrap();
        let loaded = registry.load().unwrap();
        assert_eq!(loaded.corrupt_skipped, 1, "damaged line counted");
        assert_eq!(loaded.records.len(), 1, "intact record survives");
        assert_eq!(loaded.records[0].git_rev, "b");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn truncated_index_rebuilds_from_jsonl() {
        let dir = tmp_dir("truncidx");
        let registry = Registry::open(&dir).unwrap();
        let core = tiny_core(3);
        registry
            .append(RunCore::Collect(core.clone()), RunInfo::default(), "a", 1)
            .unwrap();
        registry
            .append(RunCore::Collect(core.clone()), RunInfo::default(), "b", 2)
            .unwrap();
        let idx = fs::read(dir.join("registry.idx")).unwrap();
        fs::write(dir.join("registry.idx"), &idx[..idx.len() / 2]).unwrap();
        let loaded = registry.load().unwrap();
        assert!(loaded.index_rebuilt, "truncated index must trigger rescan");
        assert_eq!(loaded.records.len(), 2);
        assert_eq!(loaded.corrupt_skipped, 0);
        // The rescue rewrote the index; the next load trusts it again.
        let again = registry.load().unwrap();
        assert!(!again.index_rebuilt);
        assert_eq!(again.records.len(), 2);
        // Appending after a rescue keeps numbering monotone.
        let rec = registry
            .append(RunCore::Collect(core), RunInfo::default(), "c", 3)
            .unwrap();
        assert_eq!(rec.seq, 2);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn missing_index_is_rebuilt_silently() {
        let dir = tmp_dir("noidx");
        let registry = Registry::open(&dir).unwrap();
        registry
            .append(RunCore::Collect(tiny_core(4)), RunInfo::default(), "a", 1)
            .unwrap();
        fs::remove_file(dir.join("registry.idx")).unwrap();
        let loaded = registry.load().unwrap();
        assert!(loaded.index_rebuilt);
        assert_eq!(loaded.records.len(), 1);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn git_rev_resolves_a_plain_checkout() {
        let dir = tmp_dir("git");
        let git = dir.join(".git");
        fs::create_dir_all(git.join("refs/heads")).unwrap();
        fs::write(git.join("HEAD"), "ref: refs/heads/main\n").unwrap();
        fs::write(git.join("refs/heads/main"), "0123abcd0123abcd\n").unwrap();
        assert_eq!(detect_git_rev(&dir), "0123abcd0123abcd");
        // Packed-refs fallback when the loose ref is gone.
        fs::remove_file(git.join("refs/heads/main")).unwrap();
        fs::write(
            git.join("packed-refs"),
            "# pack-refs with: peeled\nfeedface0000 refs/heads/main\n",
        )
        .unwrap();
        assert_eq!(detect_git_rev(&dir), "feedface0000");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn default_registry_dir_is_out_dir_sibling() {
        assert_eq!(
            default_registry_dir(Path::new("/runs/cold")),
            PathBuf::from("/runs/.ompobs")
        );
        assert_eq!(
            default_registry_dir(Path::new("dataset")),
            PathBuf::from(".ompobs")
        );
    }
}
