//! # sweep — large-scale parameter-space exploration harness
//!
//! Reproduces the paper's data-collection pipeline (Sec. IV-B/C):
//!
//! - [`spec`] — sweep scopes, including the exact Table II sample counts,
//! - [`runner`] — deterministic batch execution of
//!   (arch × app × setting × config × repetition) on the simulator with
//!   the per-architecture noise model,
//! - [`dataset`] — cleaning, repetition averaging, speedup computation,
//!   and tabular record building,
//! - [`export`] — the open-sourced artifacts: CSV tables and raw JSON.

pub mod cache;
pub mod dataset;
pub mod export;
pub mod provenance;
pub mod registry;
pub mod runner;
pub mod schedule;
pub mod spec;

pub use cache::{
    migrate_cache_dir, BatchEntries, CacheRecord, MigrationReport, SampleCache, DEFAULT_ROW_INDEX,
    ENGINE_VERSION,
};
pub use dataset::{clean, CleanReport, Dataset, DropReason};
pub use provenance::{
    config_fingerprint, config_hash, provenance_of, read_manifest, read_provenance_jsonl,
    slice_fingerprint, write_manifest, write_provenance_jsonl, ArchManifest, RunManifest,
    SampleProvenance,
};
pub use registry::{
    default_registry_dir, detect_git_rev, record_bench, spec_fingerprint, ArchDigest, BatchPartial,
    BenchCore, CollectCore, Registry, RegistryLoad, RunCore, RunInfo, RunRecord, StratumSeries,
};
pub use runner::{
    noise_stream, sweep_all, sweep_all_parallel, sweep_arch, sweep_arch_parallel, sweep_setting,
    RawSample, RunKey, SampleTelemetry, SettingData,
};
pub use schedule::{
    planned_samples, sweep_all_scheduled, sweep_arch_scheduled, sweep_setting_scheduled,
    SweepOptions, SweepOutcome, SweepStats,
};
pub use spec::{pruned_space, Roster, Scope, SweepSpec};
