//! Sweep specifications: which part of the configuration space to run,
//! and how to reproduce the paper's exact dataset sizes (Table II).
//!
//! The paper reports 53,822 / 99,707 / 90,230 unique samples on A64FX /
//! Milan / Skylake. Those are not full cross-products (cluster failures
//! and cleaning trimmed them), so the reproduction offers several scopes:
//! [`Scope::Full`] sweeps every configuration, [`Scope::PaperSized`]
//! deterministically strides the space so the per-architecture totals
//! match Table II exactly, and [`Scope::Pruned`] sweeps only the
//! configurations `omplint`'s rule engine classifies as valid —
//! canonical representatives of each semantic equivalence class, which
//! cover the same behavior as [`Scope::Full`] at roughly a quarter of
//! the runs.

use omptune_core::{Arch, ConfigSpace, TuningConfig};
use serde::{Deserialize, Serialize};

/// Which slice of the configuration space a sweep covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scope {
    /// Every configuration of every setting.
    Full,
    /// Evenly-strided subsample sized to reproduce Table II.
    PaperSized,
    /// A tiny smoke-test slice (every `n`-th configuration).
    Strided(usize),
    /// Only configurations `omplint` classifies as valid: redundant
    /// points (semantically equal to an earlier canonical point) are
    /// skipped, so the sweep covers every distinct behavior once.
    Pruned,
}

/// Which application roster a sweep covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Roster {
    /// The paper's Table II applications only (the default).
    Paper,
    /// Only the promoted `ompfuzz`-generated apps
    /// (`workloads::generated`).
    Generated,
    /// Paper roster first, then the generated apps.
    All,
}

/// Sweep parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    pub scope: Scope,
    /// Which applications to sweep. [`Scope::PaperSized`]'s Table II
    /// totals are defined over the paper roster; generated settings
    /// appended by [`Roster::All`] each contribute the base per-setting
    /// allocation on top.
    pub roster: Roster,
    /// Timed repetitions per configuration (the paper pairs R0..R3).
    pub reps: u32,
    /// Master seed for the noise model.
    pub seed: u64,
    /// Probability that one repetition fails (node crash, OOM, timeout —
    /// the cluster losses that trimmed the paper's totals). Failed reps
    /// record `NaN` and the whole sample is dropped by
    /// [`crate::dataset::clean`]. Deterministic per sample identity.
    pub failure_rate: f64,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec {
            scope: Scope::PaperSized,
            roster: Roster::Paper,
            reps: 3,
            seed: 0x0527_1CEB,
            failure_rate: 0.0,
        }
    }
}

/// Paper sample totals per architecture (Table II).
pub fn table2_target(arch: Arch) -> usize {
    match arch {
        Arch::A64fx => 53_822,
        Arch::Milan => 99_707,
        Arch::Skylake => 90_230,
    }
}

/// Number of (application, setting) pairs swept on `arch`:
/// every available app has three settings.
pub fn settings_count(arch: Arch) -> usize {
    workloads::apps_on(arch).len() * 3
}

/// How many configurations setting number `setting_idx` (in sweep order)
/// contributes under `scope` on `arch` at `num_threads`. (The thread
/// count only matters for [`Scope::Pruned`]: the linter's redundancy
/// rules depend on the team size through the reduction heuristic.)
pub fn samples_for_setting(
    arch: Arch,
    num_threads: usize,
    setting_idx: usize,
    scope: Scope,
) -> usize {
    let space_len = ConfigSpace::new(arch, 1).len();
    match scope {
        Scope::Full => space_len,
        Scope::Strided(n) => space_len.div_ceil(n.max(1)),
        Scope::PaperSized => {
            let settings = settings_count(arch);
            let target = table2_target(arch);
            let base = target / settings;
            let remainder = target % settings;
            base + usize::from(setting_idx < remainder)
        }
        Scope::Pruned => pruned_space(arch, num_threads).len(),
    }
}

/// The linter-pruned tuning space for one (arch, team size): every
/// point the rule engine classifies as valid, in odometer order.
pub fn pruned_space(arch: Arch, num_threads: usize) -> omptune_core::TuningSpace {
    omplint::lint_space(arch, num_threads)
        .pruned()
        .expect("sweep settings never oversubscribe")
}

/// The configuration indices (into the odometer order of [`ConfigSpace`])
/// sampled for one setting. Evenly spaced, deterministic, unique.
pub fn config_indices(space_len: usize, n_samples: usize) -> Vec<usize> {
    let n = n_samples.min(space_len);
    (0..n).map(|k| k * space_len / n).collect()
}

/// Materialize the sampled configurations for one setting.
pub fn configs_for(
    arch: Arch,
    num_threads: usize,
    setting_idx: usize,
    scope: Scope,
) -> Vec<(usize, TuningConfig)> {
    if scope == Scope::Pruned {
        let pruned = pruned_space(arch, num_threads);
        return pruned
            .indices()
            .iter()
            .map(|&i| (i, pruned.space().get(i).expect("index in space")))
            .collect();
    }
    let space = ConfigSpace::new(arch, num_threads);
    let n = samples_for_setting(arch, num_threads, setting_idx, scope);
    config_indices(space.len(), n)
        .into_iter()
        .map(|i| (i, space.get(i).expect("index in space")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sized_totals_match_table2_exactly() {
        for arch in Arch::ALL {
            let total: usize = (0..settings_count(arch))
                .map(|i| samples_for_setting(arch, arch.cores(), i, Scope::PaperSized))
                .sum();
            assert_eq!(total, table2_target(arch), "{arch}");
        }
    }

    #[test]
    fn settings_counts_per_arch() {
        assert_eq!(settings_count(Arch::A64fx), 45);
        assert_eq!(settings_count(Arch::Milan), 39);
        assert_eq!(settings_count(Arch::Skylake), 36);
    }

    #[test]
    fn config_indices_unique_and_in_range() {
        let idx = config_indices(9216, 2506);
        assert_eq!(idx.len(), 2506);
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
        assert!(*idx.last().unwrap() < 9216);
    }

    #[test]
    fn full_scope_covers_everything() {
        assert_eq!(samples_for_setting(Arch::Milan, 96, 0, Scope::Full), 9216);
        assert_eq!(samples_for_setting(Arch::A64fx, 48, 0, Scope::Full), 4608);
    }

    #[test]
    fn strided_scope_shrinks() {
        assert_eq!(
            samples_for_setting(Arch::Milan, 96, 0, Scope::Strided(100)),
            93
        );
    }

    #[test]
    fn pruned_scope_keeps_only_canonical_configs() {
        // The linter keeps 13 (bind,places) x 3 schedules x 5
        // (library,blocktime) x 3 reductions x aligns canonical points.
        assert_eq!(samples_for_setting(Arch::Milan, 96, 0, Scope::Pruned), 2340);
        assert_eq!(samples_for_setting(Arch::A64fx, 48, 0, Scope::Pruned), 1170);

        let configs = configs_for(Arch::Skylake, 40, 0, Scope::Pruned);
        assert_eq!(configs.len(), 2340);
        let space = ConfigSpace::new(Arch::Skylake, 40);
        for (i, c) in &configs {
            assert_eq!(space.index_of(c), Some(*i));
            // Every swept point is its own canonical form: sweeping it
            // again through the linter must change nothing.
            assert_eq!(omplint::canonicalize(*c), *c);
        }
    }

    #[test]
    fn pruned_scope_is_deterministic() {
        let a = configs_for(Arch::A64fx, 48, 0, Scope::Pruned);
        let b = configs_for(Arch::A64fx, 48, 0, Scope::Pruned);
        assert_eq!(a, b);
    }

    #[test]
    fn configs_are_valid_for_the_space() {
        let configs = configs_for(Arch::Skylake, 40, 0, Scope::Strided(500));
        assert!(!configs.is_empty());
        for (i, c) in &configs {
            assert_eq!(c.num_threads, 40);
            let space = ConfigSpace::new(Arch::Skylake, 40);
            assert_eq!(space.index_of(c), Some(*i));
        }
    }

    #[test]
    fn oversample_clamps_to_space() {
        let idx = config_indices(100, 1000);
        assert_eq!(idx.len(), 100);
    }
}
