//! `omplint` CLI — the two analysis passes as commands.
//!
//! ```text
//! omplint lint  [--arch a64fx|skylake|milan|all] [--threads N] [--json]
//! omplint check [--demo broken-barrier|lock-cycle|join-cycle|race|chunk-overlap|
//!                lost-wakeup|tainted-barrier] [--json]
//! omplint rules
//! ```
//!
//! `lint` classifies the raw configuration universe and reports the
//! pruned sweep space. `check` runs the instrumented runtime over a
//! representative workload (regions, all schedules, all reduction
//! methods, task joins), certifies the recorded schedule, or — with
//! `--demo` — replays a deliberately broken fixture to show detection.
//! `--json` emits the full machine-readable report on stdout.
//!
//! Exit codes follow the `ompmon` convention: 0 = clean, 4 = findings
//! (error-severity diagnostics fired), 2 = usage error, 1 = internal
//! error (e.g. serialization failure).

use omplint::check::{self, fixtures, CheckReport, CHECK_RULES};
use omplint::lint::{self, PointClass, RULES};
use omptune_core::{Arch, OmpSchedule, ReductionMethod, Severity};
use serde::Serialize;

const USAGE: &str = "usage: omplint <lint|check|rules> [options]
  lint  [--arch a64fx|skylake|milan|all] [--threads N] [--json]
  check [--demo broken-barrier|lock-cycle|join-cycle|race|chunk-overlap|
         lost-wakeup|tainted-barrier] [--json]
  rules
exit codes: 0 clean, 4 findings, 2 usage, 1 internal";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("lint") => cmd_lint(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("rules") => cmd_rules(),
        _ => {
            eprintln!("{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

fn parse_flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

#[derive(Serialize)]
struct LintSummary {
    arch: String,
    num_threads: usize,
    raw_points: usize,
    invalid: usize,
    redundant: usize,
    valid: usize,
    pruned_len: usize,
    keep_ratio: f64,
    rule_counts: Vec<(String, usize)>,
}

fn summarize(report: &lint::LintReport) -> LintSummary {
    let valid = report.count(PointClass::Valid);
    let pruned_len = report.pruned().map(|p| p.len()).unwrap_or(0);
    LintSummary {
        arch: report.arch.id().to_string(),
        num_threads: report.num_threads,
        raw_points: report.raw_len(),
        invalid: report.count(PointClass::Invalid),
        redundant: report.count(PointClass::Redundant),
        valid,
        pruned_len,
        keep_ratio: valid as f64 / report.raw_len() as f64,
        rule_counts: report
            .rule_counts()
            .into_iter()
            .map(|(id, n)| (id.to_string(), n))
            .collect(),
    }
}

fn cmd_lint(args: &[String]) -> i32 {
    let arch_arg = parse_flag(args, "--arch").unwrap_or("all");
    let archs: Vec<Arch> = if arch_arg == "all" {
        Arch::ALL.to_vec()
    } else {
        match Arch::ALL.iter().find(|a| a.id() == arch_arg) {
            Some(a) => vec![*a],
            None => {
                eprintln!("unknown arch '{arch_arg}' (a64fx|skylake|milan|all)");
                return 2;
            }
        }
    };
    let threads: Option<usize> = match parse_flag(args, "--threads").map(str::parse) {
        None => None,
        Some(Ok(n)) => Some(n),
        Some(Err(_)) => {
            eprintln!("--threads needs a positive integer");
            return 2;
        }
    };
    let json = has_flag(args, "--json");

    let mut summaries = Vec::new();
    for arch in archs {
        let n = threads.unwrap_or_else(|| arch.cores());
        let report = lint::lint_space(arch, n);
        if !json {
            print_lint_report(&report);
        }
        summaries.push(summarize(&report));
    }
    if json {
        match serde_json::to_string_pretty(&summaries) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("serialization failed: {e:?}");
                return 1;
            }
        }
    }
    0
}

fn print_lint_report(report: &lint::LintReport) {
    let s = summarize(report);
    println!("== lint: {} @ {} threads ==", s.arch, s.num_threads);
    println!(
        "raw universe {} points: {} invalid, {} redundant, {} valid ({:.1}% kept)",
        s.raw_points,
        s.invalid,
        s.redundant,
        s.valid,
        100.0 * s.keep_ratio
    );
    println!("pruned sweep space: {} configurations", s.pruned_len);
    println!("rule firings:");
    for (id, n) in &s.rule_counts {
        let sample = report
            .points
            .iter()
            .flat_map(|p| p.diagnostics.iter())
            .find(|d| &d.rule == id);
        match sample {
            Some(d) if *n > 0 => println!("  {id:<22} {n:>6}  e.g. {}", d.message),
            _ => println!("  {id:<22} {n:>6}"),
        }
    }
    println!();
}

fn cmd_check(args: &[String]) -> i32 {
    let json = has_flag(args, "--json");
    let (label, report) = match parse_flag(args, "--demo") {
        Some("broken-barrier") => (
            "demo: broken barrier",
            check::check_trace(&fixtures::broken_barrier_trace()),
        ),
        Some("lock-cycle") => (
            "demo: lock-order cycle",
            check::check_trace(&fixtures::lock_cycle_trace()),
        ),
        Some("join-cycle") => (
            "demo: task join cycle",
            check::check_trace(&fixtures::join_cycle_trace()),
        ),
        Some("race") => (
            "demo: unsynchronized writes",
            check::check_trace(&fixtures::racy_trace()),
        ),
        Some("chunk-overlap") => (
            "demo: overlapping chunks",
            check::check_trace(&fixtures::overlapping_chunks_trace()),
        ),
        Some("lost-wakeup") => (
            "demo: lost wakeup (stale-epoch park)",
            check::check_trace(&fixtures::lost_wakeup_trace()),
        ),
        Some("tainted-barrier") => (
            "demo: tainted barrier masking a race",
            check::check_trace(&fixtures::tainted_barrier_mask_trace()),
        ),
        Some(other) => {
            eprintln!("unknown demo '{other}'");
            return 2;
        }
        None => ("live runtime workload", live_workload_report()),
    };

    if json {
        match serde_json::to_string_pretty(&report) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("serialization failed: {e:?}");
                return 1;
            }
        }
    } else {
        print_check_report(label, &report);
    }
    if report.is_clean() {
        0
    } else {
        4
    }
}

/// Trace a workload touching every instrumented subsystem: fork-join
/// regions, all three dispatcher schedules, all reduction methods, and
/// nested task joins.
fn live_workload_report() -> CheckReport {
    let pool = omprt::ThreadPool::with_defaults(4);
    let session = omprt::trace::session();

    for schedule in [
        OmpSchedule::Static,
        OmpSchedule::Dynamic,
        OmpSchedule::Guided,
    ] {
        omprt::worksharing::parallel_for(&pool, schedule, 1000, |_| {});
    }
    for method in [
        ReductionMethod::Tree,
        ReductionMethod::Critical,
        ReductionMethod::Atomic,
    ] {
        let sum = omprt::worksharing::parallel_reduce_sum(
            &pool,
            OmpSchedule::Static,
            method,
            1000,
            |i| i as f64,
        );
        assert_eq!(sum, 499_500.0);
    }
    let total = omprt::task_parallel(&pool, || {
        let (a, b) = omprt::join(|| 1u64 + 1, || 2u64 + 2);
        a + b
    });
    assert_eq!(total, 6);

    check::check_trace(&session.finish())
}

fn print_check_report(label: &str, report: &CheckReport) {
    println!("== check: {label} ==");
    let s = &report.stats;
    println!(
        "{} events over {} threads: {} regions, {} barriers ({} episodes), \
         {} tasks ({} stolen), {} locks, {} locations, {} loops ({} chunks)",
        s.events,
        s.threads,
        s.regions,
        s.barriers,
        s.episodes_completed,
        s.tasks,
        s.steals,
        s.locks,
        s.locations,
        s.loops,
        s.chunks
    );
    if s.conds > 0 {
        println!(
            "condvar protocol: {} conds, {} notifies, {} parks",
            s.conds, s.notifies, s.parks
        );
    }
    if report.diagnostics.is_empty() {
        println!("schedule certified: no races, no barrier misuse, no deadlock shapes");
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
    }
    println!();
}

fn cmd_rules() -> i32 {
    println!("lint rules (configuration space):");
    for r in &RULES {
        println!("  {:<7} {:<22} {}", sev(r.severity), r.id, r.summary);
    }
    println!("check rules (synchronization traces):");
    for r in &CHECK_RULES {
        println!("  {:<7} {:<22} {}", sev(r.severity), r.id, r.summary);
    }
    0
}

fn sev(s: Severity) -> &'static str {
    match s {
        Severity::Note => "note",
        Severity::Warning => "warning",
        Severity::Error => "error",
    }
}
