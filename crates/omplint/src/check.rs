//! Happens-before race/deadlock checking over runtime traces.
//!
//! The `check`-instrumented runtime (`omprt::trace`) records one
//! [`Record`] per synchronization event; this module replays the buffer
//! through a vector-clock analysis and certifies the observed schedule:
//!
//! - **Races** — plain `Read`/`Write` events on the same location must be
//!   ordered by the happens-before relation induced by barrier episodes,
//!   lock release→acquire pairs, task spawn→start / complete→join pairs,
//!   and region fork/join. Unordered conflicting accesses fire `C-RACE`.
//! - **Barrier misuse** — a release observed before the episode gathered
//!   its full team (`B-EARLY-RELEASE`), re-arrival before release
//!   (`B-REENTRY`), and inconsistent team sizes (`B-TEAM-MISMATCH`). A
//!   misused episode is *tainted*: it contributes no ordering, so bugs it
//!   would have masked still surface as races.
//! - **Deadlock shapes** — cycles in the lock-order graph
//!   (`D-LOCK-CYCLE`), cycles in the task join-wait graph
//!   (`D-JOIN-CYCLE`), and tasks spawned but never completed
//!   (`D-TASK-INCOMPLETE`).
//! - **Worksharing** — chunk claims within one loop must be disjoint
//!   (`C-CHUNK-OVERLAP`).
//!
//! The analysis is sound for the runtime's own traces because every
//! instrumented site emits while holding the ordering it witnesses (see
//! `omprt::trace`): arrivals precede their releases in log order, task
//! completions precede the joins they unblock, and lock events are
//! emitted inside the critical section.
//!
//! Threads are keyed by the process-unique `os` id, so events leaking
//! from concurrent *untraced* code form isolated components instead of
//! producing false positives.

use crate::lint::Rule;
use omprt::trace::{Event, Record};
use omptune_core::{Diagnostic, Severity};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Rule catalog for the concurrency checker (ids disjoint from the lint
/// catalog; everything here is an error).
pub const CHECK_RULES: [Rule; 12] = [
    Rule {
        id: "B-TEAM-MISMATCH",
        severity: Severity::Error,
        summary: "barrier episode saw a different team size than announced",
    },
    Rule {
        id: "B-EARLY-RELEASE",
        severity: Severity::Error,
        summary: "barrier released a thread before the full team arrived",
    },
    Rule {
        id: "B-REENTRY",
        severity: Severity::Error,
        summary: "thread re-entered a barrier before being released",
    },
    Rule {
        id: "L-MISUSE",
        severity: Severity::Error,
        summary: "lock acquired while held or released by a non-holder",
    },
    Rule {
        id: "D-LOCK-CYCLE",
        severity: Severity::Error,
        summary: "cycle in the lock acquisition-order graph (potential deadlock)",
    },
    Rule {
        id: "D-JOIN-CYCLE",
        severity: Severity::Error,
        summary: "tasks wait on each other's completion in a cycle (deadlock)",
    },
    Rule {
        id: "D-TASK-INCOMPLETE",
        severity: Severity::Error,
        summary: "task was spawned but never completed",
    },
    Rule {
        id: "D-LOST-WAKEUP",
        severity: Severity::Error,
        summary: "thread parked on a stale epoch after the wakeup was already announced",
    },
    Rule {
        id: "T-ORPHAN",
        severity: Severity::Error,
        summary: "task started executing without a recorded spawn",
    },
    Rule {
        id: "T-JOIN-INCOMPLETE",
        severity: Severity::Error,
        summary: "join observed before the joined task completed",
    },
    Rule {
        id: "C-RACE",
        severity: Severity::Error,
        summary: "conflicting accesses to a location are not ordered by happens-before",
    },
    Rule {
        id: "C-CHUNK-OVERLAP",
        severity: Severity::Error,
        summary: "two chunk claims of one worksharing loop overlap",
    },
];

/// A vector clock mapping os-thread ids to event counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct VClock(BTreeMap<u64, u64>);

impl VClock {
    fn get(&self, t: u64) -> u64 {
        self.0.get(&t).copied().unwrap_or(0)
    }

    /// Advance this thread's own component; returns the new value.
    fn tick(&mut self, t: u64) -> u64 {
        let e = self.0.entry(t).or_insert(0);
        *e += 1;
        *e
    }

    fn join(&mut self, other: &VClock) {
        for (&t, &v) in &other.0 {
            let e = self.0.entry(t).or_insert(0);
            if *e < v {
                *e = v;
            }
        }
    }
}

/// Counts of what the checker saw (also the ablation's workload proxy).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckStats {
    pub events: usize,
    pub threads: usize,
    pub regions: usize,
    pub barriers: usize,
    /// Barrier episodes that gathered their full team.
    pub episodes_completed: usize,
    pub tasks: usize,
    pub steals: usize,
    pub locks: usize,
    pub locations: usize,
    pub loops: usize,
    pub chunks: usize,
    /// Condition objects seen in the condvar protocol.
    pub conds: usize,
    /// Epoch announcements (`Notify`) recorded.
    pub notifies: usize,
    /// Park decisions (`ParkBegin`) recorded.
    pub parks: usize,
}

/// The checker's verdict on one trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckReport {
    pub diagnostics: Vec<Diagnostic>,
    pub stats: CheckStats,
}

impl CheckReport {
    /// No error-severity findings: the schedule is certified race- and
    /// deadlock-free.
    pub fn is_clean(&self) -> bool {
        !self
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    pub fn has_rule(&self, id: &str) -> bool {
        self.diagnostics.iter().any(|d| d.rule == id)
    }

    pub fn races(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.rule == "C-RACE")
            .count()
    }
}

/// Certify a trace, returning the stats on success and the formatted
/// findings on failure — the form property tests want.
pub fn certify(records: &[Record]) -> Result<CheckStats, String> {
    let report = check_trace(records);
    if report.is_clean() {
        Ok(report.stats)
    } else {
        let lines: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
        Err(lines.join("\n"))
    }
}

#[derive(Default)]
struct Episode {
    arrivals: u32,
    vc: VClock,
    tainted: bool,
}

#[derive(Default)]
struct BarrierState {
    team: Option<u32>,
    episodes: Vec<Episode>,
    arrived: BTreeMap<u64, usize>,
    released: BTreeMap<u64, usize>,
}

#[derive(Default)]
struct TaskState {
    spawn_vc: Option<VClock>,
    complete_vc: Option<VClock>,
}

#[derive(Default)]
struct LockState {
    last_release: Option<VClock>,
    holder: Option<u64>,
}

#[derive(Default)]
struct LocState {
    /// Epoch of the most recent write: (os, that thread's own component).
    last_write: Option<(u64, u64)>,
    /// Epochs of reads since the last write.
    reads: Vec<(u64, u64)>,
}

#[derive(Default)]
struct RegionState {
    fork_vc: Option<VClock>,
    end_vc: VClock,
}

/// One condition object's protocol state. All three cond events are
/// emitted under the epoch-guarding mutex, so log order on one cond is
/// the mutex order — the invariants below hold exactly, not modulo
/// reordering.
#[derive(Default)]
struct CondState {
    /// Highest epoch announced by a `Notify` so far; `None` until the
    /// first recorded announcement (a thread legitimately parked across
    /// the session start has no notify to compare against).
    last_epoch: Option<u64>,
    /// Join of every notifier's clock: a waker's `ParkEnd` inherits it,
    /// giving the checker the notify→wake happens-before edge.
    notify_vc: VClock,
}

fn tid_str(tid: usize) -> String {
    if tid == usize::MAX {
        "?".to_string()
    } else {
        tid.to_string()
    }
}

/// Emit at most one diagnostic per (rule, object, flavor) so a single
/// buggy barrier in a 10⁵-event trace reports once, not 10⁵ times.
fn fire(
    diags: &mut Vec<Diagnostic>,
    seen: &mut BTreeSet<(&'static str, u64, u64)>,
    rule: &'static str,
    key: (u64, u64),
    message: String,
) {
    if seen.insert((rule, key.0, key.1)) {
        diags.push(Diagnostic::new(rule, Severity::Error, message));
    }
}

/// Find one cycle in a directed graph, returned as the node sequence.
fn find_cycle(edges: &BTreeMap<u64, BTreeSet<u64>>) -> Option<Vec<u64>> {
    fn dfs(
        node: u64,
        edges: &BTreeMap<u64, BTreeSet<u64>>,
        state: &mut BTreeMap<u64, u8>, // 1 = on path, 2 = done
        path: &mut Vec<u64>,
    ) -> Option<Vec<u64>> {
        state.insert(node, 1);
        path.push(node);
        if let Some(next) = edges.get(&node) {
            for &n in next {
                match state.get(&n).copied().unwrap_or(0) {
                    0 => {
                        if let Some(c) = dfs(n, edges, state, path) {
                            return Some(c);
                        }
                    }
                    1 => {
                        let start = path.iter().position(|&p| p == n).unwrap_or(0);
                        let mut cycle = path[start..].to_vec();
                        cycle.push(n);
                        return Some(cycle);
                    }
                    _ => {}
                }
            }
        }
        path.pop();
        state.insert(node, 2);
        None
    }

    let mut state = BTreeMap::new();
    for &node in edges.keys() {
        if state.get(&node).copied().unwrap_or(0) == 0 {
            if let Some(c) = dfs(node, edges, &mut state, &mut Vec::new()) {
                return Some(c);
            }
        }
    }
    None
}

/// Replay a trace through the vector-clock analysis.
pub fn check_trace(records: &[Record]) -> CheckReport {
    let mut clocks: BTreeMap<u64, VClock> = BTreeMap::new();
    let mut barriers: BTreeMap<u64, BarrierState> = BTreeMap::new();
    let mut tasks: BTreeMap<u64, TaskState> = BTreeMap::new();
    let mut locks: BTreeMap<u64, LockState> = BTreeMap::new();
    let mut locs: BTreeMap<u64, LocState> = BTreeMap::new();
    let mut regions: BTreeMap<u64, RegionState> = BTreeMap::new();
    let mut conds: BTreeMap<u64, CondState> = BTreeMap::new();
    let mut loops: BTreeMap<u64, Vec<(usize, usize)>> = BTreeMap::new();
    // Per-thread stack of currently-executing tasks (for join-wait edges).
    let mut exec_stack: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    // Per-thread stack of currently-held locks (for the order graph).
    let mut held: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let mut lock_edges: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
    // Joins that ran before the joined task completed: (enclosing, task).
    let mut pending_joins: Vec<(Option<u64>, u64)> = Vec::new();

    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut seen: BTreeSet<(&'static str, u64, u64)> = BTreeSet::new();
    let mut stats = CheckStats::default();
    let mut episodes_completed = 0usize;
    let mut steals = 0usize;
    let mut notifies = 0usize;
    let mut parks = 0usize;

    for rec in records {
        let os = rec.os;
        let vc = clocks.entry(os).or_default();
        let stamp = vc.tick(os);

        match rec.event {
            Event::RegionFork { region } => {
                regions.entry(region).or_default().fork_vc = Some(vc.clone());
            }
            Event::RegionBegin { region } => {
                if let Some(f) = &regions.entry(region).or_default().fork_vc {
                    vc.join(f);
                }
            }
            Event::RegionEnd { region } => {
                regions.entry(region).or_default().end_vc.join(vc);
            }
            Event::RegionJoin { region } => {
                vc.join(&regions.entry(region).or_default().end_vc);
            }
            Event::BarrierArrive { barrier, team } => {
                let st = barriers.entry(barrier).or_default();
                match st.team {
                    None => st.team = Some(team),
                    Some(t0) if t0 != team => fire(
                        &mut diags,
                        &mut seen,
                        "B-TEAM-MISMATCH",
                        (barrier, 0),
                        format!(
                            "barrier {barrier}: thread {} arrived announcing team {team}, \
                             barrier was created for team {t0}",
                            tid_str(rec.tid)
                        ),
                    ),
                    _ => {}
                }
                let released = st.released.get(&os).copied().unwrap_or(0);
                let arrived = st.arrived.entry(os).or_insert(0);
                if *arrived > released {
                    fire(
                        &mut diags,
                        &mut seen,
                        "B-REENTRY",
                        (barrier, os),
                        format!(
                            "barrier {barrier}: thread {} re-arrived before being released \
                             from episode {}",
                            tid_str(rec.tid),
                            *arrived - 1
                        ),
                    );
                }
                let k = *arrived;
                *arrived += 1;
                if st.episodes.len() <= k {
                    st.episodes.resize_with(k + 1, Episode::default);
                }
                let team_size = st.team.unwrap_or(team);
                let ep = &mut st.episodes[k];
                ep.arrivals += 1;
                ep.vc.join(vc);
                if ep.arrivals > team_size {
                    fire(
                        &mut diags,
                        &mut seen,
                        "B-TEAM-MISMATCH",
                        (barrier, k as u64 + 1),
                        format!(
                            "barrier {barrier}: episode {k} gathered {} arrivals for a team \
                             of {team_size}",
                            ep.arrivals
                        ),
                    );
                }
                if ep.arrivals == team_size {
                    episodes_completed += 1;
                }
            }
            Event::BarrierRelease { barrier } => {
                let st = barriers.entry(barrier).or_default();
                let arrived = st.arrived.get(&os).copied().unwrap_or(0);
                let released = st.released.entry(os).or_insert(0);
                if *released >= arrived {
                    fire(
                        &mut diags,
                        &mut seen,
                        "B-EARLY-RELEASE",
                        (barrier, os),
                        format!(
                            "barrier {barrier}: thread {} released without a matching arrival",
                            tid_str(rec.tid)
                        ),
                    );
                    *released += 1;
                } else {
                    let k = *released;
                    *released += 1;
                    let team_size = st.team.unwrap_or(0);
                    let ep = &mut st.episodes[k];
                    if ep.arrivals < team_size {
                        ep.tainted = true;
                        fire(
                            &mut diags,
                            &mut seen,
                            "B-EARLY-RELEASE",
                            (barrier, u64::MAX - k as u64),
                            format!(
                                "barrier {barrier}: episode {k} released thread {} after only \
                                 {} of {team_size} arrivals",
                                tid_str(rec.tid),
                                ep.arrivals
                            ),
                        );
                    }
                    // A tainted episode provides no ordering: races it
                    // would have hidden must still be reported.
                    if !ep.tainted {
                        vc.join(&ep.vc);
                    }
                }
            }
            Event::TaskSpawn { task } => {
                tasks.entry(task).or_default().spawn_vc = Some(vc.clone());
            }
            Event::TaskSteal { task: _ } => {
                steals += 1;
            }
            Event::TaskStart { task } => {
                let st = tasks.entry(task).or_default();
                if let Some(s) = &st.spawn_vc {
                    vc.join(s);
                } else {
                    fire(
                        &mut diags,
                        &mut seen,
                        "T-ORPHAN",
                        (task, 0),
                        format!("task {task} started without a recorded spawn"),
                    );
                }
                exec_stack.entry(os).or_default().push(task);
            }
            Event::TaskComplete { task } => {
                tasks.entry(task).or_default().complete_vc = Some(vc.clone());
                if let Some(stack) = exec_stack.get_mut(&os) {
                    if stack.last() == Some(&task) {
                        stack.pop();
                    }
                }
            }
            Event::TaskJoin { task } => {
                match tasks.get(&task).and_then(|t| t.complete_vc.as_ref()) {
                    Some(cvc) => vc.join(cvc),
                    None => {
                        let enclosing = exec_stack.get(&os).and_then(|s| s.last().copied());
                        pending_joins.push((enclosing, task));
                    }
                }
            }
            Event::LockAcquire { lock } => {
                let st = locks.entry(lock).or_default();
                if let Some(h) = st.holder {
                    fire(
                        &mut diags,
                        &mut seen,
                        "L-MISUSE",
                        (lock, os),
                        format!("lock {lock} acquired while already held by thread {h}"),
                    );
                }
                if let Some(rel) = &st.last_release {
                    vc.join(rel);
                }
                st.holder = Some(os);
                let hstack = held.entry(os).or_default();
                for &h in hstack.iter() {
                    if h != lock {
                        lock_edges.entry(h).or_default().insert(lock);
                    }
                }
                hstack.push(lock);
            }
            Event::LockRelease { lock } => {
                let st = locks.entry(lock).or_default();
                if st.holder != Some(os) {
                    fire(
                        &mut diags,
                        &mut seen,
                        "L-MISUSE",
                        (lock, u64::MAX - os),
                        format!(
                            "lock {lock} released by thread {} which does not hold it",
                            tid_str(rec.tid)
                        ),
                    );
                }
                st.holder = None;
                st.last_release = Some(vc.clone());
                if let Some(hstack) = held.get_mut(&os) {
                    if let Some(pos) = hstack.iter().rposition(|&l| l == lock) {
                        hstack.remove(pos);
                    }
                }
            }
            Event::Write { loc } => {
                let st = locs.entry(loc).or_default();
                if let Some((wos, ws)) = st.last_write {
                    if wos != os && vc.get(wos) < ws {
                        fire(
                            &mut diags,
                            &mut seen,
                            "C-RACE",
                            (loc, 0),
                            format!("write-write race on location {loc}"),
                        );
                    }
                }
                for &(ros, rs) in &st.reads {
                    if ros != os && vc.get(ros) < rs {
                        fire(
                            &mut diags,
                            &mut seen,
                            "C-RACE",
                            (loc, 1),
                            format!("read-write race on location {loc}"),
                        );
                    }
                }
                st.last_write = Some((os, stamp));
                st.reads.clear();
            }
            Event::Read { loc } => {
                let st = locs.entry(loc).or_default();
                if let Some((wos, ws)) = st.last_write {
                    if wos != os && vc.get(wos) < ws {
                        fire(
                            &mut diags,
                            &mut seen,
                            "C-RACE",
                            (loc, 2),
                            format!("write-read race on location {loc}"),
                        );
                    }
                }
                st.reads.push((os, stamp));
            }
            Event::ChunkClaim { loop_id, lo, hi } => {
                loops.entry(loop_id).or_default().push((lo, hi));
            }
            Event::Notify { cond, epoch } => {
                notifies += 1;
                let st = conds.entry(cond).or_default();
                st.last_epoch = Some(st.last_epoch.map_or(epoch, |e| e.max(epoch)));
                st.notify_vc.join(vc);
            }
            Event::ParkBegin { cond, epoch } => {
                parks += 1;
                let st = conds.entry(cond).or_default();
                // A park is lost-wakeup-prone exactly when the observed
                // epoch is older than an announcement already on record:
                // the thread read the epoch, missed the notify, and went
                // to sleep anyway. The runtime's correct discipline
                // (re-check and emit under the guarding mutex) can never
                // produce this shape.
                if let Some(last) = st.last_epoch {
                    if epoch < last {
                        fire(
                            &mut diags,
                            &mut seen,
                            "D-LOST-WAKEUP",
                            (cond, os),
                            format!(
                                "cond {cond}: thread {} parked having observed epoch \
                                 {epoch} after epoch {last} was already announced — \
                                 the wakeup was missed",
                                tid_str(rec.tid)
                            ),
                        );
                    }
                }
            }
            Event::ParkEnd { cond, epoch: _ } => {
                vc.join(&conds.entry(cond).or_default().notify_vc);
            }
        }
    }

    // --- end-of-trace analyses -----------------------------------------

    for (id, t) in &tasks {
        if t.spawn_vc.is_some() && t.complete_vc.is_none() {
            fire(
                &mut diags,
                &mut seen,
                "D-TASK-INCOMPLETE",
                (*id, 0),
                format!("task {id} was spawned but never completed"),
            );
        }
    }

    let mut join_edges: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
    for (enclosing, task) in &pending_joins {
        if let Some(waiter) = enclosing {
            join_edges.entry(*waiter).or_default().insert(*task);
        }
    }
    let join_cycle = find_cycle(&join_edges);
    if let Some(cycle) = &join_cycle {
        let path: Vec<String> = cycle.iter().map(|t| t.to_string()).collect();
        fire(
            &mut diags,
            &mut seen,
            "D-JOIN-CYCLE",
            (cycle[0], 0),
            format!(
                "tasks deadlock waiting on each other: {}",
                path.join(" -> ")
            ),
        );
    }
    for (enclosing, task) in &pending_joins {
        let in_cycle = join_cycle.as_ref().is_some_and(|c| {
            c.contains(task) && enclosing.map(|e| c.contains(&e)).unwrap_or(false)
        });
        if !in_cycle {
            fire(
                &mut diags,
                &mut seen,
                "T-JOIN-INCOMPLETE",
                (*task, 0),
                format!("task {task} was joined before it completed"),
            );
        }
    }

    if let Some(cycle) = find_cycle(&lock_edges) {
        let path: Vec<String> = cycle.iter().map(|l| l.to_string()).collect();
        fire(
            &mut diags,
            &mut seen,
            "D-LOCK-CYCLE",
            (cycle[0], 0),
            format!("locks are acquired in cyclic order: {}", path.join(" -> ")),
        );
    }

    let mut chunk_count = 0usize;
    for (loop_id, claims) in &mut loops {
        chunk_count += claims.len();
        claims.sort_unstable();
        for w in claims.windows(2) {
            let (_, prev_hi) = w[0];
            let (lo, hi) = w[1];
            if prev_hi > lo {
                fire(
                    &mut diags,
                    &mut seen,
                    "C-CHUNK-OVERLAP",
                    (*loop_id, 0),
                    format!(
                        "loop {loop_id}: chunk [{lo}, {hi}) overlaps an earlier claim \
                         ending at {prev_hi}"
                    ),
                );
            }
        }
    }

    stats.events = records.len();
    stats.threads = clocks.len();
    stats.regions = regions.len();
    stats.barriers = barriers.len();
    stats.episodes_completed = episodes_completed;
    stats.tasks = tasks.len();
    stats.steals = steals;
    stats.locks = locks.len();
    stats.locations = locs.len();
    stats.loops = loops.len();
    stats.chunks = chunk_count;
    stats.conds = conds.len();
    stats.notifies = notifies;
    stats.parks = parks;

    CheckReport {
        diagnostics: diags,
        stats,
    }
}

/// Hand-built traces exercising the checker's failure modes: the
/// deliberately broken barrier the acceptance test demands, plus cycle
/// and race shapes. Also used by `omplint check --demo`.
pub mod fixtures {
    use omprt::trace::{Event, Record};

    fn rec(tid: usize, os: u64, event: Event) -> Record {
        Record { tid, os, event }
    }

    /// Two threads exchange values through a barrier that waits for
    /// nobody: thread 0 publishes to location 11 and reads 12, thread 1
    /// publishes to 12 and reads 11, but the "barrier" releases each
    /// thread immediately. The checker must flag the early release and
    /// the resulting race.
    pub fn broken_barrier_trace() -> Vec<Record> {
        vec![
            rec(0, 1, Event::Write { loc: 11 }),
            rec(
                0,
                1,
                Event::BarrierArrive {
                    barrier: 5,
                    team: 2,
                },
            ),
            rec(0, 1, Event::BarrierRelease { barrier: 5 }),
            rec(0, 1, Event::Read { loc: 12 }),
            rec(1, 2, Event::Write { loc: 12 }),
            rec(
                1,
                2,
                Event::BarrierArrive {
                    barrier: 5,
                    team: 2,
                },
            ),
            rec(1, 2, Event::BarrierRelease { barrier: 5 }),
            rec(1, 2, Event::Read { loc: 11 }),
        ]
    }

    /// The same exchange through a correct barrier: all arrivals precede
    /// all releases. Must check clean.
    pub fn correct_barrier_trace() -> Vec<Record> {
        vec![
            rec(0, 1, Event::Write { loc: 11 }),
            rec(
                0,
                1,
                Event::BarrierArrive {
                    barrier: 5,
                    team: 2,
                },
            ),
            rec(1, 2, Event::Write { loc: 12 }),
            rec(
                1,
                2,
                Event::BarrierArrive {
                    barrier: 5,
                    team: 2,
                },
            ),
            rec(1, 2, Event::BarrierRelease { barrier: 5 }),
            rec(1, 2, Event::Read { loc: 11 }),
            rec(0, 1, Event::BarrierRelease { barrier: 5 }),
            rec(0, 1, Event::Read { loc: 12 }),
        ]
    }

    /// Task 1's body joins task 2 while task 2's body joins task 1.
    pub fn join_cycle_trace() -> Vec<Record> {
        vec![
            rec(0, 1, Event::TaskSpawn { task: 1 }),
            rec(1, 2, Event::TaskSpawn { task: 2 }),
            rec(1, 2, Event::TaskStart { task: 1 }),
            rec(0, 1, Event::TaskStart { task: 2 }),
            rec(0, 1, Event::TaskJoin { task: 1 }),
            rec(1, 2, Event::TaskJoin { task: 2 }),
        ]
    }

    /// Thread 0 acquires locks 1 then 2; thread 1 acquires 2 then 1.
    /// This interleaving completes, but the order graph has a cycle.
    pub fn lock_cycle_trace() -> Vec<Record> {
        vec![
            rec(0, 1, Event::LockAcquire { lock: 1 }),
            rec(0, 1, Event::LockAcquire { lock: 2 }),
            rec(0, 1, Event::LockRelease { lock: 2 }),
            rec(0, 1, Event::LockRelease { lock: 1 }),
            rec(1, 2, Event::LockAcquire { lock: 2 }),
            rec(1, 2, Event::LockAcquire { lock: 1 }),
            rec(1, 2, Event::LockRelease { lock: 1 }),
            rec(1, 2, Event::LockRelease { lock: 2 }),
        ]
    }

    /// Two threads write one location with no synchronization at all.
    pub fn racy_trace() -> Vec<Record> {
        vec![
            rec(0, 1, Event::Write { loc: 7 }),
            rec(1, 2, Event::Write { loc: 7 }),
        ]
    }

    /// One worksharing loop hands iteration 5 to two claims.
    pub fn overlapping_chunks_trace() -> Vec<Record> {
        vec![
            rec(
                0,
                1,
                Event::ChunkClaim {
                    loop_id: 3,
                    lo: 0,
                    hi: 6,
                },
            ),
            rec(
                1,
                2,
                Event::ChunkClaim {
                    loop_id: 3,
                    lo: 5,
                    hi: 10,
                },
            ),
        ]
    }

    /// A classic lost wakeup: the notifier announces epoch 1, but the
    /// waiter — having read the epoch *outside* the guarding lock —
    /// parks still believing it is 0. The wakeup it needed has already
    /// happened; nobody will notify again.
    pub fn lost_wakeup_trace() -> Vec<Record> {
        vec![
            rec(0, 1, Event::Notify { cond: 4, epoch: 1 }),
            rec(1, 2, Event::ParkBegin { cond: 4, epoch: 0 }),
        ]
    }

    /// The correct condvar discipline for the same exchange: the waiter
    /// re-checks the epoch under the lock, parks on the current epoch,
    /// and wakes when the next announcement lands. Must check clean.
    pub fn correct_parking_trace() -> Vec<Record> {
        vec![
            rec(0, 1, Event::Notify { cond: 4, epoch: 1 }),
            rec(1, 2, Event::ParkBegin { cond: 4, epoch: 1 }),
            rec(0, 1, Event::Notify { cond: 4, epoch: 2 }),
            rec(1, 2, Event::ParkEnd { cond: 4, epoch: 2 }),
        ]
    }

    /// A tainted barrier that would mask a race if the checker trusted
    /// it: thread 0 publishes and releases itself *early* (1 of 2
    /// arrivals); thread 1 arrives afterwards, so at its own release the
    /// episode looks complete — but the episode was already tainted, so
    /// it must provide no ordering and thread 1's read of thread 0's
    /// publication must still be reported as a race.
    pub fn tainted_barrier_mask_trace() -> Vec<Record> {
        vec![
            rec(0, 1, Event::Write { loc: 21 }),
            rec(
                0,
                1,
                Event::BarrierArrive {
                    barrier: 8,
                    team: 2,
                },
            ),
            rec(0, 1, Event::BarrierRelease { barrier: 8 }),
            rec(1, 2, Event::Write { loc: 22 }),
            rec(
                1,
                2,
                Event::BarrierArrive {
                    barrier: 8,
                    team: 2,
                },
            ),
            rec(1, 2, Event::BarrierRelease { barrier: 8 }),
            rec(1, 2, Event::Read { loc: 21 }),
        ]
    }

    /// A thread arrives twice at a barrier without being released.
    pub fn reentrant_barrier_trace() -> Vec<Record> {
        vec![
            rec(
                0,
                1,
                Event::BarrierArrive {
                    barrier: 9,
                    team: 2,
                },
            ),
            rec(
                0,
                1,
                Event::BarrierArrive {
                    barrier: 9,
                    team: 2,
                },
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omprt::pool::ThreadPool;
    use omprt::trace;
    use omptune_core::{OmpSchedule, ReductionMethod};

    #[test]
    fn broken_barrier_is_flagged() {
        let report = check_trace(&fixtures::broken_barrier_trace());
        assert!(!report.is_clean());
        assert!(
            report.has_rule("B-EARLY-RELEASE"),
            "{:?}",
            report.diagnostics
        );
        assert!(report.has_rule("C-RACE"), "{:?}", report.diagnostics);
    }

    #[test]
    fn correct_barrier_is_clean() {
        let report = check_trace(&fixtures::correct_barrier_trace());
        assert!(report.is_clean(), "{:?}", report.diagnostics);
        assert_eq!(report.stats.episodes_completed, 1);
        assert_eq!(report.stats.threads, 2);
    }

    #[test]
    fn join_cycle_is_flagged() {
        let report = check_trace(&fixtures::join_cycle_trace());
        assert!(report.has_rule("D-JOIN-CYCLE"), "{:?}", report.diagnostics);
        assert!(report.has_rule("D-TASK-INCOMPLETE"));
    }

    #[test]
    fn lock_order_cycle_is_flagged() {
        let report = check_trace(&fixtures::lock_cycle_trace());
        assert!(report.has_rule("D-LOCK-CYCLE"), "{:?}", report.diagnostics);
        assert_eq!(report.races(), 0);
    }

    #[test]
    fn unsynchronized_writes_race() {
        let report = check_trace(&fixtures::racy_trace());
        assert_eq!(report.races(), 1, "{:?}", report.diagnostics);
    }

    #[test]
    fn overlapping_chunks_are_flagged() {
        let report = check_trace(&fixtures::overlapping_chunks_trace());
        assert!(
            report.has_rule("C-CHUNK-OVERLAP"),
            "{:?}",
            report.diagnostics
        );
    }

    #[test]
    fn barrier_reentry_is_flagged() {
        let report = check_trace(&fixtures::reentrant_barrier_trace());
        assert!(report.has_rule("B-REENTRY"), "{:?}", report.diagnostics);
    }

    #[test]
    fn lost_wakeup_is_flagged_with_exact_rule() {
        let report = check_trace(&fixtures::lost_wakeup_trace());
        assert!(!report.is_clean());
        assert!(report.has_rule("D-LOST-WAKEUP"), "{:?}", report.diagnostics);
        // Exactly this rule, nothing else.
        assert!(report.diagnostics.iter().all(|d| d.rule == "D-LOST-WAKEUP"));
        assert_eq!(report.stats.conds, 1);
        assert_eq!(report.stats.notifies, 1);
        assert_eq!(report.stats.parks, 1);
    }

    #[test]
    fn correct_parking_is_clean() {
        let report = check_trace(&fixtures::correct_parking_trace());
        assert!(report.is_clean(), "{:?}", report.diagnostics);
        assert_eq!(report.stats.notifies, 2);
    }

    #[test]
    fn tainted_barrier_does_not_mask_the_race() {
        let report = check_trace(&fixtures::tainted_barrier_mask_trace());
        assert!(
            report.has_rule("B-EARLY-RELEASE"),
            "{:?}",
            report.diagnostics
        );
        assert!(
            report.has_rule("C-RACE"),
            "the tainted episode must not order the accesses: {:?}",
            report.diagnostics
        );
    }

    #[test]
    fn pool_parking_protocol_certifies_clean() {
        // Passive workers park between regions; the protocol events they
        // emit must satisfy D-LOST-WAKEUP and add notify→wake ordering.
        use omptune_core::config::WaitPolicy;
        let pool = ThreadPool::new(4, WaitPolicy::Passive);
        let s = trace::session();
        for _ in 0..5 {
            std::thread::sleep(std::time::Duration::from_millis(5));
            omprt::worksharing::parallel_for(&pool, OmpSchedule::Static, 64, |_| {});
        }
        drop(pool); // shutdown notify is part of the protocol
        let records = s.finish();
        let report = check_trace(&records);
        assert!(report.is_clean(), "{:?}", report.diagnostics);
        assert!(report.stats.notifies >= 5, "{:?}", report.stats);
    }

    #[test]
    fn empty_trace_is_clean() {
        let report = check_trace(&[]);
        assert!(report.is_clean());
        assert_eq!(report.stats.events, 0);
    }

    #[test]
    fn real_parallel_for_certifies_clean() {
        let pool = ThreadPool::with_defaults(4);
        for schedule in [
            OmpSchedule::Static,
            OmpSchedule::Dynamic,
            OmpSchedule::Guided,
        ] {
            let s = trace::session();
            omprt::worksharing::parallel_for(&pool, schedule, 500, |_| {});
            let records = s.finish();
            assert!(!records.is_empty(), "{schedule:?} produced no trace");
            let stats = certify(&records).unwrap_or_else(|e| panic!("{schedule:?}:\n{e}"));
            assert_eq!(stats.regions, 1);
            assert!(stats.chunks > 0);
        }
    }

    #[test]
    fn real_reductions_certify_clean() {
        let pool = ThreadPool::with_defaults(4);
        for method in [
            ReductionMethod::Tree,
            ReductionMethod::Critical,
            ReductionMethod::Atomic,
        ] {
            let s = trace::session();
            let sum = omprt::worksharing::parallel_reduce_sum(
                &pool,
                OmpSchedule::Static,
                method,
                1000,
                |i| i as f64,
            );
            let records = s.finish();
            assert_eq!(sum, 499_500.0);
            let stats = certify(&records).unwrap_or_else(|e| panic!("{method:?}:\n{e}"));
            assert!(stats.barriers >= 1, "{method:?} used no barrier");
            if method == ReductionMethod::Critical {
                assert!(stats.locks >= 1);
            }
        }
    }
}
