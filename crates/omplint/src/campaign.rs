//! Campaign-level aggregation of checker verdicts.
//!
//! A certification campaign (driven by `ompfuzz`) replays many traces —
//! one per (generated program, explored schedule) pair — through
//! [`check_trace`](crate::check_trace). This module folds the individual
//! [`CheckReport`]s into one [`Campaign`]: how many schedules ran, how
//! many were pruned as equivalent, which rules fired how often, and the
//! summed workload counters. The struct serializes into the
//! `certification.json` report the CLI writes.

use crate::check::{CheckReport, CheckStats};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aggregated verdict over a whole certification campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Campaign {
    /// Distinct generated programs exercised.
    pub programs: usize,
    /// (program, schedule) traces actually replayed through the checker.
    pub schedules_run: usize,
    /// Schedules skipped because their trace signature matched an
    /// already-certified interleaving (sleep-set-style pruning).
    pub schedules_pruned: usize,
    /// Traces that certified clean.
    pub clean: usize,
    /// Traces with at least one error-severity finding.
    pub failing: usize,
    /// Per-rule fire counts across every failing trace (each rule counted
    /// once per trace it fired in).
    pub rules_fired: BTreeMap<String, usize>,
    /// Element-wise sum of the per-trace checker stats.
    pub totals: CheckStats,
}

impl Campaign {
    /// Empty campaign.
    pub fn new() -> Campaign {
        Campaign::default()
    }

    /// Note one more generated program entering the campaign.
    pub fn add_program(&mut self) {
        self.programs += 1;
    }

    /// Fold one replayed trace's verdict in.
    pub fn record(&mut self, report: &CheckReport) {
        self.schedules_run += 1;
        if report.is_clean() {
            self.clean += 1;
        } else {
            self.failing += 1;
            let mut rules: Vec<&str> = report.diagnostics.iter().map(|d| d.rule.as_str()).collect();
            rules.sort_unstable();
            rules.dedup();
            for r in rules {
                *self.rules_fired.entry(r.to_string()).or_insert(0) += 1;
            }
        }
        let s = &report.stats;
        let t = &mut self.totals;
        t.events += s.events;
        t.threads += s.threads;
        t.regions += s.regions;
        t.barriers += s.barriers;
        t.episodes_completed += s.episodes_completed;
        t.tasks += s.tasks;
        t.steals += s.steals;
        t.locks += s.locks;
        t.locations += s.locations;
        t.loops += s.loops;
        t.chunks += s.chunks;
        t.conds += s.conds;
        t.notifies += s.notifies;
        t.parks += s.parks;
    }

    /// Note one schedule pruned as equivalent to an earlier one.
    pub fn record_pruned(&mut self) {
        self.schedules_pruned += 1;
    }

    /// Fold another campaign (e.g. a worker shard) into this one.
    pub fn merge(&mut self, other: &Campaign) {
        self.programs += other.programs;
        self.schedules_run += other.schedules_run;
        self.schedules_pruned += other.schedules_pruned;
        self.clean += other.clean;
        self.failing += other.failing;
        for (rule, n) in &other.rules_fired {
            *self.rules_fired.entry(rule.clone()).or_insert(0) += n;
        }
        let s = &other.totals;
        let t = &mut self.totals;
        t.events += s.events;
        t.threads += s.threads;
        t.regions += s.regions;
        t.barriers += s.barriers;
        t.episodes_completed += s.episodes_completed;
        t.tasks += s.tasks;
        t.steals += s.steals;
        t.locks += s.locks;
        t.locations += s.locations;
        t.loops += s.loops;
        t.chunks += s.chunks;
        t.conds += s.conds;
        t.notifies += s.notifies;
        t.parks += s.parks;
    }

    /// Every replayed schedule certified clean.
    pub fn is_clean(&self) -> bool {
        self.failing == 0
    }

    /// Distinct (non-pruned + pruned) schedule visits.
    pub fn schedules_total(&self) -> usize {
        self.schedules_run + self.schedules_pruned
    }

    /// One-line human summary for CLI output.
    pub fn summary(&self) -> String {
        let verdict = if self.is_clean() { "CLEAN" } else { "FAILING" };
        format!(
            "{verdict}: {} programs, {} schedules checked (+{} pruned as equivalent), \
             {} clean / {} failing, {} events replayed",
            self.programs,
            self.schedules_run,
            self.schedules_pruned,
            self.clean,
            self.failing,
            self.totals.events,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{check_trace, fixtures};

    #[test]
    fn records_clean_and_failing_traces() {
        let mut c = Campaign::new();
        c.add_program();
        c.record(&check_trace(&fixtures::correct_barrier_trace()));
        c.record(&check_trace(&fixtures::broken_barrier_trace()));
        c.record_pruned();
        assert_eq!(c.programs, 1);
        assert_eq!(c.schedules_run, 2);
        assert_eq!(c.schedules_pruned, 1);
        assert_eq!(c.schedules_total(), 3);
        assert_eq!(c.clean, 1);
        assert_eq!(c.failing, 1);
        assert!(!c.is_clean());
        assert!(c.rules_fired.contains_key("B-EARLY-RELEASE"));
        assert!(c.rules_fired.contains_key("C-RACE"));
        assert!(c.totals.events > 0);
    }

    #[test]
    fn rules_count_once_per_trace() {
        let mut c = Campaign::new();
        // broken_barrier fires B-EARLY-RELEASE on both threads but the
        // campaign counts the rule once for the trace.
        c.record(&check_trace(&fixtures::broken_barrier_trace()));
        assert_eq!(c.rules_fired.get("B-EARLY-RELEASE"), Some(&1));
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = Campaign::new();
        a.add_program();
        a.record(&check_trace(&fixtures::correct_barrier_trace()));
        let mut b = Campaign::new();
        b.add_program();
        b.record(&check_trace(&fixtures::lost_wakeup_trace()));
        b.record_pruned();
        a.merge(&b);
        assert_eq!(a.programs, 2);
        assert_eq!(a.schedules_run, 2);
        assert_eq!(a.schedules_pruned, 1);
        assert_eq!(a.failing, 1);
        assert_eq!(a.rules_fired.get("D-LOST-WAKEUP"), Some(&1));
    }

    #[test]
    fn summary_reports_verdict() {
        let mut c = Campaign::new();
        c.record(&check_trace(&fixtures::correct_barrier_trace()));
        assert!(c.summary().starts_with("CLEAN"));
        c.record(&check_trace(&fixtures::racy_trace()));
        assert!(c.summary().starts_with("FAILING"));
    }

    #[test]
    fn round_trips_through_json() {
        let mut c = Campaign::new();
        c.add_program();
        c.record(&check_trace(&fixtures::broken_barrier_trace()));
        let json = serde_json::to_string(&c).expect("serialize");
        let back: Campaign = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, c);
    }
}
