//! omplint: static analyses for the omptune stack.
//!
//! Two passes:
//! - [`lint`]: a rule engine over the raw `OMP_*`/`KMP_*` environment
//!   universe that classifies every configuration point as valid,
//!   redundant, or invalid, and derives the pruned [`TuningSpace`]
//!   the sweep consumes.
//! - [`check`]: a happens-before checker over synchronization traces
//!   recorded by `omprt`'s `check` feature — vector-clock race
//!   detection plus barrier-misuse and deadlock analysis.

pub mod campaign;
pub mod check;
pub mod lint;

pub use campaign::Campaign;
pub use check::{certify, check_trace, CheckReport, CheckStats, CHECK_RULES};
pub use lint::{canonicalize, lint_point, lint_space, LintReport, PointClass, RULES};
pub use omptune_core::diag::{Diagnostic, Severity};
