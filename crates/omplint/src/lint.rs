//! Configuration-space lint pass.
//!
//! The paper (Sec. III) arrives at its 9216/4608-point sweep by excluding
//! values that are invalid on the studied machines (`OMP_PLACES=threads`
//! without SMT, `numa_domains` without hwloc, `KMP_LIBRARY=serial`,
//! alignments below the A64FX cache line) — but it does so by hand. This
//! pass mechanizes the argument: it enumerates a *raw* cross-product that
//! still contains every excluded value, classifies each point as
//! [`PointClass::Valid`], [`PointClass::Redundant`] (semantically
//! equivalent to an earlier point under the runtime's own derivation
//! rules) or [`PointClass::Invalid`], and emits one [`Diagnostic`] per
//! rule firing. The surviving canonical points form a pruned
//! [`TuningSpace`] the sweep harness can consume directly.
//!
//! Redundancy is decided against the semantics implemented in
//! `omptune_core::config`: two points are equivalent iff they derive the
//! same effective binding, place list, schedule, wait policy, reduction
//! method and alignment. The canonical representative of a class is its
//! first member in odometer order, which is exactly the member on which
//! no redundancy rule fires — canonicalization is therefore a
//! deterministic rewrite, not a search.

use omptune_core::{
    Arch, ConfigSpace, Diagnostic, KmpAlignAlloc, KmpBlocktime, KmpForceReduction, KmpLibrary,
    OmpPlaces, OmpProcBind, OmpSchedule, ReductionMethod, Severity, TuningConfig, TuningSpace,
};
use serde::{Deserialize, Serialize};

/// `OMP_PLACES` before the paper's exclusions: the four swept values plus
/// the two Sec. III rules out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RawPlaces {
    Unset,
    Cores,
    LlCaches,
    Sockets,
    /// One place per hardware thread — meaningless without SMT.
    Threads,
    /// One place per NUMA domain — needs an hwloc-enabled runtime build.
    NumaDomains,
}

impl RawPlaces {
    pub const ALL: [RawPlaces; 6] = [
        RawPlaces::Unset,
        RawPlaces::Cores,
        RawPlaces::LlCaches,
        RawPlaces::Sockets,
        RawPlaces::Threads,
        RawPlaces::NumaDomains,
    ];

    /// The swept equivalent, `None` for the excluded values.
    pub fn paper(self) -> Option<OmpPlaces> {
        match self {
            RawPlaces::Unset => Some(OmpPlaces::Unset),
            RawPlaces::Cores => Some(OmpPlaces::Cores),
            RawPlaces::LlCaches => Some(OmpPlaces::LlCaches),
            RawPlaces::Sockets => Some(OmpPlaces::Sockets),
            RawPlaces::Threads | RawPlaces::NumaDomains => None,
        }
    }

    pub fn env_value(self) -> &'static str {
        match self {
            RawPlaces::Unset => "<unset>",
            RawPlaces::Cores => "cores",
            RawPlaces::LlCaches => "ll_caches",
            RawPlaces::Sockets => "sockets",
            RawPlaces::Threads => "threads",
            RawPlaces::NumaDomains => "numa_domains",
        }
    }
}

/// `KMP_LIBRARY` before exclusions: the two swept modes plus `serial`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RawLibrary {
    Throughput,
    Turnaround,
    /// Executes the program serially — excluded because it answers no
    /// tuning question.
    Serial,
}

impl RawLibrary {
    pub const ALL: [RawLibrary; 3] = [
        RawLibrary::Throughput,
        RawLibrary::Turnaround,
        RawLibrary::Serial,
    ];

    /// The swept equivalent, `None` for `serial`.
    pub fn paper(self) -> Option<KmpLibrary> {
        match self {
            RawLibrary::Throughput => Some(KmpLibrary::Throughput),
            RawLibrary::Turnaround => Some(KmpLibrary::Turnaround),
            RawLibrary::Serial => None,
        }
    }

    pub fn env_value(self) -> &'static str {
        match self {
            RawLibrary::Throughput => "throughput",
            RawLibrary::Turnaround => "turnaround",
            RawLibrary::Serial => "serial",
        }
    }
}

/// Alignments considered before the per-arch domain restriction.
pub const RAW_ALIGNS: [u32; 4] = [64, 128, 256, 512];

/// One point of the raw (pre-exclusion) cross-product.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RawPoint {
    pub places: RawPlaces,
    pub proc_bind: OmpProcBind,
    pub schedule: OmpSchedule,
    pub library: RawLibrary,
    pub blocktime: KmpBlocktime,
    pub force_reduction: KmpForceReduction,
    pub align: u32,
}

impl RawPoint {
    /// Compact description for diagnostics.
    pub fn describe(&self) -> String {
        format!(
            "places={} bind={} sched={} lib={} blocktime={} red={} align={}",
            self.places.env_value(),
            self.proc_bind.env_value().unwrap_or("<unset>"),
            self.schedule.env_value(),
            self.library.env_value(),
            self.blocktime.env_value(),
            self.force_reduction.env_value().unwrap_or("<unset>"),
            self.align,
        )
    }

    /// Project into the paper's swept space; `None` when the point uses
    /// an excluded value.
    pub fn to_config(&self, num_threads: usize) -> Option<TuningConfig> {
        Some(TuningConfig {
            places: self.places.paper()?,
            proc_bind: self.proc_bind,
            schedule: self.schedule,
            library: self.library.paper()?,
            blocktime: self.blocktime,
            force_reduction: self.force_reduction,
            align_alloc: KmpAlignAlloc(self.align),
            num_threads,
        })
    }
}

/// Classification of a configuration point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PointClass {
    /// Canonical and worth sweeping.
    Valid,
    /// Semantically equivalent to an earlier (canonical) point.
    Redundant,
    /// Must not be swept on this machine.
    Invalid,
}

/// Catalog entry describing one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    pub id: &'static str,
    pub severity: Severity,
    pub summary: &'static str,
}

/// The full rule catalog, invalidity rules first.
pub const RULES: [Rule; 12] = [
    Rule {
        id: "E-PLACES-SMT",
        severity: Severity::Error,
        summary: "OMP_PLACES=threads needs SMT; none of the studied machines has it",
    },
    Rule {
        id: "E-PLACES-HWLOC",
        severity: Severity::Error,
        summary: "OMP_PLACES=numa_domains needs an hwloc-enabled runtime build",
    },
    Rule {
        id: "E-LIB-SERIAL",
        severity: Severity::Error,
        summary: "KMP_LIBRARY=serial forces serial execution and answers no tuning question",
    },
    Rule {
        id: "E-ALIGN-ARCH",
        severity: Severity::Error,
        summary: "KMP_ALIGN_ALLOC below the architecture cache line is not in the arch domain",
    },
    Rule {
        id: "E-OVERSUB",
        severity: Severity::Error,
        summary: "OMP_NUM_THREADS exceeds the machine's cores; the study never oversubscribes",
    },
    Rule {
        id: "R-SCHED-AUTO",
        severity: Severity::Warning,
        summary: "OMP_SCHEDULE=auto maps to static in libomp",
    },
    Rule {
        id: "R-BIND-TRUE",
        severity: Severity::Warning,
        summary: "OMP_PROC_BIND=true binds close, same as the explicit value",
    },
    Rule {
        id: "R-BIND-DEFAULT-SPREAD",
        severity: Severity::Warning,
        summary:
            "OMP_PROC_BIND=spread with places set equals the unset default (spread is derived)",
    },
    Rule {
        id: "R-BIND-FALSE-DEFAULT",
        severity: Severity::Warning,
        summary: "OMP_PROC_BIND=false without places equals the unset default (no binding)",
    },
    Rule {
        id: "R-PLACES-UNBOUND",
        severity: Severity::Warning,
        summary: "OMP_PLACES is never consulted when OMP_PROC_BIND=false disables binding",
    },
    Rule {
        id: "R-LIB-PASSIVE",
        severity: Severity::Warning,
        summary: "KMP_LIBRARY is irrelevant at KMP_BLOCKTIME=0 (workers sleep immediately)",
    },
    Rule {
        id: "R-RED-HEURISTIC",
        severity: Severity::Warning,
        summary: "KMP_FORCE_REDUCTION equals what the heuristic already picks at this team size",
    },
];

/// Look up a catalog rule by id (panics on unknown id — rule ids are
/// compile-time constants, so a miss is a bug).
fn rule(id: &str) -> &'static Rule {
    RULES.iter().find(|r| r.id == id).expect("unknown rule id")
}

fn fire(diags: &mut Vec<Diagnostic>, id: &str, message: String) {
    let r = rule(id);
    diags.push(Diagnostic::new(r.id, r.severity, message));
}

/// One linted point with its classification and rule firings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LintedPoint {
    pub point: RawPoint,
    pub class: PointClass,
    pub diagnostics: Vec<Diagnostic>,
    /// For redundant points: the canonical equivalent.
    pub canonical: Option<TuningConfig>,
}

/// Result of linting one (architecture, thread count) universe.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LintReport {
    pub arch: Arch,
    pub num_threads: usize,
    pub points: Vec<LintedPoint>,
}

impl LintReport {
    /// Total points in the raw universe.
    pub fn raw_len(&self) -> usize {
        self.points.len()
    }

    pub fn count(&self, class: PointClass) -> usize {
        self.points.iter().filter(|p| p.class == class).count()
    }

    /// Firings per rule id, in catalog order (rules that never fired are
    /// included with count 0 so reports always show the full catalog).
    pub fn rule_counts(&self) -> Vec<(&'static str, usize)> {
        RULES
            .iter()
            .map(|r| {
                let n = self
                    .points
                    .iter()
                    .flat_map(|p| p.diagnostics.iter())
                    .filter(|d| d.rule == r.id)
                    .count();
                (r.id, n)
            })
            .collect()
    }

    /// The pruned sweep space: full-space indices of the valid points.
    /// `None` when the whole universe is invalid (oversubscription), in
    /// which case there is no underlying [`ConfigSpace`] at all.
    pub fn pruned(&self) -> Option<TuningSpace> {
        if self.num_threads > self.arch.cores() {
            return None;
        }
        let space = ConfigSpace::new(self.arch, self.num_threads);
        let indices = self
            .points
            .iter()
            .filter(|p| p.class == PointClass::Valid)
            .map(|p| {
                let config = p
                    .point
                    .to_config(self.num_threads)
                    .expect("valid point projects into the paper space");
                space
                    .index_of(&config)
                    .expect("valid point indexes into the paper space")
            })
            .collect();
        Some(TuningSpace::new(space, indices))
    }
}

/// Rewrite a swept configuration to its canonical equivalent: the unique
/// member of its semantic equivalence class on which no redundancy rule
/// fires (and the class's first point in odometer order).
pub fn canonicalize(mut config: TuningConfig) -> TuningConfig {
    if config.schedule == OmpSchedule::Auto {
        config.schedule = OmpSchedule::Static;
    }
    if config.proc_bind == OmpProcBind::True {
        config.proc_bind = OmpProcBind::Close;
    }
    if config.proc_bind == OmpProcBind::False {
        // Binding disabled: the place list is never consulted, and the
        // explicit `false` equals the placeless default.
        config.places = OmpPlaces::Unset;
        config.proc_bind = OmpProcBind::Unset;
    }
    if config.proc_bind == OmpProcBind::Spread && config.places != OmpPlaces::Unset {
        config.proc_bind = OmpProcBind::Unset;
    }
    if config.blocktime == KmpBlocktime::Zero {
        config.library = KmpLibrary::Throughput;
    }
    if config.force_reduction != KmpForceReduction::Unset {
        let heuristic = ReductionMethod::heuristic(config.num_threads);
        let explicit = config.reduction_method();
        if explicit == heuristic {
            config.force_reduction = KmpForceReduction::Unset;
        }
    }
    config
}

/// Lint one raw point. Invalidity rules are checked first; redundancy
/// rules only apply to points that survive them.
pub fn lint_point(point: &RawPoint, arch: Arch, num_threads: usize) -> LintedPoint {
    let mut diags = Vec::new();

    if num_threads > arch.cores() {
        fire(
            &mut diags,
            "E-OVERSUB",
            format!(
                "{} threads oversubscribe the {} cores of {}",
                num_threads,
                arch.cores(),
                arch.id()
            ),
        );
    }
    if point.places == RawPlaces::Threads {
        fire(
            &mut diags,
            "E-PLACES-SMT",
            format!("OMP_PLACES=threads is invalid on {}: no SMT", arch.id()),
        );
    }
    if point.places == RawPlaces::NumaDomains {
        fire(
            &mut diags,
            "E-PLACES-HWLOC",
            "OMP_PLACES=numa_domains requires an hwloc-enabled runtime".to_string(),
        );
    }
    if point.library == RawLibrary::Serial {
        fire(
            &mut diags,
            "E-LIB-SERIAL",
            "KMP_LIBRARY=serial disables parallel execution entirely".to_string(),
        );
    }
    if !KmpAlignAlloc::domain(arch).contains(&KmpAlignAlloc(point.align)) {
        fire(
            &mut diags,
            "E-ALIGN-ARCH",
            format!(
                "KMP_ALIGN_ALLOC={} is below the {}-byte cache line of {}",
                point.align,
                arch.cacheline(),
                arch.id()
            ),
        );
    }
    if !diags.is_empty() {
        return LintedPoint {
            point: *point,
            class: PointClass::Invalid,
            diagnostics: diags,
            canonical: None,
        };
    }

    let config = point
        .to_config(num_threads)
        .expect("point without invalidity firings projects into the paper space");

    if point.schedule == OmpSchedule::Auto {
        fire(
            &mut diags,
            "R-SCHED-AUTO",
            "schedule auto is static under libomp's mapping".to_string(),
        );
    }
    if point.proc_bind == OmpProcBind::True {
        fire(
            &mut diags,
            "R-BIND-TRUE",
            "proc_bind true binds close; sweep the explicit value instead".to_string(),
        );
    }
    if point.proc_bind == OmpProcBind::Spread && point.places != RawPlaces::Unset {
        fire(
            &mut diags,
            "R-BIND-DEFAULT-SPREAD",
            "with places set, unset proc_bind already derives spread".to_string(),
        );
    }
    if point.proc_bind == OmpProcBind::False && point.places == RawPlaces::Unset {
        fire(
            &mut diags,
            "R-BIND-FALSE-DEFAULT",
            "proc_bind false without places is the unbound default".to_string(),
        );
    }
    if point.proc_bind == OmpProcBind::False && point.places != RawPlaces::Unset {
        fire(
            &mut diags,
            "R-PLACES-UNBOUND",
            format!(
                "places={} is never consulted while proc_bind=false disables binding",
                point.places.env_value()
            ),
        );
    }
    if point.blocktime == KmpBlocktime::Zero && point.library == RawLibrary::Turnaround {
        fire(
            &mut diags,
            "R-LIB-PASSIVE",
            "blocktime 0 sleeps immediately; library turnaround equals throughput".to_string(),
        );
    }
    if point.force_reduction != KmpForceReduction::Unset
        && config.reduction_method() == ReductionMethod::heuristic(num_threads)
    {
        fire(
            &mut diags,
            "R-RED-HEURISTIC",
            format!(
                "forcing {:?} equals the heuristic's choice at {} threads",
                config.reduction_method(),
                num_threads
            ),
        );
    }

    if diags.is_empty() {
        LintedPoint {
            point: *point,
            class: PointClass::Valid,
            diagnostics: diags,
            canonical: None,
        }
    } else {
        let canonical = canonicalize(config);
        debug_assert_ne!(
            canonical, config,
            "redundant point must rewrite to a different point"
        );
        for d in &mut diags {
            d.suggestion = Some(canonical.describe());
        }
        LintedPoint {
            point: *point,
            class: PointClass::Redundant,
            diagnostics: diags,
            canonical: Some(canonical),
        }
    }
}

/// Enumerate the raw universe in odometer order (align fastest, places
/// slowest — the same nesting as [`ConfigSpace`]).
pub fn raw_universe() -> Vec<RawPoint> {
    let mut out = Vec::new();
    for places in RawPlaces::ALL {
        for proc_bind in OmpProcBind::ALL {
            for schedule in OmpSchedule::ALL {
                for library in RawLibrary::ALL {
                    for blocktime in KmpBlocktime::ALL {
                        for force_reduction in KmpForceReduction::ALL {
                            for align in RAW_ALIGNS {
                                out.push(RawPoint {
                                    places,
                                    proc_bind,
                                    schedule,
                                    library,
                                    blocktime,
                                    force_reduction,
                                    align,
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// Lint the full raw universe for one architecture and thread count.
pub fn lint_space(arch: Arch, num_threads: usize) -> LintReport {
    assert!(num_threads >= 1, "need at least one thread");
    let points = raw_universe()
        .iter()
        .map(|p| lint_point(p, arch, num_threads))
        .collect();
    LintReport {
        arch,
        num_threads,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_universe_size() {
        // 6 places x 6 binds x 4 schedules x 3 libraries x 3 blocktimes
        // x 4 reductions x 4 alignments.
        assert_eq!(raw_universe().len(), 20736);
    }

    #[test]
    fn classes_partition_and_tie_out_to_the_paper_space() {
        for (arch, threads) in [(Arch::Skylake, 40), (Arch::Milan, 96), (Arch::A64fx, 48)] {
            let report = lint_space(arch, threads);
            let invalid = report.count(PointClass::Invalid);
            let valid = report.count(PointClass::Valid);
            let redundant = report.count(PointClass::Redundant);
            assert_eq!(invalid + valid + redundant, report.raw_len());
            // Everything that is not machine-invalid is exactly the
            // paper's swept space.
            let space = ConfigSpace::new(arch, threads);
            assert_eq!(valid + redundant, space.len(), "{arch:?}");
        }
    }

    #[test]
    fn valid_counts_are_exact() {
        // Predicate-free combinations: 13 (bind,places) pairs x 3
        // schedules x 5 (library,blocktime) pairs x 3 reductions (team
        // >= 5: tree is the heuristic) x aligns.
        let report = lint_space(Arch::Skylake, 40);
        assert_eq!(report.count(PointClass::Valid), 13 * 3 * 5 * 3 * 4);
        let report = lint_space(Arch::A64fx, 48);
        assert_eq!(report.count(PointClass::Valid), 13 * 3 * 5 * 3 * 2);
    }

    #[test]
    fn every_rule_fires_somewhere_except_oversub() {
        let report = lint_space(Arch::A64fx, 48);
        for (id, n) in report.rule_counts() {
            if id == "E-OVERSUB" {
                assert_eq!(n, 0, "oversubscription cannot fire at 48/48 threads");
            } else {
                assert!(n > 0, "rule {id} never fired");
            }
        }
    }

    #[test]
    fn oversubscription_invalidates_everything() {
        let report = lint_space(Arch::Skylake, 41);
        assert_eq!(report.count(PointClass::Invalid), report.raw_len());
        assert!(report.pruned().is_none());
        assert!(report.points[0]
            .diagnostics
            .iter()
            .any(|d| d.rule == "E-OVERSUB"));
    }

    #[test]
    fn align_arch_rule_is_arch_dependent() {
        // 64 and 128 are invalid on A64FX but fine on x86.
        let a64 = lint_space(Arch::A64fx, 48);
        let x86 = lint_space(Arch::Milan, 96);
        let fired = |r: &LintReport| {
            r.rule_counts()
                .iter()
                .find(|(id, _)| *id == "E-ALIGN-ARCH")
                .unwrap()
                .1
        };
        assert!(fired(&a64) > 0);
        assert_eq!(fired(&x86), 0);
    }

    #[test]
    fn paper_exclusions_reproduced_exactly() {
        // The three Sec. III exclusions are exactly the non-align,
        // non-oversub invalidity firings.
        let report = lint_space(Arch::Skylake, 40);
        for p in &report.points {
            let excluded_by_paper = p.point.places.paper().is_none()
                || p.point.library.paper().is_none()
                || !KmpAlignAlloc::domain(Arch::Skylake).contains(&KmpAlignAlloc(p.point.align));
            assert_eq!(
                p.class == PointClass::Invalid,
                excluded_by_paper,
                "{}",
                p.point.describe()
            );
        }
    }

    #[test]
    fn canonicalization_is_idempotent_and_predicate_free() {
        let report = lint_space(Arch::Milan, 96);
        for p in &report.points {
            if let Some(c) = &p.canonical {
                assert_eq!(canonicalize(*c), *c, "canonical point must be a fixpoint");
                // The canonical point itself lints clean.
                let raw = RawPoint {
                    places: match c.places {
                        OmpPlaces::Unset => RawPlaces::Unset,
                        OmpPlaces::Cores => RawPlaces::Cores,
                        OmpPlaces::LlCaches => RawPlaces::LlCaches,
                        OmpPlaces::Sockets => RawPlaces::Sockets,
                    },
                    proc_bind: c.proc_bind,
                    schedule: c.schedule,
                    library: RawLibrary::Throughput,
                    blocktime: c.blocktime,
                    force_reduction: c.force_reduction,
                    align: c.align_alloc.bytes(),
                };
                let raw = RawPoint {
                    library: match c.library {
                        KmpLibrary::Throughput => RawLibrary::Throughput,
                        KmpLibrary::Turnaround => RawLibrary::Turnaround,
                    },
                    ..raw
                };
                let linted = lint_point(&raw, Arch::Milan, 96);
                assert_eq!(linted.class, PointClass::Valid, "{}", raw.describe());
            }
        }
    }

    #[test]
    fn canonical_points_preserve_semantics() {
        let report = lint_space(Arch::Skylake, 40);
        for p in &report.points {
            if let (Some(c), Some(orig)) = (&p.canonical, p.point.to_config(40)) {
                assert_eq!(c.effective_bind(), orig.effective_bind());
                assert_eq!(c.wait_policy(), orig.wait_policy());
                assert_eq!(c.reduction_method(), orig.reduction_method());
                assert_eq!(c.align_alloc, orig.align_alloc);
            }
        }
    }

    #[test]
    fn pruned_space_is_deterministic_and_canonical() {
        let a = lint_space(Arch::A64fx, 48).pruned().unwrap();
        let b = lint_space(Arch::A64fx, 48).pruned().unwrap();
        assert_eq!(a, b, "linting must be deterministic");
        assert_eq!(a.len(), 13 * 3 * 5 * 3 * 2);
        // Every surviving config is its own canonical form.
        for config in a.iter() {
            assert_eq!(canonicalize(config), config);
        }
    }

    #[test]
    fn redundant_points_always_carry_a_suggestion() {
        let report = lint_space(Arch::Milan, 96);
        for p in &report.points {
            if p.class == PointClass::Redundant {
                assert!(p.canonical.is_some());
                assert!(p.diagnostics.iter().all(|d| d.suggestion.is_some()));
            }
        }
    }
}
