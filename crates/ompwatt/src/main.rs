//! `ompwatt` — the energy-vs-time disagreement report.
//!
//! ```text
//! ompwatt report [APP] [--scope N] [--workers N] [--out-dir DIR] [--check]
//! ```
//!
//! Sweeps a strided slice of the tuning space on every architecture
//! that has `APP` (default `cg`), finds the time-, energy-, and
//! EDP-optimal configurations, and writes three artifacts to
//! `--out-dir` (default `ompwatt-out`):
//!
//! - `disagreement.md` — the markdown table EXPERIMENTS.md embeds;
//! - `energy_heatmap.svg` — per-(arch, variable) marginal energy
//!   spread;
//! - `ompwatt.json` — the machine-readable report.
//!
//! `--check` is the self-check CI runs: it asserts that at least one
//! architecture's energy optimum is *not* its time optimum — the
//! headline claim of the energy study. Exit codes follow the suite
//! convention: 0 clean, 4 the check failed (no disagreement anywhere),
//! 2 usage error, 1 internal error.

use std::process::ExitCode;

const EXIT_FINDINGS: u8 = 4;
const EXIT_USAGE: u8 = 2;
const EXIT_INTERNAL: u8 = 1;

const USAGE: &str =
    "usage: ompwatt report [APP] [--scope N] [--workers N] [--out-dir DIR] [--check]";

struct Args {
    app: String,
    scope: usize,
    workers: usize,
    out_dir: String,
    check: bool,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        app: "cg".to_string(),
        scope: 200,
        workers: 4,
        out_dir: "ompwatt-out".to_string(),
        check: false,
    };
    let mut positional = 0usize;
    let mut rest = args.iter();
    while let Some(a) = rest.next() {
        match a.as_str() {
            "--check" => parsed.check = true,
            "--scope" | "--workers" | "--out-dir" => {
                let v = rest
                    .next()
                    .ok_or_else(|| format!("{a} needs a value"))?
                    .clone();
                match a.as_str() {
                    "--scope" => {
                        parsed.scope = v.parse().map_err(|_| format!("bad --scope {v:?}"))?;
                        if parsed.scope == 0 {
                            return Err("--scope must be positive".into());
                        }
                    }
                    "--workers" => {
                        parsed.workers = v.parse().map_err(|_| format!("bad --workers {v:?}"))?;
                        if parsed.workers == 0 {
                            return Err("--workers must be positive".into());
                        }
                    }
                    "--out-dir" => parsed.out_dir = v,
                    _ => unreachable!(),
                }
            }
            s if s.starts_with("--") => return Err(format!("unknown flag {s}")),
            s => {
                if positional > 0 {
                    return Err(format!("unexpected argument {s:?}"));
                }
                parsed.app = s.to_string();
                positional += 1;
            }
        }
    }
    Ok(parsed)
}

fn run(args: Args) -> Result<u8, String> {
    let report = ompwatt::analyze(&args.app, args.scope, args.workers)?;

    let dir = std::path::Path::new(&args.out_dir);
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", args.out_dir))?;
    let write = |name: &str, text: String| -> Result<(), String> {
        std::fs::write(dir.join(name), text)
            .map_err(|e| format!("cannot write {}/{name}: {e}", args.out_dir))
    };
    let md = ompwatt::disagreement_markdown(&report);
    write("disagreement.md", md.clone())?;
    write("energy_heatmap.svg", ompwatt::heatmap_svg(&report))?;
    write("ompwatt.json", ompwatt::report_json(&report))?;

    println!(
        "ompwatt report: {} over strided({}) on {} arch(es)\n",
        report.app,
        report.scope,
        report.verdicts.len()
    );
    print!("{md}");
    for v in &report.verdicts {
        println!(
            "\n{}: time-opt  {}\n{:>width$}energy-opt {}",
            v.arch.id(),
            v.time_best.config.describe(),
            "",
            v.energy_best.config.describe(),
            width = v.arch.id().len() + 2
        );
    }
    println!(
        "\nwrote {}/{{disagreement.md, energy_heatmap.svg, ompwatt.json}}",
        args.out_dir
    );

    if args.check {
        let n = report.disagreements();
        if n == 0 {
            println!("check: FAILED — time- and energy-optima agree on every architecture");
            return Ok(EXIT_FINDINGS);
        }
        println!("check: {n} architecture(s) where energy-optimal != time-optimal");
    }
    Ok(0)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(EXIT_USAGE);
    };
    if cmd != "report" {
        eprintln!("ompwatt: unknown subcommand {cmd:?}\n{USAGE}");
        return ExitCode::from(EXIT_USAGE);
    }
    let parsed = match parse_args(&args[1..]) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("ompwatt: {e}\n{USAGE}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    match run(parsed) {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("ompwatt: {e}");
            ExitCode::from(EXIT_INTERNAL)
        }
    }
}
