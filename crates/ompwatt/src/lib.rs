//! `ompwatt` — energy as a first-class tuning objective.
//!
//! Every sample the sweep harness produces already carries a modeled
//! [`omptel::EnergyBreakdown`] priced by the deterministic per-arch
//! power model. This crate answers the question that telemetry exists
//! for: *does tuning for time and tuning for energy pick the same
//! configuration?* For each architecture it finds the time-optimal,
//! energy-optimal, and EDP-optimal configurations over a strided slice
//! of the tuning space, quantifies the penalty of optimizing the wrong
//! objective, and renders the per-(arch, variable) energy-influence
//! heat map.
//!
//! The disagreement is mechanical, not incidental: a spin-waiting
//! configuration (`KMP_LIBRARY=turnaround`, long `KMP_BLOCKTIME`)
//! wakes threads cheaply and wins on time, but burns near-active power
//! through every wait; a parking configuration idles those cores and
//! wins on joules. The report makes that trade visible per arch.

use omptune_core::{Arch, Feature, TuningConfig};
use sweep::{RawSample, Scope, SettingData, SweepSpec};

/// One objective's winning configuration and its three objective
/// scores (so penalties can be read across columns).
#[derive(Debug, Clone)]
pub struct Best {
    pub config: TuningConfig,
    pub virtual_ns: f64,
    pub joules: f64,
    pub edp_js: f64,
}

fn score(sample: &RawSample) -> Best {
    let t = &sample.telemetry;
    Best {
        config: sample.config,
        virtual_ns: t.virtual_ns,
        joules: t.energy.total_j,
        edp_js: t.energy.edp_js(t.virtual_ns),
    }
}

/// The per-arch verdict: the three optima, whether time and energy
/// disagree, and the price of choosing the wrong objective.
#[derive(Debug, Clone)]
pub struct ArchVerdict {
    pub arch: Arch,
    pub app: String,
    pub samples: usize,
    pub time_best: Best,
    pub energy_best: Best,
    pub edp_best: Best,
    /// `true` when the time optimum and the energy optimum are
    /// different configurations.
    pub disagree: bool,
    /// Joules the time-optimal configuration burns relative to the
    /// energy optimum (`>= 1`; `1.0` when they agree).
    pub energy_penalty: f64,
    /// Virtual time the energy-optimal configuration pays relative to
    /// the time optimum (`>= 1`; `1.0` when they agree).
    pub time_penalty: f64,
    /// Per-variable marginal energy spread in joules,
    /// [`Feature::ENV_FEATURES`] order — the heat-map row.
    pub energy_spread_j: Vec<f64>,
}

/// The whole report: one verdict per analyzed architecture.
#[derive(Debug, Clone)]
pub struct Report {
    pub app: String,
    pub scope: usize,
    pub seed: u64,
    pub verdicts: Vec<ArchVerdict>,
}

impl Report {
    /// Architectures where the energy optimum is not the time optimum.
    pub fn disagreements(&self) -> usize {
        self.verdicts.iter().filter(|v| v.disagree).count()
    }
}

/// Sweep one strided slice of `app` on `arch` (largest setting, catalog
/// position 0 — the same slice `ompprof` profiles) and reduce it to an
/// [`ArchVerdict`].
pub fn analyze_arch(
    arch: Arch,
    app_name: &str,
    scope: usize,
    workers: usize,
) -> Result<ArchVerdict, String> {
    let app = workloads::app(app_name).ok_or_else(|| format!("unknown app {app_name:?}"))?;
    if !workloads::available_on(app_name, arch) {
        return Err(format!("{app_name} is not available on {}", arch.id()));
    }
    let spec = SweepSpec {
        scope: Scope::Strided(scope),
        ..SweepSpec::default()
    };
    let setting = workloads::settings_for(app, arch)
        .last()
        .copied()
        .ok_or_else(|| format!("{app_name} has no settings on {}", arch.id()))?;
    let (data, _stats) = sweep::sweep_setting_scheduled(
        arch,
        app,
        setting,
        0,
        &spec,
        &sweep::SweepOptions::new(workers),
    );
    verdict_from_slice(arch, app_name, &data)
}

/// Reduce one sweep slice to its verdict (separated from the sweep so
/// tests can feed canned slices).
pub fn verdict_from_slice(
    arch: Arch,
    app_name: &str,
    data: &SettingData,
) -> Result<ArchVerdict, String> {
    let priced: Vec<&RawSample> = data
        .samples
        .iter()
        .filter(|s| s.telemetry.energy.total_j.is_finite() && s.telemetry.energy.total_j > 0.0)
        .collect();
    if priced.is_empty() {
        return Err(format!("no priced samples for {}/{app_name}", arch.id()));
    }
    let best_by = |key: fn(&Best) -> f64| {
        priced
            .iter()
            .map(|s| score(s))
            .min_by(|a, b| key(a).total_cmp(&key(b)))
            .expect("non-empty")
    };
    let time_best = best_by(|b| b.virtual_ns);
    let energy_best = best_by(|b| b.joules);
    let edp_best = best_by(|b| b.edp_js);
    let disagree = time_best.config != energy_best.config;

    let mut attribution = ompprof::Attribution::new();
    attribution.fold_batch(data);
    let energy_spread_j = (0..Feature::ENV_FEATURES.len())
        .map(|i| attribution.spread_energy_j(i))
        .collect();

    Ok(ArchVerdict {
        arch,
        app: app_name.to_string(),
        samples: priced.len(),
        energy_penalty: time_best.joules / energy_best.joules.max(f64::MIN_POSITIVE),
        time_penalty: energy_best.virtual_ns / time_best.virtual_ns.max(f64::MIN_POSITIVE),
        time_best,
        energy_best,
        edp_best,
        disagree,
        energy_spread_j,
    })
}

/// Run the analysis on every architecture that has `app`.
pub fn analyze(app_name: &str, scope: usize, workers: usize) -> Result<Report, String> {
    let mut verdicts = Vec::new();
    for arch in Arch::ALL {
        if workloads::available_on(app_name, arch) {
            verdicts.push(analyze_arch(arch, app_name, scope, workers)?);
        }
    }
    if verdicts.is_empty() {
        return Err(format!("{app_name} is not available on any architecture"));
    }
    Ok(Report {
        app: app_name.to_string(),
        scope,
        seed: SweepSpec::default().seed,
        verdicts,
    })
}

/// The tuning-variable settings where `to` departs from `from`, as a
/// compact `var: a->b` list; `"= time-opt"` when identical. This is the
/// readable core of the disagreement table — it names exactly the knobs
/// the objectives fight over.
pub fn config_delta(from: &TuningConfig, to: &TuningConfig) -> String {
    let unset = |v: Option<&str>| v.unwrap_or("unset").to_string();
    let mut deltas: Vec<String> = Vec::new();
    if from.places != to.places {
        deltas.push(format!(
            "places: {}->{}",
            unset(from.places.env_value()),
            unset(to.places.env_value())
        ));
    }
    if from.proc_bind != to.proc_bind {
        deltas.push(format!(
            "bind: {}->{}",
            unset(from.proc_bind.env_value()),
            unset(to.proc_bind.env_value())
        ));
    }
    if from.schedule != to.schedule {
        deltas.push(format!(
            "sched: {}->{}",
            from.schedule.env_value(),
            to.schedule.env_value()
        ));
    }
    if from.library != to.library {
        deltas.push(format!(
            "lib: {}->{}",
            from.library.env_value(),
            to.library.env_value()
        ));
    }
    if from.blocktime != to.blocktime {
        deltas.push(format!(
            "blocktime: {}->{}",
            from.blocktime.env_value(),
            to.blocktime.env_value()
        ));
    }
    if from.force_reduction != to.force_reduction {
        deltas.push(format!(
            "red: {}->{}",
            unset(from.force_reduction.env_value()),
            unset(to.force_reduction.env_value())
        ));
    }
    if from.align_alloc != to.align_alloc {
        deltas.push(format!(
            "align: {}->{}",
            from.align_alloc.0, to.align_alloc.0
        ));
    }
    if from.num_threads != to.num_threads {
        deltas.push(format!("threads: {}->{}", from.num_threads, to.num_threads));
    }
    if deltas.is_empty() {
        "= time-opt".to_string()
    } else {
        deltas.join(", ")
    }
}

/// The energy-vs-time disagreement table in the exact markdown shape
/// EXPERIMENTS.md embeds.
pub fn disagreement_markdown(report: &Report) -> String {
    let mut out = String::new();
    out.push_str(
        "| arch | app | time-opt (ms) | energy-opt vs time-opt | EDP-opt vs time-opt | \
         time-opt burns | energy-opt costs | verdict |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|\n");
    for v in &report.verdicts {
        out.push_str(&format!(
            "| {} | {} | {:.3} ({:.3} J) | {} | {} | {:.2}x joules | {:.2}x time | {} |\n",
            v.arch.id(),
            v.app,
            v.time_best.virtual_ns * 1e-6,
            v.time_best.joules,
            config_delta(&v.time_best.config, &v.energy_best.config),
            config_delta(&v.time_best.config, &v.edp_best.config),
            v.energy_penalty,
            v.time_penalty,
            if v.disagree { "DISAGREE" } else { "agree" }
        ));
    }
    out
}

/// Per-(arch, variable) energy-influence heat map: rows are
/// architectures, columns the tunable environment variables, intensity
/// the marginal energy spread normalized within each row. Hand-rolled
/// SVG, deterministic byte-for-byte.
pub fn heatmap_svg(report: &Report) -> String {
    const CELL_W: f64 = 118.0;
    const CELL_H: f64 = 34.0;
    const LEFT: f64 = 90.0;
    const TOP: f64 = 54.0;
    let cols = Feature::ENV_FEATURES.len();
    let rows = report.verdicts.len();
    let width = LEFT + cols as f64 * CELL_W + 12.0;
    let height = TOP + rows as f64 * CELL_H + 12.0;
    let mut body = String::new();
    for (ci, f) in Feature::ENV_FEATURES.iter().enumerate() {
        body.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\" font-size=\"11\" \
             font-family=\"monospace\">{}</text>\n",
            LEFT + (ci as f64 + 0.5) * CELL_W,
            TOP - 8.0,
            f.name()
        ));
    }
    for (ri, v) in report.verdicts.iter().enumerate() {
        let y = TOP + ri as f64 * CELL_H;
        body.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"12\" font-family=\"monospace\" \
             font-weight=\"bold\">{}</text>\n",
            6.0,
            y + CELL_H / 2.0 + 4.0,
            v.arch.id()
        ));
        let row_max = v
            .energy_spread_j
            .iter()
            .copied()
            .fold(f64::MIN_POSITIVE, f64::max);
        for (ci, &spread) in v.energy_spread_j.iter().enumerate() {
            let x = LEFT + ci as f64 * CELL_W;
            let k = (spread / row_max).clamp(0.0, 1.0);
            // White (no influence) to deep amber (row-dominating).
            let g = (235.0 - 130.0 * k) as u32;
            let b = (235.0 - 220.0 * k) as u32;
            body.push_str(&format!(
                "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" \
                 fill=\"rgb(250,{g},{b})\" stroke=\"white\"/>\n",
                x, y, CELL_W, CELL_H
            ));
            body.push_str(&format!(
                "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\" font-size=\"10\" \
                 font-family=\"monospace\">{:.1} mJ</text>\n",
                x + CELL_W / 2.0,
                y + CELL_H / 2.0 + 3.5,
                spread * 1e3
            ));
        }
    }
    format!(
        "<?xml version=\"1.0\" standalone=\"no\"?>\n\
         <svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\" \
         viewBox=\"0 0 {width} {height}\">\n\
         <rect x=\"0\" y=\"0\" width=\"{width}\" height=\"{height}\" fill=\"#f8f8f8\"/>\n\
         <text x=\"{:.1}\" y=\"20\" text-anchor=\"middle\" font-size=\"14\" \
         font-family=\"monospace\" font-weight=\"bold\">marginal energy spread by tuning \
         variable — {} (strided {})</text>\n{}</svg>\n",
        width / 2.0,
        report.app,
        report.scope,
        body
    )
}

/// Machine-readable report, hand-rolled deterministic JSON (same
/// convention as the ompprof attribution export).
pub fn report_json(report: &Report) -> String {
    let best_json = |b: &Best| {
        format!(
            "{{\"config\": \"{}\", \"virtual_ns\": {:.3}, \"joules\": {:.9}, \"edp_js\": {:.9}}}",
            b.config.describe(),
            b.virtual_ns,
            b.joules,
            b.edp_js
        )
    };
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"schema\": \"ompwatt-report-v1\",\n");
    out.push_str(&format!(
        "  \"app\": \"{}\",\n  \"scope\": {},\n  \"seed\": {},\n  \"disagreements\": {},\n",
        report.app,
        report.scope,
        report.seed,
        report.disagreements()
    ));
    out.push_str("  \"arches\": [\n");
    for (i, v) in report.verdicts.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"arch\": \"{}\", \"samples\": {}, \"disagree\": {}, \
             \"energy_penalty\": {:.6}, \"time_penalty\": {:.6},\n",
            v.arch.id(),
            v.samples,
            v.disagree,
            v.energy_penalty,
            v.time_penalty
        ));
        out.push_str(&format!(
            "     \"time_best\": {},\n     \"energy_best\": {},\n     \"edp_best\": {},\n",
            best_json(&v.time_best),
            best_json(&v.energy_best),
            best_json(&v.edp_best)
        ));
        out.push_str("     \"energy_spread_j\": {");
        for (fi, f) in Feature::ENV_FEATURES.iter().enumerate() {
            if fi > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {:.9}", f.name(), v.energy_spread_j[fi]));
        }
        out.push_str(&format!(
            "}}}}{}\n",
            if i + 1 < report.verdicts.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> Report {
        analyze("cg", 200, 2).expect("cg sweeps everywhere")
    }

    #[test]
    fn at_least_one_arch_disagrees_on_cg() {
        let r = report();
        assert!(!r.verdicts.is_empty());
        assert!(
            r.disagreements() >= 1,
            "power model must make time- and energy-optima diverge somewhere:\n{}",
            disagreement_markdown(&r)
        );
        for v in &r.verdicts {
            assert!(v.energy_penalty >= 1.0 - 1e-12, "{}", v.arch.id());
            assert!(v.time_penalty >= 1.0 - 1e-12, "{}", v.arch.id());
            if v.disagree {
                // Disagreement must be substantive: the time optimum
                // pays a real joule premium over the energy optimum.
                assert!(
                    v.energy_penalty > 1.0,
                    "{} disagrees but pays no energy premium",
                    v.arch.id()
                );
            }
        }
    }

    #[test]
    fn optima_really_are_optima() {
        let v = analyze_arch(Arch::Milan, "cg", 150, 2).unwrap();
        assert!(v.time_best.virtual_ns <= v.energy_best.virtual_ns);
        assert!(v.time_best.virtual_ns <= v.edp_best.virtual_ns);
        assert!(v.energy_best.joules <= v.time_best.joules);
        assert!(v.energy_best.joules <= v.edp_best.joules);
        assert!(v.edp_best.edp_js <= v.time_best.edp_js);
        assert!(v.edp_best.edp_js <= v.energy_best.edp_js);
    }

    #[test]
    fn artifacts_are_deterministic_and_well_formed() {
        let r = report();
        let md = disagreement_markdown(&r);
        assert!(md.starts_with("| arch |"));
        assert_eq!(md.lines().count(), 2 + r.verdicts.len());
        assert!(md.contains("DISAGREE"));

        let svg = heatmap_svg(&r);
        assert!(svg.starts_with("<?xml"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("mJ"));
        assert_eq!(svg, heatmap_svg(&r));

        let json = report_json(&r);
        assert!(json.contains("\"schema\": \"ompwatt-report-v1\""));
        assert!(json.contains("\"energy_spread_j\""));
        assert_eq!(json, report_json(&r));
    }

    #[test]
    fn config_delta_names_the_contested_knobs() {
        let a = TuningConfig::default_for(Arch::Milan, 8);
        assert_eq!(config_delta(&a, &a), "= time-opt");
        let mut b = a;
        b.library = omptune_core::KmpLibrary::Throughput;
        b.blocktime = omptune_core::KmpBlocktime::Infinite;
        let d = config_delta(&a, &b);
        // Exact strings depend on defaults; both knobs must be named.
        assert!(d.contains("lib:") || d.contains("blocktime:"), "{d}");
    }
}
