//! Property-based tests of the configuration-space and placement
//! invariants (proptest).

use omptune_core::placement::Placement;
use omptune_core::{Arch, ConfigSpace, TuningConfig};
use proptest::prelude::*;

fn arch_strategy() -> impl Strategy<Value = Arch> {
    prop_oneof![Just(Arch::A64fx), Just(Arch::Skylake), Just(Arch::Milan)]
}

proptest! {
    /// Every index in the space round-trips through get/index_of.
    #[test]
    fn space_get_index_bijection(arch in arch_strategy(), idx in 0usize..9216) {
        let space = ConfigSpace::new(arch, arch.cores());
        if idx < space.len() {
            let config = space.get(idx).expect("within len");
            prop_assert_eq!(space.index_of(&config), Some(idx));
        } else {
            prop_assert!(space.get(idx).is_none());
        }
    }

    /// Every configuration round-trips through its environment-variable
    /// string form.
    #[test]
    fn config_env_roundtrip(arch in arch_strategy(), idx in 0usize..4608) {
        let space = ConfigSpace::new(arch, arch.cores());
        let config = space.get(idx % space.len()).expect("in space");
        let env = config.to_env();
        prop_assert_eq!(TuningConfig::from_env(&env, arch), Some(config));
    }

    /// Unset variables never appear in the exported environment.
    #[test]
    fn env_export_omits_unset(arch in arch_strategy(), idx in 0usize..4608) {
        let space = ConfigSpace::new(arch, arch.cores());
        let config = space.get(idx % space.len()).expect("in space");
        let env = config.to_env();
        use omptune_core::{KmpForceReduction, OmpPlaces, OmpProcBind};
        prop_assert_eq!(
            env.contains_key("OMP_PLACES"),
            config.places != OmpPlaces::Unset
        );
        prop_assert_eq!(
            env.contains_key("OMP_PROC_BIND"),
            config.proc_bind != OmpProcBind::Unset
        );
        prop_assert_eq!(
            env.contains_key("KMP_FORCE_REDUCTION"),
            config.force_reduction != KmpForceReduction::Unset
        );
    }

    /// Bound placements assign every thread to a valid place, the
    /// occupancy sums to the thread count, and oversubscription is at
    /// least the machine-wide load.
    #[test]
    fn placement_invariants(
        arch in arch_strategy(),
        idx in 0usize..4608,
        t in 1usize..=96,
    ) {
        let t = t.min(arch.cores());
        let space = ConfigSpace::new(arch, t);
        let config = space.get(idx % space.len()).expect("in space");
        match Placement::compute(arch, &config) {
            Placement::Unbound => {
                prop_assert_eq!(config.effective_bind(), omptune_core::EffectiveBind::None);
            }
            Placement::Bound { assignment, n_places, cores_per_place } => {
                prop_assert_eq!(assignment.len(), t);
                prop_assert!(assignment.iter().all(|p| *p < n_places));
                prop_assert_eq!(n_places * cores_per_place, arch.cores());
                let placement = Placement::compute(arch, &config);
                let occ = placement.occupancy();
                prop_assert_eq!(occ.iter().sum::<usize>(), t);
                let over = placement.max_oversubscription(arch, t);
                prop_assert!(over >= t as f64 / arch.cores() as f64 - 1e-12);
            }
        }
    }

    /// The wait policy derivation is total and consistent: blocktime 0 ⇒
    /// passive, infinite ⇒ active, otherwise spin-then-sleep with the
    /// blocktime's milliseconds.
    #[test]
    fn wait_policy_total(arch in arch_strategy(), idx in 0usize..4608) {
        use omptune_core::{KmpBlocktime, WaitPolicy};
        let space = ConfigSpace::new(arch, arch.cores());
        let config = space.get(idx % space.len()).expect("in space");
        match (config.blocktime, config.wait_policy()) {
            (KmpBlocktime::Zero, WaitPolicy::Passive) => {}
            (KmpBlocktime::Default200, WaitPolicy::SpinThenSleep { millis: 200, .. }) => {}
            (KmpBlocktime::Infinite, WaitPolicy::Active { .. }) => {}
            (bt, wp) => prop_assert!(false, "inconsistent {bt:?} -> {wp:?}"),
        }
    }

    /// Speedup-range helper is order-invariant and tight.
    #[test]
    fn speedup_range_over_any_values(mut xs in prop::collection::vec(0.1f64..10.0, 1..50)) {
        let r = omptune_core::SpeedupRange::over(xs.iter().copied()).expect("non-empty");
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(r.lo, xs[0]);
        prop_assert_eq!(r.hi, *xs.last().unwrap());
    }
}

// Per-variable env-string round-trips: every value of each of the seven
// swept variables must survive `env_value` → `parse` on every
// architecture. The index strategy samples uniformly over the largest
// domain and is reduced modulo each domain's size, so every value of
// every variable is exercised across the run.
proptest! {
    /// `OMP_PLACES` round-trips, and the paper-excluded spellings
    /// (`threads`, `numa_domains`) are rejected.
    #[test]
    fn places_env_value_parse_roundtrip(_arch in arch_strategy(), idx in 0usize..64) {
        use omptune_core::OmpPlaces;
        let v = OmpPlaces::ALL[idx % OmpPlaces::ALL.len()];
        prop_assert_eq!(OmpPlaces::parse(v.env_value()), Some(v));
        prop_assert!(OmpPlaces::parse(Some("threads")).is_none());
        prop_assert!(OmpPlaces::parse(Some("numa_domains")).is_none());
    }

    /// `OMP_PROC_BIND` round-trips; the deprecated `primary` alias parses
    /// to the same value as `master`.
    #[test]
    fn proc_bind_env_value_parse_roundtrip(_arch in arch_strategy(), idx in 0usize..64) {
        use omptune_core::OmpProcBind;
        let v = OmpProcBind::ALL[idx % OmpProcBind::ALL.len()];
        prop_assert_eq!(OmpProcBind::parse(v.env_value()), Some(v));
        prop_assert_eq!(OmpProcBind::parse(Some("primary")), Some(OmpProcBind::Master));
    }

    /// `OMP_SCHEDULE` round-trips; the unset form parses to the `static`
    /// default, so the only value that maps back to `None`-equivalent
    /// spelling is `Static` itself.
    #[test]
    fn schedule_env_value_parse_roundtrip(_arch in arch_strategy(), idx in 0usize..64) {
        use omptune_core::OmpSchedule;
        let v = OmpSchedule::ALL[idx % OmpSchedule::ALL.len()];
        prop_assert_eq!(OmpSchedule::parse(Some(v.env_value())), Some(v));
        prop_assert_eq!(OmpSchedule::parse(None), Some(OmpSchedule::Static));
    }

    /// `KMP_LIBRARY` round-trips; `serial` (paper-excluded) is rejected
    /// and unset means the `throughput` default.
    #[test]
    fn library_env_value_parse_roundtrip(_arch in arch_strategy(), idx in 0usize..64) {
        use omptune_core::KmpLibrary;
        let v = KmpLibrary::ALL[idx % KmpLibrary::ALL.len()];
        prop_assert_eq!(KmpLibrary::parse(Some(v.env_value())), Some(v));
        prop_assert!(KmpLibrary::parse(Some("serial")).is_none());
        prop_assert_eq!(KmpLibrary::parse(None), Some(KmpLibrary::Throughput));
    }

    /// `KMP_BLOCKTIME` round-trips; arbitrary positive numbers collapse
    /// onto the 200 ms default and negative values are rejected.
    #[test]
    fn blocktime_env_value_parse_roundtrip(
        _arch in arch_strategy(),
        idx in 0usize..64,
        ms in 1i64..1_000_000,
    ) {
        use omptune_core::KmpBlocktime;
        let v = KmpBlocktime::ALL[idx % KmpBlocktime::ALL.len()];
        prop_assert_eq!(KmpBlocktime::parse(Some(v.env_value())), Some(v));
        prop_assert_eq!(
            KmpBlocktime::parse(Some(&ms.to_string())),
            Some(KmpBlocktime::Default200)
        );
        prop_assert!(KmpBlocktime::parse(Some(&(-ms).to_string())).is_none());
    }

    /// `KMP_FORCE_REDUCTION` round-trips; unset means the heuristic.
    #[test]
    fn force_reduction_env_value_parse_roundtrip(_arch in arch_strategy(), idx in 0usize..64) {
        use omptune_core::KmpForceReduction;
        let v = KmpForceReduction::ALL[idx % KmpForceReduction::ALL.len()];
        prop_assert_eq!(KmpForceReduction::parse(v.env_value()), Some(v));
        prop_assert_eq!(KmpForceReduction::parse(None), Some(KmpForceReduction::Unset));
    }

    /// `KMP_ALIGN_ALLOC` round-trips over the per-arch domain; unset
    /// parses to the architecture's cache-line default, and non-power-of-
    /// two or out-of-range alignments are rejected on every arch.
    #[test]
    fn align_alloc_env_value_parse_roundtrip(arch in arch_strategy(), idx in 0usize..64) {
        use omptune_core::KmpAlignAlloc;
        let domain = KmpAlignAlloc::domain(arch);
        let v = domain[idx % domain.len()];
        prop_assert_eq!(KmpAlignAlloc::parse(Some(&v.env_value()), arch), Some(v));
        prop_assert_eq!(
            KmpAlignAlloc::parse(None, arch),
            Some(KmpAlignAlloc::default_for(arch))
        );
        prop_assert!(KmpAlignAlloc::parse(Some("100"), arch).is_none());
        prop_assert!(KmpAlignAlloc::parse(Some("4"), arch).is_none());
        prop_assert!(KmpAlignAlloc::parse(Some("8192"), arch).is_none());
    }
}
