//! A complete tuning configuration and the libomp default-derivation rules.
//!
//! A [`TuningConfig`] is one point in the sweep: a value for each of the
//! seven environment variables plus `OMP_NUM_THREADS`. The type also
//! implements the *derived* semantics the paper describes:
//!
//! - `OMP_PROC_BIND` defaults to `false`, **unless** `OMP_PLACES` is set,
//!   in which case the effective policy is `spread` (Sec. III-2);
//! - `OMP_WAIT_POLICY` is derived from `KMP_BLOCKTIME` and `KMP_LIBRARY`
//!   (Sec. III: the paper excludes `OMP_WAIT_POLICY` in favour of the two
//!   `KMP_*` variables);
//! - the reduction-method heuristic used when `KMP_FORCE_REDUCTION` is
//!   unset (Sec. III-6): one thread → no synchronization, 2–4 threads →
//!   `critical`, more → `tree`;
//! - the default `KMP_ALIGN_ALLOC` is the architecture cache-line size.

use crate::arch::Arch;
use crate::envvar::{
    KmpAlignAlloc, KmpBlocktime, KmpForceReduction, KmpLibrary, OmpPlaces, OmpProcBind, OmpSchedule,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The binding policy actually in force after default derivation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EffectiveBind {
    /// Threads are unbound and may migrate between places.
    None,
    /// All threads share the primary thread's place.
    Master,
    /// Threads packed onto places near the parent.
    Close,
    /// Threads spread evenly over places.
    Spread,
}

/// The wait policy derived from `KMP_BLOCKTIME` × `KMP_LIBRARY`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WaitPolicy {
    /// Sleep immediately when idle (blocktime 0).
    Passive,
    /// Spin for a bounded time, then sleep.
    SpinThenSleep {
        /// Spin budget in milliseconds.
        millis: u32,
        /// Whether the spin loop yields to the OS (`throughput` mode).
        yielding: bool,
    },
    /// Never sleep (blocktime infinite).
    Active {
        /// Whether the spin loop yields to the OS (`throughput` mode).
        yielding: bool,
    },
}

/// The reduction method actually used for a given thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReductionMethod {
    /// Single thread: plain store, no synchronization.
    None,
    /// One critical section shared by all threads.
    Critical,
    /// Atomic read-modify-write per thread.
    Atomic,
    /// Pairwise combination tree.
    Tree,
}

impl ReductionMethod {
    /// libomp's heuristic when `KMP_FORCE_REDUCTION` is unset (Sec. III-6).
    pub fn heuristic(num_threads: usize) -> ReductionMethod {
        match num_threads {
            0 | 1 => ReductionMethod::None,
            2..=4 => ReductionMethod::Critical,
            _ => ReductionMethod::Tree,
        }
    }
}

/// The projection of a [`TuningConfig`] onto the variables that can
/// change *execution structure*: loop partitioning, chunk/steal
/// assignment, thread placement, and task-starvation behaviour. The
/// remaining variables (`KMP_BLOCKTIME`, `KMP_ALIGN_ALLOC`,
/// `KMP_FORCE_REDUCTION`) only re-price a fixed structure — wake-up
/// latencies, barrier/reduction constants — so two configurations with
/// equal projections share one simulation plan.
///
/// `KMP_LIBRARY` is part of the projection (not the pricing layer): it
/// changes whether idle task workers yield, which feeds the greedy
/// task-dispatch makespan, not just a constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PlanProjection {
    pub places: OmpPlaces,
    pub proc_bind: OmpProcBind,
    pub schedule: OmpSchedule,
    pub library: KmpLibrary,
    pub num_threads: usize,
}

/// One point in the configuration space: all swept variables plus the
/// thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TuningConfig {
    pub places: OmpPlaces,
    pub proc_bind: OmpProcBind,
    pub schedule: OmpSchedule,
    pub library: KmpLibrary,
    pub blocktime: KmpBlocktime,
    pub force_reduction: KmpForceReduction,
    pub align_alloc: KmpAlignAlloc,
    pub num_threads: usize,
}

impl TuningConfig {
    /// The default configuration on `arch` with `num_threads` threads —
    /// what an untouched environment gives you, and the baseline all
    /// speedups in the study are measured against.
    pub fn default_for(arch: Arch, num_threads: usize) -> TuningConfig {
        TuningConfig {
            places: OmpPlaces::Unset,
            proc_bind: OmpProcBind::Unset,
            schedule: OmpSchedule::Static,
            library: KmpLibrary::Throughput,
            blocktime: KmpBlocktime::Default200,
            force_reduction: KmpForceReduction::Unset,
            align_alloc: KmpAlignAlloc::default_for(arch),
            num_threads,
        }
    }

    /// Whether this config equals the default for `arch` at its own thread
    /// count.
    pub fn is_default(&self, arch: Arch) -> bool {
        *self == TuningConfig::default_for(arch, self.num_threads)
    }

    /// The plan-relevant projection of this configuration: the cache
    /// key for simulation-plan reuse (see [`PlanProjection`]).
    pub fn plan_projection(&self) -> PlanProjection {
        PlanProjection {
            places: self.places,
            proc_bind: self.proc_bind,
            schedule: self.schedule,
            library: self.library,
            num_threads: self.num_threads,
        }
    }

    /// The binding policy actually in force (Sec. III-2 derivation):
    /// `unset` → `false` normally, but `spread` when `OMP_PLACES` is set;
    /// `true` → implementation choice, libomp binds close.
    pub fn effective_bind(&self) -> EffectiveBind {
        match self.proc_bind {
            OmpProcBind::Unset => {
                if self.places == OmpPlaces::Unset {
                    EffectiveBind::None
                } else {
                    EffectiveBind::Spread
                }
            }
            OmpProcBind::False => EffectiveBind::None,
            OmpProcBind::Master => EffectiveBind::Master,
            OmpProcBind::Close => EffectiveBind::Close,
            OmpProcBind::Spread => EffectiveBind::Spread,
            OmpProcBind::True => EffectiveBind::Close,
        }
    }

    /// The wait policy derived from `KMP_BLOCKTIME` and `KMP_LIBRARY`.
    pub fn wait_policy(&self) -> WaitPolicy {
        let yielding = self.library == KmpLibrary::Throughput;
        match self.blocktime.millis() {
            Some(0) => WaitPolicy::Passive,
            Some(ms) => WaitPolicy::SpinThenSleep {
                millis: ms,
                yielding,
            },
            None => WaitPolicy::Active { yielding },
        }
    }

    /// The reduction method in force for this config's thread count.
    pub fn reduction_method(&self) -> ReductionMethod {
        match self.force_reduction {
            KmpForceReduction::Unset => ReductionMethod::heuristic(self.num_threads),
            KmpForceReduction::Tree => ReductionMethod::Tree,
            KmpForceReduction::Critical => ReductionMethod::Critical,
            KmpForceReduction::Atomic => ReductionMethod::Atomic,
        }
    }

    /// Export as the environment-variable map a job script would set.
    /// Unset variables are absent from the map.
    pub fn to_env(&self) -> BTreeMap<String, String> {
        let mut env = BTreeMap::new();
        if let Some(v) = self.places.env_value() {
            env.insert("OMP_PLACES".into(), v.into());
        }
        if let Some(v) = self.proc_bind.env_value() {
            env.insert("OMP_PROC_BIND".into(), v.into());
        }
        env.insert("OMP_SCHEDULE".into(), self.schedule.env_value().into());
        env.insert("KMP_LIBRARY".into(), self.library.env_value().into());
        env.insert("KMP_BLOCKTIME".into(), self.blocktime.env_value().into());
        if let Some(v) = self.force_reduction.env_value() {
            env.insert("KMP_FORCE_REDUCTION".into(), v.into());
        }
        env.insert("KMP_ALIGN_ALLOC".into(), self.align_alloc.env_value());
        env.insert("OMP_NUM_THREADS".into(), self.num_threads.to_string());
        env
    }

    /// Reconstruct a config from an environment map (inverse of
    /// [`TuningConfig::to_env`]). Unknown values yield `None`.
    pub fn from_env(env: &BTreeMap<String, String>, arch: Arch) -> Option<TuningConfig> {
        let get = |k: &str| env.get(k).map(String::as_str);
        Some(TuningConfig {
            places: OmpPlaces::parse(get("OMP_PLACES"))?,
            proc_bind: OmpProcBind::parse(get("OMP_PROC_BIND"))?,
            schedule: OmpSchedule::parse(get("OMP_SCHEDULE"))?,
            library: KmpLibrary::parse(get("KMP_LIBRARY"))?,
            blocktime: KmpBlocktime::parse(get("KMP_BLOCKTIME"))?,
            force_reduction: KmpForceReduction::parse(get("KMP_FORCE_REDUCTION"))?,
            align_alloc: KmpAlignAlloc::parse(get("KMP_ALIGN_ALLOC"), arch)?,
            num_threads: get("OMP_NUM_THREADS").and_then(|s| s.parse().ok())?,
        })
    }

    /// Compact single-line description used in reports and logs.
    pub fn describe(&self) -> String {
        format!(
            "places={} bind={} sched={} lib={} blocktime={} red={} align={} threads={}",
            self.places.env_value().unwrap_or("unset"),
            self.proc_bind.env_value().unwrap_or("unset"),
            self.schedule.env_value(),
            self.library.env_value(),
            self.blocktime.env_value(),
            self.force_reduction.env_value().unwrap_or("unset"),
            self.align_alloc.bytes(),
            self.num_threads,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_section_iii() {
        let c = TuningConfig::default_for(Arch::Skylake, 40);
        assert_eq!(c.places, OmpPlaces::Unset);
        assert_eq!(c.proc_bind, OmpProcBind::Unset);
        assert_eq!(c.schedule, OmpSchedule::Static);
        assert_eq!(c.library, KmpLibrary::Throughput);
        assert_eq!(c.blocktime, KmpBlocktime::Default200);
        assert_eq!(c.force_reduction, KmpForceReduction::Unset);
        assert_eq!(c.align_alloc.bytes(), 64);
        assert!(c.is_default(Arch::Skylake));
    }

    #[test]
    fn a64fx_default_alignment_is_256() {
        let c = TuningConfig::default_for(Arch::A64fx, 48);
        assert_eq!(c.align_alloc.bytes(), 256);
    }

    #[test]
    fn unset_bind_with_places_becomes_spread() {
        let mut c = TuningConfig::default_for(Arch::Milan, 96);
        assert_eq!(c.effective_bind(), EffectiveBind::None);
        c.places = OmpPlaces::Cores;
        assert_eq!(c.effective_bind(), EffectiveBind::Spread);
    }

    #[test]
    fn explicit_binds_pass_through() {
        let mut c = TuningConfig::default_for(Arch::Milan, 96);
        c.proc_bind = OmpProcBind::Master;
        assert_eq!(c.effective_bind(), EffectiveBind::Master);
        c.proc_bind = OmpProcBind::False;
        c.places = OmpPlaces::Cores;
        assert_eq!(c.effective_bind(), EffectiveBind::None);
        c.proc_bind = OmpProcBind::True;
        assert_eq!(c.effective_bind(), EffectiveBind::Close);
    }

    #[test]
    fn wait_policy_derivation() {
        let mut c = TuningConfig::default_for(Arch::A64fx, 48);
        assert_eq!(
            c.wait_policy(),
            WaitPolicy::SpinThenSleep {
                millis: 200,
                yielding: true
            }
        );
        c.blocktime = KmpBlocktime::Zero;
        assert_eq!(c.wait_policy(), WaitPolicy::Passive);
        c.blocktime = KmpBlocktime::Infinite;
        c.library = KmpLibrary::Turnaround;
        assert_eq!(c.wait_policy(), WaitPolicy::Active { yielding: false });
    }

    #[test]
    fn reduction_heuristic_thresholds() {
        assert_eq!(ReductionMethod::heuristic(1), ReductionMethod::None);
        assert_eq!(ReductionMethod::heuristic(2), ReductionMethod::Critical);
        assert_eq!(ReductionMethod::heuristic(4), ReductionMethod::Critical);
        assert_eq!(ReductionMethod::heuristic(5), ReductionMethod::Tree);
        assert_eq!(ReductionMethod::heuristic(96), ReductionMethod::Tree);
    }

    #[test]
    fn forced_reduction_overrides_heuristic() {
        let mut c = TuningConfig::default_for(Arch::Milan, 96);
        c.force_reduction = KmpForceReduction::Atomic;
        assert_eq!(c.reduction_method(), ReductionMethod::Atomic);
    }

    #[test]
    fn env_roundtrip_default() {
        let c = TuningConfig::default_for(Arch::Milan, 48);
        let env = c.to_env();
        // Unset variables must be absent, like a real job script.
        assert!(!env.contains_key("OMP_PLACES"));
        assert!(!env.contains_key("OMP_PROC_BIND"));
        assert!(!env.contains_key("KMP_FORCE_REDUCTION"));
        assert_eq!(TuningConfig::from_env(&env, Arch::Milan), Some(c));
    }

    #[test]
    fn env_roundtrip_fully_set() {
        let c = TuningConfig {
            places: OmpPlaces::LlCaches,
            proc_bind: OmpProcBind::Spread,
            schedule: OmpSchedule::Guided,
            library: KmpLibrary::Turnaround,
            blocktime: KmpBlocktime::Infinite,
            force_reduction: KmpForceReduction::Tree,
            align_alloc: KmpAlignAlloc(512),
            num_threads: 17,
        };
        let env = c.to_env();
        assert_eq!(env["OMP_PLACES"], "ll_caches");
        assert_eq!(env["KMP_BLOCKTIME"], "infinite");
        assert_eq!(TuningConfig::from_env(&env, Arch::Skylake), Some(c));
    }

    #[test]
    fn plan_projection_ignores_pricing_variables() {
        let a = TuningConfig::default_for(Arch::Milan, 96);
        let mut b = a;
        b.blocktime = KmpBlocktime::Zero;
        b.align_alloc = KmpAlignAlloc(512);
        b.force_reduction = KmpForceReduction::Atomic;
        assert_eq!(a.plan_projection(), b.plan_projection());
        // Structure-changing variables must show up in the projection.
        b.schedule = OmpSchedule::Dynamic;
        assert_ne!(a.plan_projection(), b.plan_projection());
        let mut c = a;
        c.library = KmpLibrary::Turnaround;
        assert_ne!(a.plan_projection(), c.plan_projection());
    }

    #[test]
    fn describe_mentions_every_variable() {
        let d = TuningConfig::default_for(Arch::A64fx, 48).describe();
        for key in [
            "places=",
            "bind=",
            "sched=",
            "lib=",
            "blocktime=",
            "red=",
            "align=",
            "threads=",
        ] {
            assert!(d.contains(key), "missing {key} in {d}");
        }
    }
}
