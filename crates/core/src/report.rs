//! Speedup-range summaries (paper Sec. V, research question 1; Tables V
//! and VI).
//!
//! The paper's "speedup range" for a scope is the range of the *maximum*
//! observed speedup over the default, taken across the finer settings the
//! scope contains:
//!
//! - per (application, architecture): the max per *setting* (input size or
//!   thread count) varies over a range — Table V rows,
//! - per application: the best per *architecture* varies — Table VI rows,
//! - per architecture: the best per (application, setting) varies, and its
//!   median is the architecture's "median improvement" — Sec. V Q1.

use crate::analysis::AnalysisRecord;
use crate::arch::Arch;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifies one experimental setting: the input-size code and thread
/// count under which a config space was swept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SettingKey {
    /// Input-size code scaled by 1000 to stay `Ord` (codes are small).
    pub input_milli: i64,
    pub num_threads: usize,
}

impl SettingKey {
    /// Extract the setting of a record.
    pub fn of(rec: &AnalysisRecord) -> SettingKey {
        SettingKey {
            input_milli: (rec.input_size * 1000.0).round() as i64,
            num_threads: rec.config.num_threads,
        }
    }
}

/// An inclusive speedup range `lo..=hi`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedupRange {
    pub lo: f64,
    pub hi: f64,
}

impl SpeedupRange {
    /// Range spanned by an iterator of values. `None` when empty.
    pub fn over(values: impl IntoIterator<Item = f64>) -> Option<SpeedupRange> {
        let mut it = values.into_iter();
        let first = it.next()?;
        let mut lo = first;
        let mut hi = first;
        for v in it {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some(SpeedupRange { lo, hi })
    }
}

impl std::fmt::Display for SpeedupRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3} - {:.3}", self.lo, self.hi)
    }
}

/// Maximum speedup observed per (app, arch, setting) group.
pub fn max_speedup_per_setting(
    records: &[AnalysisRecord],
) -> BTreeMap<(String, Arch, SettingKey), f64> {
    let mut out: BTreeMap<(String, Arch, SettingKey), f64> = BTreeMap::new();
    for r in records {
        let key = (r.app.clone(), r.arch, SettingKey::of(r));
        let e = out.entry(key).or_insert(f64::NEG_INFINITY);
        if r.speedup > *e {
            *e = r.speedup;
        }
    }
    out
}

/// Table V: range of per-setting maxima for one (application, architecture).
pub fn app_arch_range(records: &[AnalysisRecord], app: &str, arch: Arch) -> Option<SpeedupRange> {
    let maxima = max_speedup_per_setting(records);
    SpeedupRange::over(
        maxima
            .iter()
            .filter(|((a, ar, _), _)| a == app && *ar == arch)
            .map(|(_, v)| *v),
    )
}

/// Table VI: range, across architectures, of the best speedup each
/// architecture reaches for `app`.
pub fn app_range(records: &[AnalysisRecord], app: &str) -> Option<SpeedupRange> {
    let maxima = max_speedup_per_setting(records);
    let mut per_arch: BTreeMap<Arch, f64> = BTreeMap::new();
    for ((a, arch, _), v) in &maxima {
        if a == app {
            let e = per_arch.entry(*arch).or_insert(f64::NEG_INFINITY);
            if *v > *e {
                *e = *v;
            }
        }
    }
    SpeedupRange::over(per_arch.into_values())
}

/// Per-architecture summary for Sec. V Q1: the range of highest observed
/// speedups across (application, setting) groups, and their median.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArchSummary {
    pub arch: Arch,
    pub range: SpeedupRange,
    pub median_improvement: f64,
    /// Number of (application, setting) groups summarized.
    pub n_groups: usize,
}

/// Compute the Q1 summary for one architecture. `None` when no records.
pub fn arch_summary(records: &[AnalysisRecord], arch: Arch) -> Option<ArchSummary> {
    let maxima = max_speedup_per_setting(records);
    let vals: Vec<f64> = maxima
        .iter()
        .filter(|((_, ar, _), _)| *ar == arch)
        .map(|(_, v)| *v)
        .collect();
    let range = SpeedupRange::over(vals.iter().copied())?;
    Some(ArchSummary {
        arch,
        range,
        median_improvement: mlstats::median(&vals),
        n_groups: vals.len(),
    })
}

/// Whether two configurations set the same seven environment variables
/// (thread count excluded — it is part of the *setting*, not the knobs,
/// and differs across machines).
pub fn same_knobs(a: &crate::config::TuningConfig, b: &crate::config::TuningConfig) -> bool {
    a.places == b.places
        && a.proc_bind == b.proc_bind
        && a.schedule == b.schedule
        && a.library == b.library
        && a.blocktime == b.blocktime
        && a.force_reduction == b.force_reduction
        && a.align_alloc == b.align_alloc
}

/// One cell of the best-config transfer analysis (the markers of the
/// paper's Fig. 1 and research question 2): how well does the best
/// configuration of a *source* cell perform when transplanted into a
/// *target* cell?
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transfer {
    pub source_arch: Arch,
    pub target_arch: Arch,
    /// Speedup the source's best knobs achieve in the target cell.
    pub speedup_at_target: f64,
    /// Fraction of the target cell's samples this config beats
    /// (1.0 = still the best, 0.5 = median).
    pub percentile: f64,
}

/// For one application, take each architecture's best configuration
/// (over all settings) and evaluate where it lands in every other
/// architecture's sample distribution. Cells whose knob combination was
/// not sampled in the target (e.g. an x86-only alignment on A64FX) are
/// omitted — exactly the holes the paper's markers leave.
pub fn transfer_analysis(records: &[AnalysisRecord], app: &str) -> Vec<Transfer> {
    let mut out = Vec::new();
    for source_arch in Arch::ALL {
        // The source's single best sample.
        let best = records
            .iter()
            .filter(|r| r.app == app && r.arch == source_arch)
            .max_by(|a, b| a.speedup.partial_cmp(&b.speedup).expect("finite"));
        let Some(best) = best else { continue };
        for target_arch in Arch::ALL {
            let cell: Vec<&AnalysisRecord> = records
                .iter()
                .filter(|r| r.app == app && r.arch == target_arch)
                .collect();
            if cell.is_empty() {
                continue;
            }
            // The same knobs in the target cell (any setting); take the
            // best-performing match so the marker is setting-independent.
            let matched = cell
                .iter()
                .filter(|r| same_knobs(&r.config, &best.config))
                .max_by(|a, b| a.speedup.partial_cmp(&b.speedup).expect("finite"));
            let Some(matched) = matched else { continue };
            let beaten = cell.iter().filter(|r| r.speedup <= matched.speedup).count();
            out.push(Transfer {
                source_arch,
                target_arch,
                speedup_at_target: matched.speedup,
                percentile: beaten as f64 / cell.len() as f64,
            });
        }
    }
    out
}

/// The set of distinct applications present in `records`, sorted.
pub fn applications(records: &[AnalysisRecord]) -> Vec<String> {
    let mut apps: Vec<String> = records.iter().map(|r| r.app.clone()).collect();
    apps.sort();
    apps.dedup();
    apps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TuningConfig;

    fn rec(app: &str, arch: Arch, input: f64, threads: usize, speedup: f64) -> AnalysisRecord {
        AnalysisRecord {
            arch,
            app: app.into(),
            input_size: input,
            config: TuningConfig::default_for(arch, threads),
            speedup,
        }
    }

    #[test]
    fn per_setting_maxima() {
        let records = vec![
            rec("cg", Arch::Milan, 0.0, 96, 1.2),
            rec("cg", Arch::Milan, 0.0, 96, 1.5),
            rec("cg", Arch::Milan, 1.0, 96, 1.1),
        ];
        let maxima = max_speedup_per_setting(&records);
        assert_eq!(maxima.len(), 2);
        let vals: Vec<f64> = maxima.values().copied().collect();
        assert!(vals.contains(&1.5) && vals.contains(&1.1));
    }

    #[test]
    fn app_arch_range_spans_settings() {
        let records = vec![
            rec("alignment", Arch::A64fx, 0.0, 48, 1.032),
            rec("alignment", Arch::A64fx, 1.0, 48, 1.101),
            rec("alignment", Arch::A64fx, 2.0, 48, 1.07),
        ];
        let r = app_arch_range(&records, "alignment", Arch::A64fx).unwrap();
        assert_eq!(r.lo, 1.032);
        assert_eq!(r.hi, 1.101);
    }

    #[test]
    fn app_range_spans_architectures() {
        let records = vec![
            rec("xsbench", Arch::A64fx, 0.0, 48, 1.015),
            rec("xsbench", Arch::Milan, 0.0, 96, 2.602),
            rec("xsbench", Arch::Skylake, 0.0, 40, 1.002),
        ];
        let r = app_range(&records, "xsbench").unwrap();
        assert_eq!(r.lo, 1.002);
        assert_eq!(r.hi, 2.602);
    }

    #[test]
    fn arch_summary_median() {
        let records = vec![
            rec("a", Arch::Milan, 0.0, 96, 1.1),
            rec("b", Arch::Milan, 0.0, 96, 1.15),
            rec("c", Arch::Milan, 0.0, 96, 2.6),
        ];
        let s = arch_summary(&records, Arch::Milan).unwrap();
        assert_eq!(s.n_groups, 3);
        assert_eq!(s.median_improvement, 1.15);
        assert_eq!(s.range.lo, 1.1);
        assert_eq!(s.range.hi, 2.6);
    }

    #[test]
    fn missing_scope_is_none() {
        let records = vec![rec("cg", Arch::Milan, 0.0, 96, 1.0)];
        assert!(app_arch_range(&records, "cg", Arch::A64fx).is_none());
        assert!(app_range(&records, "ft").is_none());
        assert!(arch_summary(&records, Arch::Skylake).is_none());
    }

    #[test]
    fn range_display_format() {
        let r = SpeedupRange {
            lo: 1.022,
            hi: 1.186,
        };
        assert_eq!(r.to_string(), "1.022 - 1.186");
    }

    #[test]
    fn same_knobs_ignores_thread_count() {
        let a = TuningConfig::default_for(Arch::A64fx, 48);
        let mut b = TuningConfig::default_for(Arch::A64fx, 12);
        assert!(same_knobs(&a, &b));
        b.schedule = crate::envvar::OmpSchedule::Guided;
        assert!(!same_knobs(&a, &b));
    }

    #[test]
    fn transfer_tracks_best_config_across_archs() {
        // milan's best (speedup 2.0) also exists on skylake where it is
        // mediocre; skylake's best is its default.
        let mut milan_best = TuningConfig::default_for(Arch::Milan, 96);
        milan_best.schedule = crate::envvar::OmpSchedule::Guided;
        let mut skl_same = TuningConfig::default_for(Arch::Skylake, 40);
        skl_same.schedule = crate::envvar::OmpSchedule::Guided;
        let records = vec![
            AnalysisRecord {
                arch: Arch::Milan,
                app: "x".into(),
                input_size: 0.0,
                config: milan_best,
                speedup: 2.0,
            },
            AnalysisRecord {
                arch: Arch::Milan,
                app: "x".into(),
                input_size: 0.0,
                config: TuningConfig::default_for(Arch::Milan, 96),
                speedup: 1.0,
            },
            AnalysisRecord {
                arch: Arch::Skylake,
                app: "x".into(),
                input_size: 0.0,
                config: skl_same,
                speedup: 0.9,
            },
            AnalysisRecord {
                arch: Arch::Skylake,
                app: "x".into(),
                input_size: 0.0,
                config: TuningConfig::default_for(Arch::Skylake, 40),
                speedup: 1.0,
            },
        ];
        let transfers = transfer_analysis(&records, "x");
        let find = |s: Arch, t: Arch| {
            transfers
                .iter()
                .find(|tr| tr.source_arch == s && tr.target_arch == t)
                .expect("transfer present")
        };
        // Self-transfer: still the best.
        assert_eq!(find(Arch::Milan, Arch::Milan).percentile, 1.0);
        // Milan's best is the worse config on skylake.
        assert_eq!(find(Arch::Milan, Arch::Skylake).speedup_at_target, 0.9);
        assert_eq!(find(Arch::Milan, Arch::Skylake).percentile, 0.5);
        // No a64fx data: no transfers to/from it.
        assert!(transfers.iter().all(|t| t.source_arch != Arch::A64fx));
    }

    #[test]
    fn applications_sorted_unique() {
        let records = vec![
            rec("ft", Arch::Milan, 0.0, 96, 1.0),
            rec("cg", Arch::Milan, 0.0, 96, 1.0),
            rec("ft", Arch::A64fx, 0.0, 48, 1.0),
        ];
        assert_eq!(
            applications(&records),
            vec!["cg".to_string(), "ft".to_string()]
        );
    }
}
