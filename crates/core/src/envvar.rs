//! Typed models of the seven swept environment variables (paper Sec. III).
//!
//! Each variable is an enum over exactly the values the paper explores,
//! with the paper's exclusions applied:
//!
//! - `OMP_PLACES`: `threads` is skipped (no SMT machines in the study) and
//!   `numa_domains` is skipped (needs hwloc; left for future work).
//! - `KMP_LIBRARY`: `serial` is skipped (forces serial execution).
//! - `KMP_BLOCKTIME`: only `0`, `200` and `infinite` are explored out of
//!   `[0, INT32_MAX]`.
//! - `KMP_ALIGN_ALLOC`: the domain depends on the architecture cache line
//!   ({256, 512} on A64FX; {64, 128, 256, 512} on x86).
//!
//! Every enum knows its environment-string spelling (`env_value`), how to
//! parse it back, and its full value domain, so configurations round-trip
//! through the textual form used in job scripts.

use crate::arch::Arch;
use serde::{Deserialize, Serialize};

/// `OMP_PLACES` — how threads are distributed among places (Sec. III-1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OmpPlaces {
    /// Variable not set: threads may be migrated freely by the OS.
    Unset,
    /// One place per physical core.
    Cores,
    /// One place per last-level-cache group.
    LlCaches,
    /// One place per socket.
    Sockets,
}

impl OmpPlaces {
    /// All values the study sweeps.
    pub const ALL: [OmpPlaces; 4] = [
        OmpPlaces::Unset,
        OmpPlaces::Cores,
        OmpPlaces::LlCaches,
        OmpPlaces::Sockets,
    ];

    /// Spelling used when exporting the variable; `None` means "leave unset".
    pub fn env_value(self) -> Option<&'static str> {
        match self {
            OmpPlaces::Unset => None,
            OmpPlaces::Cores => Some("cores"),
            OmpPlaces::LlCaches => Some("ll_caches"),
            OmpPlaces::Sockets => Some("sockets"),
        }
    }

    /// Parse an environment spelling; `None` input means unset.
    pub fn parse(s: Option<&str>) -> Option<OmpPlaces> {
        match s {
            None | Some("") => Some(OmpPlaces::Unset),
            Some("cores") => Some(OmpPlaces::Cores),
            Some("ll_caches") => Some(OmpPlaces::LlCaches),
            Some("sockets") => Some(OmpPlaces::Sockets),
            _ => None,
        }
    }

    /// Number of places this granularity creates on `arch`.
    pub fn place_count(self, arch: Arch) -> usize {
        match self {
            OmpPlaces::Unset => 1, // one unconstrained "place"
            OmpPlaces::Cores => arch.cores(),
            OmpPlaces::LlCaches => arch.ll_caches(),
            OmpPlaces::Sockets => arch.sockets(),
        }
    }
}

/// `OMP_PROC_BIND` — thread binding/affinity policy (Sec. III-2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OmpProcBind {
    /// Not set. Defaults to `false`, unless `OMP_PLACES` is set, in which
    /// case the effective policy is `spread`.
    Unset,
    /// Deprecated spelling of `primary`: bind everything to the primary
    /// thread's place.
    Master,
    /// Bind threads to places close to the parent thread.
    Close,
    /// Spread threads as evenly as possible over places.
    Spread,
    /// `true`: bind, implementation picks the strategy.
    True,
    /// `false`: threads are not bound and may migrate between places.
    False,
}

impl OmpProcBind {
    /// All values the study sweeps.
    pub const ALL: [OmpProcBind; 6] = [
        OmpProcBind::Unset,
        OmpProcBind::Master,
        OmpProcBind::Close,
        OmpProcBind::Spread,
        OmpProcBind::True,
        OmpProcBind::False,
    ];

    /// Spelling used when exporting; `None` means "leave unset".
    pub fn env_value(self) -> Option<&'static str> {
        match self {
            OmpProcBind::Unset => None,
            OmpProcBind::Master => Some("master"),
            OmpProcBind::Close => Some("close"),
            OmpProcBind::Spread => Some("spread"),
            OmpProcBind::True => Some("true"),
            OmpProcBind::False => Some("false"),
        }
    }

    /// Parse an environment spelling (`primary` accepted as `master`).
    pub fn parse(s: Option<&str>) -> Option<OmpProcBind> {
        match s {
            None | Some("") => Some(OmpProcBind::Unset),
            Some("master") | Some("primary") => Some(OmpProcBind::Master),
            Some("close") => Some(OmpProcBind::Close),
            Some("spread") => Some(OmpProcBind::Spread),
            Some("true") => Some(OmpProcBind::True),
            Some("false") => Some(OmpProcBind::False),
            _ => None,
        }
    }
}

/// `OMP_SCHEDULE` — worksharing-loop schedule kind (Sec. III-3). The study
/// sweeps all kinds but no explicit chunk sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OmpSchedule {
    /// Near-equal contiguous blocks, decided at loop entry. The default.
    Static,
    /// Chunks handed out on demand from a shared counter.
    Dynamic,
    /// Exponentially decreasing chunk sizes.
    Guided,
    /// Implementation choice (libomp maps it to static).
    Auto,
}

impl OmpSchedule {
    /// All values the study sweeps.
    pub const ALL: [OmpSchedule; 4] = [
        OmpSchedule::Static,
        OmpSchedule::Dynamic,
        OmpSchedule::Guided,
        OmpSchedule::Auto,
    ];

    /// Spelling used when exporting.
    pub fn env_value(self) -> &'static str {
        match self {
            OmpSchedule::Static => "static",
            OmpSchedule::Dynamic => "dynamic",
            OmpSchedule::Guided => "guided",
            OmpSchedule::Auto => "auto",
        }
    }

    /// Parse an environment spelling; unset means the default (`static`).
    pub fn parse(s: Option<&str>) -> Option<OmpSchedule> {
        match s {
            None | Some("") => Some(OmpSchedule::Static),
            Some("static") => Some(OmpSchedule::Static),
            Some("dynamic") => Some(OmpSchedule::Dynamic),
            Some("guided") => Some(OmpSchedule::Guided),
            Some("auto") => Some(OmpSchedule::Auto),
            _ => None,
        }
    }
}

/// `KMP_LIBRARY` — runtime execution mode (Sec. III-4). `serial` exists but
/// is excluded from the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum KmpLibrary {
    /// Default: cooperative waiting (spin briefly, yield, eventually sleep)
    /// so the machine can be shared.
    Throughput,
    /// Dedicated-machine mode: workers burn their CPU while waiting for
    /// work, minimizing wake-up latency.
    Turnaround,
}

impl KmpLibrary {
    /// All values the study sweeps.
    pub const ALL: [KmpLibrary; 2] = [KmpLibrary::Throughput, KmpLibrary::Turnaround];

    /// Spelling used when exporting.
    pub fn env_value(self) -> &'static str {
        match self {
            KmpLibrary::Throughput => "throughput",
            KmpLibrary::Turnaround => "turnaround",
        }
    }

    /// Parse an environment spelling; unset means the default.
    pub fn parse(s: Option<&str>) -> Option<KmpLibrary> {
        match s {
            None | Some("") => Some(KmpLibrary::Throughput),
            Some("throughput") => Some(KmpLibrary::Throughput),
            Some("turnaround") => Some(KmpLibrary::Turnaround),
            _ => None,
        }
    }
}

/// `KMP_BLOCKTIME` — how long a worker spins after a parallel region before
/// going to sleep (Sec. III-5). The sweep uses `0`, `200` (default) and
/// `infinite`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum KmpBlocktime {
    /// Sleep immediately when idle.
    Zero,
    /// Spin for 200 ms, then sleep (the default).
    Default200,
    /// Never sleep.
    Infinite,
}

impl KmpBlocktime {
    /// All values the study sweeps.
    pub const ALL: [KmpBlocktime; 3] = [
        KmpBlocktime::Zero,
        KmpBlocktime::Default200,
        KmpBlocktime::Infinite,
    ];

    /// Spelling used when exporting.
    pub fn env_value(self) -> &'static str {
        match self {
            KmpBlocktime::Zero => "0",
            KmpBlocktime::Default200 => "200",
            KmpBlocktime::Infinite => "infinite",
        }
    }

    /// Blocktime in milliseconds; `None` for `infinite`.
    pub fn millis(self) -> Option<u32> {
        match self {
            KmpBlocktime::Zero => Some(0),
            KmpBlocktime::Default200 => Some(200),
            KmpBlocktime::Infinite => None,
        }
    }

    /// Parse an environment spelling; unset means the 200 ms default.
    /// Arbitrary numeric values collapse onto the nearest swept value.
    pub fn parse(s: Option<&str>) -> Option<KmpBlocktime> {
        match s {
            None | Some("") => Some(KmpBlocktime::Default200),
            Some("infinite") => Some(KmpBlocktime::Infinite),
            Some(num) => {
                let v: i64 = num.parse().ok()?;
                if v < 0 {
                    None
                } else if v == 0 {
                    Some(KmpBlocktime::Zero)
                } else {
                    Some(KmpBlocktime::Default200)
                }
            }
        }
    }
}

/// `KMP_FORCE_REDUCTION` — cross-thread reduction method (Sec. III-6,
/// undocumented in libomp).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum KmpForceReduction {
    /// Not set: a heuristic picks the method from the thread count
    /// (1 → none, 2–4 → critical, ≥5 → tree); see
    /// [`crate::config::ReductionMethod::heuristic`].
    Unset,
    /// Logarithmic pairwise combination tree.
    Tree,
    /// Every thread combines into the shared value under one critical section.
    Critical,
    /// Every thread combines with an atomic RMW.
    Atomic,
}

impl KmpForceReduction {
    /// All values the study sweeps.
    pub const ALL: [KmpForceReduction; 4] = [
        KmpForceReduction::Unset,
        KmpForceReduction::Tree,
        KmpForceReduction::Critical,
        KmpForceReduction::Atomic,
    ];

    /// Spelling used when exporting; `None` means "leave unset".
    pub fn env_value(self) -> Option<&'static str> {
        match self {
            KmpForceReduction::Unset => None,
            KmpForceReduction::Tree => Some("tree"),
            KmpForceReduction::Critical => Some("critical"),
            KmpForceReduction::Atomic => Some("atomic"),
        }
    }

    /// Parse an environment spelling; `None` input means unset.
    pub fn parse(s: Option<&str>) -> Option<KmpForceReduction> {
        match s {
            None | Some("") => Some(KmpForceReduction::Unset),
            Some("tree") => Some(KmpForceReduction::Tree),
            Some("critical") => Some(KmpForceReduction::Critical),
            Some("atomic") => Some(KmpForceReduction::Atomic),
            _ => None,
        }
    }
}

/// `KMP_ALIGN_ALLOC` — alignment of the runtime's internal allocations
/// (Sec. III-7, undocumented). Value domain and default depend on the
/// architecture cache-line size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct KmpAlignAlloc(pub u32);

impl KmpAlignAlloc {
    /// The values swept on `arch`: {256, 512} on A64FX (256-byte lines),
    /// {64, 128, 256, 512} on the x86 machines (64-byte lines).
    pub fn domain(arch: Arch) -> &'static [KmpAlignAlloc] {
        const A64FX: [KmpAlignAlloc; 2] = [KmpAlignAlloc(256), KmpAlignAlloc(512)];
        const X86: [KmpAlignAlloc; 4] = [
            KmpAlignAlloc(64),
            KmpAlignAlloc(128),
            KmpAlignAlloc(256),
            KmpAlignAlloc(512),
        ];
        match arch {
            Arch::A64fx => &A64FX,
            Arch::Skylake | Arch::Milan => &X86,
        }
    }

    /// The default: the architecture's cache-line size.
    pub fn default_for(arch: Arch) -> KmpAlignAlloc {
        KmpAlignAlloc(arch.cacheline())
    }

    /// Alignment in bytes.
    pub fn bytes(self) -> u32 {
        self.0
    }

    /// Spelling used when exporting.
    pub fn env_value(self) -> String {
        self.0.to_string()
    }

    /// Parse an environment spelling; unset means the per-arch default.
    /// Rejects non-power-of-two and out-of-range alignments.
    pub fn parse(s: Option<&str>, arch: Arch) -> Option<KmpAlignAlloc> {
        match s {
            None | Some("") => Some(KmpAlignAlloc::default_for(arch)),
            Some(num) => {
                let v: u32 = num.parse().ok()?;
                if v.is_power_of_two() && (8..=4096).contains(&v) {
                    Some(KmpAlignAlloc(v))
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn places_domain_matches_paper_exclusions() {
        // threads and numa_domains are excluded; 4 values remain.
        assert_eq!(OmpPlaces::ALL.len(), 4);
        assert!(OmpPlaces::parse(Some("threads")).is_none());
        assert!(OmpPlaces::parse(Some("numa_domains")).is_none());
    }

    #[test]
    fn places_env_roundtrip() {
        for p in OmpPlaces::ALL {
            assert_eq!(OmpPlaces::parse(p.env_value()), Some(p));
        }
    }

    #[test]
    fn place_counts_per_arch() {
        assert_eq!(OmpPlaces::Cores.place_count(Arch::Milan), 96);
        assert_eq!(OmpPlaces::Sockets.place_count(Arch::Skylake), 2);
        assert_eq!(OmpPlaces::LlCaches.place_count(Arch::A64fx), 4);
        assert_eq!(OmpPlaces::Unset.place_count(Arch::A64fx), 1);
    }

    #[test]
    fn proc_bind_accepts_primary_alias() {
        assert_eq!(
            OmpProcBind::parse(Some("primary")),
            Some(OmpProcBind::Master)
        );
    }

    #[test]
    fn proc_bind_env_roundtrip() {
        for p in OmpProcBind::ALL {
            assert_eq!(OmpProcBind::parse(p.env_value()), Some(p));
        }
    }

    #[test]
    fn schedule_default_is_static() {
        assert_eq!(OmpSchedule::parse(None), Some(OmpSchedule::Static));
        assert_eq!(OmpSchedule::ALL.len(), 4);
    }

    #[test]
    fn library_excludes_serial() {
        assert_eq!(KmpLibrary::ALL.len(), 2);
        assert!(KmpLibrary::parse(Some("serial")).is_none());
        assert_eq!(KmpLibrary::parse(None), Some(KmpLibrary::Throughput));
    }

    #[test]
    fn blocktime_millis() {
        assert_eq!(KmpBlocktime::Zero.millis(), Some(0));
        assert_eq!(KmpBlocktime::Default200.millis(), Some(200));
        assert_eq!(KmpBlocktime::Infinite.millis(), None);
    }

    #[test]
    fn blocktime_parse_collapses_numbers() {
        assert_eq!(KmpBlocktime::parse(Some("0")), Some(KmpBlocktime::Zero));
        assert_eq!(
            KmpBlocktime::parse(Some("500")),
            Some(KmpBlocktime::Default200)
        );
        assert_eq!(KmpBlocktime::parse(Some("-1")), None);
        assert_eq!(
            KmpBlocktime::parse(Some("infinite")),
            Some(KmpBlocktime::Infinite)
        );
    }

    #[test]
    fn align_alloc_domain_per_arch() {
        assert_eq!(KmpAlignAlloc::domain(Arch::A64fx).len(), 2);
        assert_eq!(KmpAlignAlloc::domain(Arch::Skylake).len(), 4);
        assert_eq!(KmpAlignAlloc::default_for(Arch::A64fx), KmpAlignAlloc(256));
        assert_eq!(KmpAlignAlloc::default_for(Arch::Milan), KmpAlignAlloc(64));
    }

    #[test]
    fn align_alloc_rejects_bad_values() {
        assert!(KmpAlignAlloc::parse(Some("100"), Arch::Milan).is_none()); // not pow2
        assert!(KmpAlignAlloc::parse(Some("4"), Arch::Milan).is_none()); // too small
        assert!(KmpAlignAlloc::parse(Some("8192"), Arch::Milan).is_none()); // too big
        assert_eq!(
            KmpAlignAlloc::parse(Some("128"), Arch::Milan),
            Some(KmpAlignAlloc(128))
        );
    }

    #[test]
    fn force_reduction_default_unset() {
        assert_eq!(
            KmpForceReduction::parse(None),
            Some(KmpForceReduction::Unset)
        );
        assert_eq!(KmpForceReduction::ALL.len(), 4);
    }
}
