//! Structured diagnostics for configuration-space analysis.
//!
//! The `omplint` crate classifies configuration points against a rule
//! catalog; each firing is reported as a [`Diagnostic`] carrying the rule
//! id, a severity, a human-readable message, and (when one exists) a
//! canonical replacement. Keeping the types here — rather than in
//! `omplint` — lets `sweep` and `bench` consume lint output without
//! depending on the linter itself.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Informational: the point is fine but noteworthy.
    Note,
    /// The point is semantically equivalent to another (redundant work).
    Warning,
    /// The point is invalid and must not be swept.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One rule firing against one configuration point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable rule identifier, e.g. `E-ALIGN-ARCH` or `R-BIND-TRUE`.
    pub rule: String,
    pub severity: Severity,
    /// What is wrong with the point.
    pub message: String,
    /// Suggested fix — for redundant points, the canonical equivalent.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    pub fn new(
        rule: impl Into<String>,
        severity: Severity,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            rule: rule.into(),
            severity,
            message: message.into(),
            suggestion: None,
        }
    }

    /// Attach a suggested fix.
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Diagnostic {
        self.suggestion = Some(suggestion.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.rule, self.message)?;
        if let Some(s) = &self.suggestion {
            write!(f, " (suggestion: {s})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_by_badness() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn display_includes_rule_and_suggestion() {
        let d = Diagnostic::new("E-TEST", Severity::Error, "bad point")
            .with_suggestion("use the default");
        let s = d.to_string();
        assert!(s.contains("error[E-TEST]"));
        assert!(s.contains("bad point"));
        assert!(s.contains("use the default"));
    }
}
