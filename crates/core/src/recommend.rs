//! Recommendation extraction (paper Sec. V, research questions 3–4 and
//! Table VII).
//!
//! From the sweep records we derive, per (application, architecture):
//! which variable/value pairs recur among the top-performing
//! configurations (Table VII's "best performing environment variables and
//! values"), and which patterns dominate the *worst* configurations — the
//! paper's headline worst-trend being `master` binding combined with a
//! large thread count (Sec. V Q4).

use crate::analysis::AnalysisRecord;
use crate::arch::Arch;
use crate::config::{EffectiveBind, TuningConfig};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A variable/value pair observed to recur among top configurations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// Environment variable name, e.g. `"KMP_LIBRARY"`.
    pub variable: String,
    /// Recommended value spelling, e.g. `"turnaround"`.
    pub value: String,
    /// Fraction of the inspected top configurations sharing this value.
    pub support: f64,
}

/// Table-VII-style report for one (application, architecture) cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellReport {
    pub app: String,
    pub arch: Arch,
    /// Best observed speedup over the default.
    pub best_speedup: f64,
    /// The single best configuration.
    pub best_config: TuningConfig,
    /// Variable/value pairs shared by most of the top-k configurations
    /// *and* differing from the default — the actionable advice.
    pub recommendations: Vec<Recommendation>,
}

/// Decompose a config into (variable, value-spelling) pairs for the seven
/// swept variables. `unset` is spelled out so defaults are comparable.
fn pairs(c: &TuningConfig) -> [(&'static str, String); 7] {
    [
        (
            "OMP_PLACES",
            c.places.env_value().unwrap_or("unset").to_string(),
        ),
        (
            "OMP_PROC_BIND",
            c.proc_bind.env_value().unwrap_or("unset").to_string(),
        ),
        ("OMP_SCHEDULE", c.schedule.env_value().to_string()),
        ("KMP_LIBRARY", c.library.env_value().to_string()),
        ("KMP_BLOCKTIME", c.blocktime.env_value().to_string()),
        (
            "KMP_FORCE_REDUCTION",
            c.force_reduction.env_value().unwrap_or("unset").to_string(),
        ),
        ("KMP_ALIGN_ALLOC", c.align_alloc.env_value()),
    ]
}

/// Analyze the top-`k` configurations of one (app, arch) group and report
/// variable/value pairs that (a) at least `min_support` of them share and
/// (b) differ from the default configuration. Returns `None` when the
/// group has no records.
pub fn recommend_for(
    records: &[AnalysisRecord],
    app: &str,
    arch: Arch,
    k: usize,
    min_support: f64,
) -> Option<CellReport> {
    let mut group: Vec<&AnalysisRecord> = records
        .iter()
        .filter(|r| r.app == app && r.arch == arch)
        .collect();
    if group.is_empty() {
        return None;
    }
    group.sort_by(|a, b| b.speedup.partial_cmp(&a.speedup).expect("NaN speedup"));
    let top = &group[..k.min(group.len())];
    let best = top[0];

    let default = TuningConfig::default_for(arch, best.config.num_threads);
    let default_pairs = pairs(&default);

    // Count value occurrences per variable among the top-k.
    let mut counts: BTreeMap<(&'static str, String), usize> = BTreeMap::new();
    for rec in top {
        for (var, val) in pairs(&rec.config) {
            *counts.entry((var, val)).or_insert(0) += 1;
        }
    }
    let n = top.len() as f64;
    let mut recommendations: Vec<Recommendation> = counts
        .into_iter()
        .filter_map(|((var, val), cnt)| {
            let support = cnt as f64 / n;
            let is_default = default_pairs
                .iter()
                .any(|(dv, dval)| *dv == var && *dval == val);
            (support >= min_support && !is_default).then_some(Recommendation {
                variable: var.to_string(),
                value: val,
                support,
            })
        })
        .collect();
    recommendations.sort_by(|a, b| {
        b.support
            .partial_cmp(&a.support)
            .expect("support is finite")
            .then_with(|| a.variable.cmp(&b.variable))
    });

    Some(CellReport {
        app: app.to_string(),
        arch,
        best_speedup: best.speedup,
        best_config: best.config,
        recommendations,
    })
}

/// A worst-trend pattern with its prevalence in the bottom-k samples
/// versus the full group (Sec. V Q4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorstTrend {
    /// Human-readable pattern description.
    pub pattern: String,
    /// Fraction of bottom-k samples matching the pattern.
    pub bottom_fraction: f64,
    /// Fraction of *all* samples matching it (base rate).
    pub base_fraction: f64,
}

impl WorstTrend {
    /// Enrichment of the pattern among the worst samples (lift over the
    /// base rate). Values ≫ 1 mark patterns to avoid.
    pub fn lift(&self) -> f64 {
        if self.base_fraction == 0.0 {
            f64::INFINITY
        } else {
            self.bottom_fraction / self.base_fraction
        }
    }
}

/// A named predicate over analysis records.
type Pattern = (&'static str, fn(&AnalysisRecord) -> bool);

/// Patterns the worst-trend analysis screens for. The paper's finding is
/// the first one; the others are controls.
fn patterns() -> Vec<Pattern> {
    vec![
        ("master binding with many threads (> half the cores)", |r| {
            r.config.effective_bind() == EffectiveBind::Master
                && r.config.num_threads > r.arch.cores() / 2
        }),
        ("master binding (any thread count)", |r| {
            r.config.effective_bind() == EffectiveBind::Master
        }),
        ("blocktime 0 (immediate sleep)", |r| {
            r.config.blocktime == crate::envvar::KmpBlocktime::Zero
        }),
        ("dynamic schedule", |r| {
            r.config.schedule == crate::envvar::OmpSchedule::Dynamic
        }),
    ]
}

/// Screen the bottom `k` samples (by speedup) for over-represented
/// configuration patterns. Patterns are returned sorted by lift.
pub fn worst_trends(records: &[AnalysisRecord], k: usize) -> Vec<WorstTrend> {
    if records.is_empty() {
        return Vec::new();
    }
    let mut sorted: Vec<&AnalysisRecord> = records.iter().collect();
    sorted.sort_by(|a, b| a.speedup.partial_cmp(&b.speedup).expect("NaN speedup"));
    let bottom = &sorted[..k.min(sorted.len())];

    let mut out: Vec<WorstTrend> = patterns()
        .into_iter()
        .map(|(name, pred)| {
            let bottom_n = bottom.iter().filter(|r| pred(r)).count();
            let base_n = records.iter().filter(|r| pred(r)).count();
            WorstTrend {
                pattern: name.to_string(),
                bottom_fraction: bottom_n as f64 / bottom.len() as f64,
                base_fraction: base_n as f64 / records.len() as f64,
            }
        })
        .collect();
    out.sort_by(|a, b| b.lift().partial_cmp(&a.lift()).expect("lift ordering"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envvar::{KmpLibrary, OmpProcBind};
    use crate::space::ConfigSpace;

    fn records_where_turnaround_wins() -> Vec<AnalysisRecord> {
        let space = ConfigSpace::new(Arch::Milan, 96);
        space
            .iter()
            .map(|config| {
                let mut speedup = 1.0;
                if config.library == KmpLibrary::Turnaround {
                    speedup = 2.4;
                }
                if config.effective_bind() == EffectiveBind::Master {
                    speedup = 0.3;
                }
                AnalysisRecord {
                    arch: Arch::Milan,
                    app: "nqueens".into(),
                    input_size: 0.0,
                    config,
                    speedup,
                }
            })
            .collect()
    }

    #[test]
    fn turnaround_recommended_for_nqueens() {
        let records = records_where_turnaround_wins();
        let report = recommend_for(&records, "nqueens", Arch::Milan, 50, 0.8).unwrap();
        assert!(report.best_speedup >= 2.4);
        assert!(
            report
                .recommendations
                .iter()
                .any(|r| r.variable == "KMP_LIBRARY" && r.value == "turnaround"),
            "recommendations: {:?}",
            report.recommendations
        );
    }

    #[test]
    fn default_values_never_recommended() {
        let records = records_where_turnaround_wins();
        let report = recommend_for(&records, "nqueens", Arch::Milan, 50, 0.5).unwrap();
        for rec in &report.recommendations {
            assert_ne!(
                (rec.variable.as_str(), rec.value.as_str()),
                ("OMP_SCHEDULE", "static"),
                "default schedule must not be recommended"
            );
            assert_ne!(
                (rec.variable.as_str(), rec.value.as_str()),
                ("KMP_LIBRARY", "throughput")
            );
        }
    }

    #[test]
    fn missing_group_returns_none() {
        let records = records_where_turnaround_wins();
        assert!(recommend_for(&records, "cg", Arch::Milan, 10, 0.5).is_none());
        assert!(recommend_for(&records, "nqueens", Arch::A64fx, 10, 0.5).is_none());
    }

    #[test]
    fn master_bind_dominates_worst_trends() {
        let records = records_where_turnaround_wins();
        let trends = worst_trends(&records, 200);
        let master = trends
            .iter()
            .find(|t| t.pattern.contains("master binding with many threads"))
            .unwrap();
        assert!(
            master.bottom_fraction > 0.9,
            "bottom={}",
            master.bottom_fraction
        );
        assert!(master.lift() > 3.0, "lift={}", master.lift());
        // And it should rank first.
        assert!(trends[0].pattern.contains("master"));
    }

    #[test]
    fn worst_trends_empty_input() {
        assert!(worst_trends(&[], 10).is_empty());
    }

    #[test]
    fn recommendation_support_is_a_fraction() {
        let records = records_where_turnaround_wins();
        let report = recommend_for(&records, "nqueens", Arch::Milan, 100, 0.1).unwrap();
        for r in &report.recommendations {
            assert!(r.support > 0.0 && r.support <= 1.0);
        }
    }

    #[test]
    fn best_config_avoids_master() {
        let records = records_where_turnaround_wins();
        let report = recommend_for(&records, "nqueens", Arch::Milan, 10, 0.9).unwrap();
        assert_ne!(report.best_config.proc_bind, OmpProcBind::Master);
    }
}
