//! # omptune-core — the paper's primary contribution
//!
//! Reproduction of the tuning-study core of *"Evaluating Tuning
//! Opportunities of the LLVM/OpenMP Runtime"* (SC 2024):
//!
//! - [`arch`] — the three studied CPU architectures (Table I facts),
//! - [`envvar`] — typed models of the seven swept environment variables
//!   with the paper's value domains and exclusions (Sec. III),
//! - [`config`] — complete tuning configurations plus libomp's default
//!   derivation rules (proc-bind/places interaction, wait-policy
//!   derivation, reduction heuristic, per-arch alignment default),
//! - [`space`] — full-factorial configuration-space enumeration
//!   (9216 configs on x86, 4608 on A64FX per setting),
//! - [`analysis`] — the classification-surrogate influence analysis whose
//!   normalized logistic-regression coefficients form Figs. 2–4,
//! - [`report`] — speedup-range summaries (Tables V–VI, Sec. V Q1),
//! - [`recommend`] — best-configuration extraction (Table VII) and
//!   worst-trend screening (Sec. V Q4).
//!
//! The crate is deliberately independent of how samples are produced:
//! the sweep harness (`sweep` crate) feeds it [`analysis::AnalysisRecord`]s
//! from the simulator, but records could equally come from real libomp
//! runs parsed out of job logs.

pub mod analysis;
pub mod arch;
pub mod config;
pub mod diag;
pub mod envvar;
pub mod icv;
pub mod placement;
pub mod recommend;
pub mod report;
pub mod space;
pub mod tuner;

pub use analysis::{
    encode_env_feature, encode_env_features, influence_analysis, linear_fit_quality,
    AnalysisRecord, Feature, GroupBy, InfluenceHeatMap, InfluenceRow, LiveInfluence,
    OPTIMAL_SPEEDUP_THRESHOLD,
};
pub use arch::Arch;
pub use config::{EffectiveBind, PlanProjection, ReductionMethod, TuningConfig, WaitPolicy};
pub use diag::{Diagnostic, Severity};
pub use envvar::{
    KmpAlignAlloc, KmpBlocktime, KmpForceReduction, KmpLibrary, OmpPlaces, OmpProcBind, OmpSchedule,
};
pub use icv::IcvState;
pub use placement::Placement;
pub use recommend::{recommend_for, worst_trends, CellReport, Recommendation, WorstTrend};
pub use report::{
    app_arch_range, app_range, arch_summary, transfer_analysis, ArchSummary, SpeedupRange, Transfer,
};
pub use space::{ConfigSpace, TuningSpace};
pub use tuner::{
    hill_climb, hill_climb_informed, influence_order, random_search, telemetry_order, TuneResult,
    Variable,
};
