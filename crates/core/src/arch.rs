//! The three CPU architectures of the study (paper Table I).
//!
//! The architecture identity matters to the tuning study in three ways:
//! the value domain of `KMP_ALIGN_ALLOC` depends on the cache-line size,
//! the default of `KMP_ALIGN_ALLOC` *is* the cache-line size, and the
//! machine sizes (cores / sockets / NUMA nodes) bound `OMP_NUM_THREADS`
//! and shape the place lists.

use serde::{Deserialize, Serialize};

/// CPU architectures used in the paper's evaluation (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Arch {
    /// Fujitsu A64FX: 48 cores, 4 NUMA nodes, HBM, 256-byte cache lines.
    A64fx,
    /// Intel Xeon Gold 6148 (Skylake): 2 × 20 cores, 2 NUMA nodes, DDR4.
    Skylake,
    /// AMD EPYC 7643 (Milan): 2 × 48 cores, 8 NUMA nodes, DDR4.
    Milan,
}

impl Arch {
    /// All architectures, in the paper's presentation order.
    pub const ALL: [Arch; 3] = [Arch::A64fx, Arch::Skylake, Arch::Milan];

    /// Lower-case identifier used in dataset files (e.g. `a64fx-alignment-small`).
    pub fn id(self) -> &'static str {
        match self {
            Arch::A64fx => "a64fx",
            Arch::Skylake => "skylake",
            Arch::Milan => "milan",
        }
    }

    /// Human-readable name as written in Table I.
    pub fn display_name(self) -> &'static str {
        match self {
            Arch::A64fx => "Fujitsu A64FX",
            Arch::Skylake => "Intel Xeon Gold 6148 (Skylake)",
            Arch::Milan => "AMD EPYC 7643 (Milan)",
        }
    }

    /// Parse a dataset identifier.
    pub fn from_id(s: &str) -> Option<Arch> {
        match s {
            "a64fx" => Some(Arch::A64fx),
            "skylake" => Some(Arch::Skylake),
            "milan" => Some(Arch::Milan),
            _ => None,
        }
    }

    /// Total core count (Table I).
    pub fn cores(self) -> usize {
        match self {
            Arch::A64fx => 48,
            Arch::Skylake => 40,
            Arch::Milan => 96,
        }
    }

    /// Socket count. The A64FX is a single-package part (Table I lists "-").
    pub fn sockets(self) -> usize {
        match self {
            Arch::A64fx => 1,
            Arch::Skylake => 2,
            Arch::Milan => 2,
        }
    }

    /// NUMA node count (Table I; A64FX CMGs count as NUMA nodes).
    pub fn numa_nodes(self) -> usize {
        match self {
            Arch::A64fx => 4,
            Arch::Skylake => 2,
            Arch::Milan => 8,
        }
    }

    /// Number of last-level-cache groups. On A64FX the L2 is shared per
    /// CMG (4 groups); Skylake has one LLC per socket; Milan shares its L3
    /// per CCX (8-core complexes → 12 groups).
    pub fn ll_caches(self) -> usize {
        match self {
            Arch::A64fx => 4,
            Arch::Skylake => 2,
            Arch::Milan => 12,
        }
    }

    /// Cache-line size in bytes (Sec. III-7).
    pub fn cacheline(self) -> u32 {
        match self {
            Arch::A64fx => 256,
            Arch::Skylake | Arch::Milan => 64,
        }
    }

    /// Base clock frequency in GHz (Table I).
    pub fn clock_ghz(self) -> f64 {
        match self {
            Arch::A64fx => 1.8,
            Arch::Skylake => 2.4,
            Arch::Milan => 2.3,
        }
    }

    /// True when the main memory is on-package HBM (A64FX).
    pub fn has_hbm(self) -> bool {
        matches!(self, Arch::A64fx)
    }

    /// Cores per NUMA node.
    pub fn cores_per_numa(self) -> usize {
        self.cores() / self.numa_nodes()
    }
}

impl std::fmt::Display for Arch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_core_counts() {
        assert_eq!(Arch::A64fx.cores(), 48);
        assert_eq!(Arch::Skylake.cores(), 40);
        assert_eq!(Arch::Milan.cores(), 96);
    }

    #[test]
    fn table1_numa_counts() {
        assert_eq!(Arch::A64fx.numa_nodes(), 4);
        assert_eq!(Arch::Skylake.numa_nodes(), 2);
        assert_eq!(Arch::Milan.numa_nodes(), 8);
    }

    #[test]
    fn cachelines_match_section_iii() {
        assert_eq!(Arch::A64fx.cacheline(), 256);
        assert_eq!(Arch::Skylake.cacheline(), 64);
        assert_eq!(Arch::Milan.cacheline(), 64);
    }

    #[test]
    fn id_roundtrip() {
        for a in Arch::ALL {
            assert_eq!(Arch::from_id(a.id()), Some(a));
        }
        assert_eq!(Arch::from_id("power9"), None);
    }

    #[test]
    fn cores_divide_evenly_into_numa_nodes() {
        for a in Arch::ALL {
            assert_eq!(a.cores_per_numa() * a.numa_nodes(), a.cores());
        }
    }

    #[test]
    fn only_a64fx_has_hbm() {
        assert!(Arch::A64fx.has_hbm());
        assert!(!Arch::Skylake.has_hbm());
        assert!(!Arch::Milan.has_hbm());
    }
}
