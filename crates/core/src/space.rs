//! Full-factorial enumeration of the configuration search space.
//!
//! The paper's sweep explores the cross-product of all seven variables'
//! value domains (Sec. IV): on the x86 machines this is
//! 4 × 6 × 4 × 2 × 3 × 4 × 4 = **9216** configurations per
//! (application, setting) pair; on A64FX the smaller `KMP_ALIGN_ALLOC`
//! domain gives 4 × 6 × 4 × 2 × 3 × 4 × 2 = **4608**.
//!
//! Thread count is *not* part of the product — the paper varies either
//! thread count or input size per application, never both simultaneously
//! (Sec. IV-B) — so [`ConfigSpace`] is parameterized by a fixed
//! `num_threads` and the sweep harness instantiates one space per setting.

use crate::arch::Arch;
use crate::config::TuningConfig;
use crate::envvar::{
    KmpAlignAlloc, KmpBlocktime, KmpForceReduction, KmpLibrary, OmpPlaces, OmpProcBind, OmpSchedule,
};
use serde::{Deserialize, Serialize};

/// The full factorial space of tuning configurations for one architecture
/// and thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigSpace {
    pub arch: Arch,
    pub num_threads: usize,
}

impl ConfigSpace {
    /// Create a space for `arch` with a fixed thread count.
    ///
    /// # Panics
    /// Panics when `num_threads` is zero or exceeds the machine's cores —
    /// the study never oversubscribes.
    pub fn new(arch: Arch, num_threads: usize) -> ConfigSpace {
        assert!(num_threads >= 1, "need at least one thread");
        assert!(
            num_threads <= arch.cores(),
            "study does not oversubscribe: {} > {} cores",
            num_threads,
            arch.cores()
        );
        ConfigSpace { arch, num_threads }
    }

    /// Exact number of configurations in the space.
    pub fn len(&self) -> usize {
        OmpPlaces::ALL.len()
            * OmpProcBind::ALL.len()
            * OmpSchedule::ALL.len()
            * KmpLibrary::ALL.len()
            * KmpBlocktime::ALL.len()
            * KmpForceReduction::ALL.len()
            * KmpAlignAlloc::domain(self.arch).len()
    }

    /// Spaces are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterate over every configuration in a deterministic order
    /// (odometer order over the variable domains).
    pub fn iter(&self) -> ConfigIter {
        ConfigIter {
            space: *self,
            index: 0,
        }
    }

    /// The configuration at odometer position `index`.
    pub fn get(&self, index: usize) -> Option<TuningConfig> {
        if index >= self.len() {
            return None;
        }
        let aligns = KmpAlignAlloc::domain(self.arch);
        let mut i = index;
        let align = aligns[i % aligns.len()];
        i /= aligns.len();
        let red = KmpForceReduction::ALL[i % KmpForceReduction::ALL.len()];
        i /= KmpForceReduction::ALL.len();
        let bt = KmpBlocktime::ALL[i % KmpBlocktime::ALL.len()];
        i /= KmpBlocktime::ALL.len();
        let lib = KmpLibrary::ALL[i % KmpLibrary::ALL.len()];
        i /= KmpLibrary::ALL.len();
        let sched = OmpSchedule::ALL[i % OmpSchedule::ALL.len()];
        i /= OmpSchedule::ALL.len();
        let bind = OmpProcBind::ALL[i % OmpProcBind::ALL.len()];
        i /= OmpProcBind::ALL.len();
        let places = OmpPlaces::ALL[i];
        Some(TuningConfig {
            places,
            proc_bind: bind,
            schedule: sched,
            library: lib,
            blocktime: bt,
            force_reduction: red,
            align_alloc: align,
            num_threads: self.num_threads,
        })
    }

    /// Odometer position of `config`, the inverse of [`ConfigSpace::get`].
    /// `None` if the config does not belong to this space (wrong thread
    /// count or an alignment outside this arch's domain).
    pub fn index_of(&self, config: &TuningConfig) -> Option<usize> {
        if config.num_threads != self.num_threads {
            return None;
        }
        let aligns = KmpAlignAlloc::domain(self.arch);
        let pos = |x: usize, stride: usize| x * stride;
        let a = aligns.iter().position(|v| *v == config.align_alloc)?;
        let r = KmpForceReduction::ALL
            .iter()
            .position(|v| *v == config.force_reduction)?;
        let b = KmpBlocktime::ALL
            .iter()
            .position(|v| *v == config.blocktime)?;
        let l = KmpLibrary::ALL.iter().position(|v| *v == config.library)?;
        let s = OmpSchedule::ALL
            .iter()
            .position(|v| *v == config.schedule)?;
        let p = OmpProcBind::ALL
            .iter()
            .position(|v| *v == config.proc_bind)?;
        let pl = OmpPlaces::ALL.iter().position(|v| *v == config.places)?;
        let mut stride = 1;
        let mut idx = pos(a, stride);
        stride *= aligns.len();
        idx += pos(r, stride);
        stride *= KmpForceReduction::ALL.len();
        idx += pos(b, stride);
        stride *= KmpBlocktime::ALL.len();
        idx += pos(l, stride);
        stride *= KmpLibrary::ALL.len();
        idx += pos(s, stride);
        stride *= OmpSchedule::ALL.len();
        idx += pos(p, stride);
        stride *= OmpProcBind::ALL.len();
        idx += pos(pl, stride);
        Some(idx)
    }

    /// The default configuration within this space.
    pub fn default_config(&self) -> TuningConfig {
        TuningConfig::default_for(self.arch, self.num_threads)
    }
}

/// Iterator over a [`ConfigSpace`] in odometer order.
#[derive(Debug, Clone)]
pub struct ConfigIter {
    space: ConfigSpace,
    index: usize,
}

impl Iterator for ConfigIter {
    type Item = TuningConfig;

    fn next(&mut self) -> Option<TuningConfig> {
        let c = self.space.get(self.index)?;
        self.index += 1;
        Some(c)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.space.len().saturating_sub(self.index);
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for ConfigIter {}

/// A pruned subset of a [`ConfigSpace`]: the configurations a linter (or
/// any other filter) kept, identified by their odometer indices in the
/// full space. Sweeps over a `TuningSpace` therefore stay reproducible —
/// each sample's identity is still its full-space index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningSpace {
    arch: Arch,
    num_threads: usize,
    /// Sorted, deduplicated odometer indices into the full space.
    indices: Vec<usize>,
}

impl TuningSpace {
    /// Build from a set of surviving full-space indices. Indices are
    /// sorted and deduplicated; out-of-range indices panic (they indicate
    /// a bug in the producer, not bad data).
    pub fn new(space: ConfigSpace, mut indices: Vec<usize>) -> TuningSpace {
        indices.sort_unstable();
        indices.dedup();
        if let Some(&max) = indices.last() {
            assert!(
                max < space.len(),
                "index {max} outside the {}-point space",
                space.len()
            );
        }
        TuningSpace {
            arch: space.arch,
            num_threads: space.num_threads,
            indices,
        }
    }

    /// The unpruned space (every index kept).
    pub fn full(space: ConfigSpace) -> TuningSpace {
        TuningSpace::new(space, (0..space.len()).collect())
    }

    /// The full-factorial space this prunes.
    pub fn space(&self) -> ConfigSpace {
        ConfigSpace {
            arch: self.arch,
            num_threads: self.num_threads,
        }
    }

    pub fn arch(&self) -> Arch {
        self.arch
    }

    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Number of surviving configurations.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Surviving full-space indices, ascending.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Whether a full-space index survived pruning.
    pub fn contains_index(&self, index: usize) -> bool {
        self.indices.binary_search(&index).is_ok()
    }

    /// The `i`-th surviving configuration (in full-space order).
    pub fn get(&self, i: usize) -> Option<TuningConfig> {
        self.space().get(*self.indices.get(i)?)
    }

    /// Iterate the surviving configurations in full-space order.
    pub fn iter(&self) -> impl Iterator<Item = TuningConfig> + '_ {
        let space = self.space();
        self.indices.iter().map(move |&i| {
            space
                .get(i)
                .expect("TuningSpace index validated at construction")
        })
    }

    /// Fraction of the full space that survived, in `[0, 1]`.
    pub fn keep_ratio(&self) -> f64 {
        self.indices.len() as f64 / self.space().len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn space_sizes_match_paper() {
        assert_eq!(ConfigSpace::new(Arch::Skylake, 40).len(), 9216);
        assert_eq!(ConfigSpace::new(Arch::Milan, 96).len(), 9216);
        assert_eq!(ConfigSpace::new(Arch::A64fx, 48).len(), 4608);
    }

    #[test]
    fn iterator_yields_len_unique_configs() {
        let space = ConfigSpace::new(Arch::A64fx, 48);
        let all: Vec<_> = space.iter().collect();
        assert_eq!(all.len(), space.len());
        let unique: HashSet<_> = all.iter().collect();
        assert_eq!(unique.len(), space.len());
    }

    #[test]
    fn get_index_roundtrip() {
        let space = ConfigSpace::new(Arch::Milan, 96);
        for idx in [0, 1, 17, 1000, 9215] {
            let c = space.get(idx).unwrap();
            assert_eq!(space.index_of(&c), Some(idx));
        }
        assert!(space.get(9216).is_none());
    }

    #[test]
    fn default_config_is_in_space() {
        for arch in Arch::ALL {
            let space = ConfigSpace::new(arch, arch.cores());
            let d = space.default_config();
            assert!(space.index_of(&d).is_some());
        }
    }

    #[test]
    fn wrong_thread_count_not_in_space() {
        let space = ConfigSpace::new(Arch::Milan, 96);
        let c = TuningConfig::default_for(Arch::Milan, 48);
        assert_eq!(space.index_of(&c), None);
    }

    #[test]
    #[should_panic(expected = "oversubscribe")]
    fn oversubscription_rejected() {
        let _ = ConfigSpace::new(Arch::Skylake, 41);
    }

    #[test]
    fn exact_size_iterator() {
        let space = ConfigSpace::new(Arch::A64fx, 16);
        let mut it = space.iter();
        assert_eq!(it.len(), 4608);
        it.next();
        assert_eq!(it.len(), 4607);
    }

    #[test]
    fn tuning_space_sorts_and_dedups() {
        let space = ConfigSpace::new(Arch::A64fx, 8);
        let t = TuningSpace::new(space, vec![7, 3, 3, 0, 7]);
        assert_eq!(t.indices(), &[0, 3, 7]);
        assert_eq!(t.len(), 3);
        assert!(t.contains_index(3));
        assert!(!t.contains_index(4));
        assert_eq!(t.get(1), space.get(3));
    }

    #[test]
    fn tuning_space_full_keeps_everything() {
        let space = ConfigSpace::new(Arch::Skylake, 4);
        let t = TuningSpace::full(space);
        assert_eq!(t.len(), space.len());
        assert_eq!(t.keep_ratio(), 1.0);
        assert_eq!(t.iter().count(), space.len());
        assert_eq!(t.space(), space);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn tuning_space_rejects_out_of_range() {
        let space = ConfigSpace::new(Arch::A64fx, 8);
        let _ = TuningSpace::new(space, vec![4608]);
    }
}
