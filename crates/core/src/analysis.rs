//! The paper's analysis pipeline (Sec. IV-D): classification surrogate +
//! logistic-regression coefficient magnitudes as feature influence.
//!
//! Samples are labelled *optimal* when their speedup over the default
//! configuration exceeds 1.01 (at least 1 % improvement). Features are
//! encoded with a naive numeric scheme, standardized, and a logistic model
//! is fit per data group. The weight-normalized absolute coefficients form
//! the influence heat maps of Figs. 2–4.

use crate::arch::Arch;
use crate::config::TuningConfig;
use crate::envvar::{
    KmpBlocktime, KmpForceReduction, KmpLibrary, OmpPlaces, OmpProcBind, OmpSchedule,
};
use mlstats::logreg::{accuracy, fit_logistic, LogRegError, LogisticOptions};
use mlstats::StandardScaler;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The speedup threshold above which a sample counts as "optimal"
/// (Sec. IV-D: at least 1 % improvement).
pub const OPTIMAL_SPEEDUP_THRESHOLD: f64 = 1.01;

/// One processed sample: the sweep's tabular-row representation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisRecord {
    pub arch: Arch,
    /// Application name, e.g. `"alignment"`, `"cg"`.
    pub app: String,
    /// Numeric input-size code (0 = smallest class).
    pub input_size: f64,
    pub config: TuningConfig,
    /// Runtime relative to the default configuration of the same setting.
    pub speedup: f64,
}

impl AnalysisRecord {
    /// The classification label of Sec. IV-D.
    pub fn is_optimal(&self) -> bool {
        self.speedup > OPTIMAL_SPEEDUP_THRESHOLD
    }
}

/// The paper's three grouping strategies (Sec. IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GroupBy {
    /// One model per application, samples pooled across architectures —
    /// Fig. 2. Architecture is a feature.
    Application,
    /// One model per architecture, samples pooled across applications —
    /// Fig. 3. Application is a feature.
    Architecture,
    /// One model per (architecture, application) pair — Fig. 4.
    ArchApplication,
}

/// Feature columns used by the influence analysis, in presentation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Feature {
    Architecture,
    Application,
    InputSize,
    NumThreads,
    Places,
    ProcBind,
    Schedule,
    Library,
    Blocktime,
    ForceReduction,
    AlignAlloc,
}

impl Feature {
    /// Column header as printed in the heat maps.
    pub fn name(self) -> &'static str {
        match self {
            Feature::Architecture => "Architecture",
            Feature::Application => "Application",
            Feature::InputSize => "Input Size",
            Feature::NumThreads => "OMP_NUM_THREADS",
            Feature::Places => "OMP_PLACES",
            Feature::ProcBind => "OMP_PROC_BIND",
            Feature::Schedule => "OMP_SCHEDULE",
            Feature::Library => "KMP_LIBRARY",
            Feature::Blocktime => "KMP_BLOCKTIME",
            Feature::ForceReduction => "KMP_FORCE_REDUCTION",
            Feature::AlignAlloc => "KMP_ALIGN_ALLOC",
        }
    }

    /// The environment-variable features common to every grouping.
    pub const ENV_FEATURES: [Feature; 7] = [
        Feature::Places,
        Feature::ProcBind,
        Feature::Schedule,
        Feature::Library,
        Feature::Blocktime,
        Feature::ForceReduction,
        Feature::AlignAlloc,
    ];

    /// The feature columns used for a grouping strategy. The grouped-over
    /// identity is excluded; everything else (including the setting axes)
    /// is included, matching Figs. 2–4's column sets.
    pub fn columns(group_by: GroupBy) -> Vec<Feature> {
        let mut cols = Vec::with_capacity(11);
        match group_by {
            GroupBy::Application => cols.push(Feature::Architecture),
            GroupBy::Architecture => cols.push(Feature::Application),
            GroupBy::ArchApplication => {}
        }
        cols.push(Feature::InputSize);
        cols.push(Feature::NumThreads);
        cols.extend(Feature::ENV_FEATURES);
        cols
    }
}

/// Naive numeric encoding of one environment-variable feature of a
/// configuration — the per-column scheme shared by the batch analysis
/// and the streaming [`LiveInfluence`] tracker. Panics on a non-env
/// feature (those need record context).
///
/// Categorical levels are coded in increasing binding
/// strength/granularity so the linear model can express the monotone
/// part of their effect (the "naive numeric scheme").
pub fn encode_env_feature(config: &TuningConfig, feature: Feature) -> f64 {
    match feature {
        Feature::Places => match config.places {
            OmpPlaces::Unset => 0.0,
            OmpPlaces::Sockets => 1.0,
            OmpPlaces::LlCaches => 2.0,
            OmpPlaces::Cores => 3.0,
        },
        Feature::ProcBind => match config.proc_bind {
            OmpProcBind::Master => 0.0,
            OmpProcBind::False => 1.0,
            OmpProcBind::Unset => 2.0,
            OmpProcBind::True => 3.0,
            OmpProcBind::Close => 4.0,
            OmpProcBind::Spread => 5.0,
        },
        Feature::Schedule => OmpSchedule::ALL
            .iter()
            .position(|v| *v == config.schedule)
            .expect("schedule in domain") as f64,
        Feature::Library => match config.library {
            KmpLibrary::Throughput => 0.0,
            KmpLibrary::Turnaround => 1.0,
        },
        Feature::Blocktime => KmpBlocktime::ALL
            .iter()
            .position(|v| *v == config.blocktime)
            .expect("blocktime in domain") as f64,
        Feature::ForceReduction => KmpForceReduction::ALL
            .iter()
            .position(|v| *v == config.force_reduction)
            .expect("reduction in domain") as f64,
        Feature::AlignAlloc => (config.align_alloc.bytes() as f64).log2(),
        other => panic!("{other:?} is not an environment-variable feature"),
    }
}

/// The seven env-var feature encodings of one configuration, in
/// [`Feature::ENV_FEATURES`] order.
pub fn encode_env_features(config: &TuningConfig) -> Vec<f64> {
    Feature::ENV_FEATURES
        .iter()
        .map(|f| encode_env_feature(config, *f))
        .collect()
}

/// Naive numeric encoding of one record into the feature columns
/// (Sec. IV-D: "This encoding is a naive numeric scheme").
fn encode_record(
    rec: &AnalysisRecord,
    cols: &[Feature],
    app_codes: &BTreeMap<String, usize>,
) -> Vec<f64> {
    cols.iter()
        .map(|f| match f {
            Feature::Architecture => match rec.arch {
                Arch::A64fx => 0.0,
                Arch::Skylake => 1.0,
                Arch::Milan => 2.0,
            },
            Feature::Application => app_codes[&rec.app] as f64,
            Feature::InputSize => rec.input_size,
            Feature::NumThreads => rec.config.num_threads as f64,
            env => encode_env_feature(&rec.config, *env),
        })
        .collect()
}

/// Streaming influence over the seven environment variables: every
/// observed `(config, speedup)` pair is encoded with the batch
/// analysis's numeric scheme, z-scored against *running* moments, and
/// fed to an [`mlstats::OnlineLogistic`] — so a live sweep can expose a
/// continuously updated influence ranking long before the dataset is
/// complete. Exposition-only: results never feed back into the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveInfluence {
    model: mlstats::OnlineLogistic,
    /// Running mean per feature (Welford).
    mean: Vec<f64>,
    /// Running sum of squared deviations per feature (Welford M2).
    m2: Vec<f64>,
    observed: u64,
    optimal: u64,
}

impl Default for LiveInfluence {
    fn default() -> Self {
        LiveInfluence::new()
    }
}

impl LiveInfluence {
    pub fn new() -> LiveInfluence {
        let d = Feature::ENV_FEATURES.len();
        LiveInfluence {
            model: mlstats::OnlineLogistic::new(d),
            mean: vec![0.0; d],
            m2: vec![0.0; d],
            observed: 0,
            optimal: 0,
        }
    }

    /// Observe one sample's configuration and speedup over the default.
    /// Non-finite speedups (failure-injected samples) are skipped.
    pub fn observe(&mut self, config: &TuningConfig, speedup: f64) {
        if !speedup.is_finite() {
            return;
        }
        let x = encode_env_features(config);
        self.observed += 1;
        let y = speedup > OPTIMAL_SPEEDUP_THRESHOLD;
        if y {
            self.optimal += 1;
        }
        let n = self.observed as f64;
        let mut z = vec![0.0; x.len()];
        for i in 0..x.len() {
            let delta = x[i] - self.mean[i];
            self.mean[i] += delta / n;
            self.m2[i] += delta * (x[i] - self.mean[i]);
            let std = (self.m2[i] / n).sqrt();
            z[i] = if std > 1e-12 {
                (x[i] - self.mean[i]) / std
            } else {
                0.0
            };
        }
        self.model.observe(&z, y);
    }

    /// Samples observed (finite speedups only).
    pub fn samples(&self) -> u64 {
        self.observed
    }

    /// Fraction of observed samples labelled optimal.
    pub fn optimal_fraction(&self) -> f64 {
        if self.observed == 0 {
            0.0
        } else {
            self.optimal as f64 / self.observed as f64
        }
    }

    /// Current influence per env feature, in [`Feature::ENV_FEATURES`]
    /// order. Sums to 1 once any signal exists (all-zero before).
    pub fn influence(&self) -> Vec<(Feature, f64)> {
        Feature::ENV_FEATURES
            .iter()
            .copied()
            .zip(self.model.normalized_influence())
            .collect()
    }

    /// The feature with the largest current influence (`None` before
    /// any signal), ties broken by presentation order.
    pub fn top(&self) -> Option<Feature> {
        let infl = self.influence();
        let (f, v) = infl
            .iter()
            .copied()
            .max_by(|a, b| a.1.total_cmp(&b.1).then(std::cmp::Ordering::Greater))?;
        (v > 0.0).then_some(f)
    }

    /// The `/influence` JSON document: sample counts plus the current
    /// per-variable influence map and top variable.
    pub fn json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"samples\":{},\"optimal_fraction\":{:.6},\"influence\":{{",
            self.observed,
            self.optimal_fraction()
        ));
        for (i, (f, v)) in self.influence().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{:.6}", f.name(), v));
        }
        out.push_str("},\"top\":");
        match self.top() {
            Some(f) => out.push_str(&format!("\"{}\"", f.name())),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }
}

/// One row of an influence heat map: a group and its per-feature influence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InfluenceRow {
    /// Group label, e.g. `"alignment"`, `"milan"`, `"milan/cg"`.
    pub group: String,
    /// Weight-normalized |coefficient| per feature column; sums to 1.
    pub influence: Vec<f64>,
    /// Training accuracy of the group's logistic model.
    pub accuracy: f64,
    /// Number of samples in the group.
    pub n_samples: usize,
    /// Fraction of optimal samples in the group.
    pub optimal_fraction: f64,
}

/// A complete influence heat map (one of Figs. 2–4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InfluenceHeatMap {
    pub group_by: GroupBy,
    /// Feature column headers.
    pub features: Vec<Feature>,
    pub rows: Vec<InfluenceRow>,
}

impl InfluenceHeatMap {
    /// Look up a row by group label.
    pub fn row(&self, group: &str) -> Option<&InfluenceRow> {
        self.rows.iter().find(|r| r.group == group)
    }

    /// Influence of `feature` in `group`, if both exist.
    pub fn influence_of(&self, group: &str, feature: Feature) -> Option<f64> {
        let col = self.features.iter().position(|f| *f == feature)?;
        Some(self.row(group)?.influence[col])
    }

    /// Render as a shaded text table: darker glyphs = larger influence,
    /// mirroring the paper's "darker shades imply larger influence".
    pub fn render_text(&self) -> String {
        let shade = |v: f64| -> char {
            match v {
                v if v >= 0.30 => '█',
                v if v >= 0.20 => '▓',
                v if v >= 0.10 => '▒',
                v if v >= 0.03 => '░',
                _ => '·',
            }
        };
        let mut out = String::new();
        let label_w = self
            .rows
            .iter()
            .map(|r| r.group.len())
            .chain(std::iter::once(5))
            .max()
            .unwrap_or(5);
        out.push_str(&format!("{:label_w$}", ""));
        for f in &self.features {
            out.push_str(&format!(" {:>19}", f.name()));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("{:label_w$}", row.group));
            for v in &row.influence {
                out.push_str(&format!(" {:>12.3} {}     ", v, shade(*v)));
            }
            out.push('\n');
        }
        out
    }
}

/// Errors from [`influence_analysis`].
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// No records supplied.
    NoData,
    /// Every group failed to produce a model (e.g. single-class labels).
    NoUsableGroups,
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisError::NoData => write!(f, "no analysis records"),
            AnalysisError::NoUsableGroups => write!(f, "no group produced a usable model"),
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Fit an ordinary linear regression of the *continuous* speedup on the
/// encoded features, per group — the paper's first attempt (Sec. IV-D),
/// kept to demonstrate why it fails: returns each group's R².
///
/// "The distribution of points … indicates that our data does not satisfy
/// the requirements for fitting a linear regression model. This is
/// experimentally observed with low confidence scores associated with
/// poor model fitting." The classification surrogate
/// ([`influence_analysis`]) is the remedy.
pub fn linear_fit_quality(
    records: &[AnalysisRecord],
    group_by: GroupBy,
) -> Result<Vec<(String, f64)>, AnalysisError> {
    if records.is_empty() {
        return Err(AnalysisError::NoData);
    }
    let mut app_codes = BTreeMap::new();
    for r in records {
        let next = app_codes.len();
        app_codes.entry(r.app.clone()).or_insert(next);
    }
    let mut groups: BTreeMap<String, Vec<&AnalysisRecord>> = BTreeMap::new();
    for r in records {
        let key = match group_by {
            GroupBy::Application => r.app.clone(),
            GroupBy::Architecture => r.arch.id().to_string(),
            GroupBy::ArchApplication => format!("{}/{}", r.arch.id(), r.app),
        };
        groups.entry(key).or_default().push(r);
    }
    let cols = Feature::columns(group_by);
    let mut out = Vec::new();
    for (group, recs) in groups {
        let xs: Vec<Vec<f64>> = recs
            .iter()
            .map(|r| encode_record(r, &cols, &app_codes))
            .collect();
        let y: Vec<f64> = recs.iter().map(|r| r.speedup).collect();
        let (_, xs_std) = StandardScaler::fit_transform(&xs);
        if let Ok(model) = mlstats::fit_linear(&xs_std, &y) {
            out.push((group, model.r2));
        }
    }
    if out.is_empty() {
        return Err(AnalysisError::NoUsableGroups);
    }
    Ok(out)
}

/// Run the paper's influence analysis over `records` with the given
/// grouping strategy. Groups whose labels are single-class (no optimal
/// sample, or everything optimal) are skipped, like degenerate groups in
/// the paper (e.g. Sort/Strassen showing "no reliance" where data is
/// missing).
pub fn influence_analysis(
    records: &[AnalysisRecord],
    group_by: GroupBy,
) -> Result<InfluenceHeatMap, AnalysisError> {
    if records.is_empty() {
        return Err(AnalysisError::NoData);
    }
    // Stable application codes across the whole dataset.
    let mut app_codes = BTreeMap::new();
    for r in records {
        let next = app_codes.len();
        app_codes.entry(r.app.clone()).or_insert(next);
    }

    // Partition into groups.
    let mut groups: BTreeMap<String, Vec<&AnalysisRecord>> = BTreeMap::new();
    for r in records {
        let key = match group_by {
            GroupBy::Application => r.app.clone(),
            GroupBy::Architecture => r.arch.id().to_string(),
            GroupBy::ArchApplication => format!("{}/{}", r.arch.id(), r.app),
        };
        groups.entry(key).or_default().push(r);
    }

    let cols = Feature::columns(group_by);
    let mut rows = Vec::new();
    for (group, recs) in groups {
        let xs: Vec<Vec<f64>> = recs
            .iter()
            .map(|r| encode_record(r, &cols, &app_codes))
            .collect();
        let y: Vec<bool> = recs.iter().map(|r| r.is_optimal()).collect();
        let n_samples = recs.len();
        let optimal_fraction = y.iter().filter(|b| **b).count() as f64 / n_samples as f64;

        let (_, xs_std) = StandardScaler::fit_transform(&xs);
        match fit_logistic(&xs_std, &y, LogisticOptions::default()) {
            Ok(model) => {
                rows.push(InfluenceRow {
                    group,
                    accuracy: accuracy(&model, &xs_std, &y),
                    influence: model.normalized_influence(),
                    n_samples,
                    optimal_fraction,
                });
            }
            Err(LogRegError::SingleClass) => {
                // Degenerate group: report zero influence everywhere.
                rows.push(InfluenceRow {
                    group,
                    accuracy: 1.0,
                    influence: vec![0.0; cols.len()],
                    n_samples,
                    optimal_fraction,
                });
            }
            Err(LogRegError::BadShape) => {}
        }
    }
    if rows.is_empty() {
        return Err(AnalysisError::NoUsableGroups);
    }
    Ok(InfluenceHeatMap {
        group_by,
        features: cols,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ConfigSpace;

    /// Synthetic records where only KMP_LIBRARY matters: turnaround is
    /// always optimal, throughput never.
    fn library_dominated_records() -> Vec<AnalysisRecord> {
        let space = ConfigSpace::new(Arch::Milan, 48);
        space
            .iter()
            .step_by(7)
            .map(|config| AnalysisRecord {
                arch: Arch::Milan,
                app: "nqueens".into(),
                input_size: 0.0,
                speedup: if config.library == KmpLibrary::Turnaround {
                    2.5
                } else {
                    1.0
                },
                config,
            })
            .collect()
    }

    #[test]
    fn optimal_label_threshold() {
        let mut r = AnalysisRecord {
            arch: Arch::A64fx,
            app: "cg".into(),
            input_size: 0.0,
            config: TuningConfig::default_for(Arch::A64fx, 48),
            speedup: 1.0,
        };
        assert!(!r.is_optimal());
        r.speedup = 1.011;
        assert!(r.is_optimal());
        r.speedup = 1.01;
        assert!(!r.is_optimal());
    }

    #[test]
    fn dominant_feature_gets_dominant_influence() {
        let records = library_dominated_records();
        let hm = influence_analysis(&records, GroupBy::Application).unwrap();
        let infl = hm.influence_of("nqueens", Feature::Library).unwrap();
        assert!(infl > 0.5, "library influence = {infl}");
        let row = hm.row("nqueens").unwrap();
        assert!(row.accuracy > 0.95);
    }

    #[test]
    fn grouping_by_architecture_uses_application_feature() {
        let cols = Feature::columns(GroupBy::Architecture);
        assert!(cols.contains(&Feature::Application));
        assert!(!cols.contains(&Feature::Architecture));
        let cols = Feature::columns(GroupBy::Application);
        assert!(cols.contains(&Feature::Architecture));
        assert!(!cols.contains(&Feature::Application));
        let cols = Feature::columns(GroupBy::ArchApplication);
        assert!(!cols.contains(&Feature::Application));
        assert!(!cols.contains(&Feature::Architecture));
    }

    #[test]
    fn env_encoding_matches_batch_scheme() {
        let space = ConfigSpace::new(Arch::Milan, 48);
        let app_codes: BTreeMap<String, usize> = [("cg".to_string(), 0)].into_iter().collect();
        for config in space.iter().step_by(997) {
            let rec = AnalysisRecord {
                arch: Arch::Milan,
                app: "cg".into(),
                input_size: 0.0,
                speedup: 1.0,
                config,
            };
            let batch = encode_record(&rec, &Feature::ENV_FEATURES, &app_codes);
            let live = encode_env_features(&rec.config);
            assert_eq!(batch, live);
        }
    }

    #[test]
    fn live_influence_finds_the_dominant_variable() {
        let mut live = LiveInfluence::new();
        // Three passes so the online learner converges like the batch
        // IRLS fitter does; library fully determines the label.
        for _ in 0..3 {
            for rec in library_dominated_records() {
                live.observe(&rec.config, rec.speedup);
            }
        }
        assert_eq!(live.top(), Some(Feature::Library));
        let infl = live.influence();
        let library = infl
            .iter()
            .find(|(f, _)| *f == Feature::Library)
            .map(|(_, v)| *v)
            .unwrap();
        assert!(library > 0.5, "library influence = {library}");
        let total: f64 = infl.iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn live_influence_skips_non_finite_speedups() {
        let mut live = LiveInfluence::new();
        let config = TuningConfig::default_for(Arch::Milan, 48);
        live.observe(&config, f64::NAN);
        live.observe(&config, f64::INFINITY);
        assert_eq!(live.samples(), 0);
        assert_eq!(live.top(), None);
        live.observe(&config, 2.0);
        assert_eq!(live.samples(), 1);
        assert_eq!(live.optimal_fraction(), 1.0);
    }

    #[test]
    fn live_influence_is_deterministic_and_serializes() {
        let feed = library_dominated_records();
        let mut a = LiveInfluence::new();
        let mut b = LiveInfluence::new();
        for rec in &feed {
            a.observe(&rec.config, rec.speedup);
            b.observe(&rec.config, rec.speedup);
        }
        assert_eq!(a, b);
        let doc = a.json();
        assert!(doc.starts_with('{') && doc.ends_with('}'));
        assert!(doc.contains("\"samples\":"));
        assert!(doc.contains("\"KMP_LIBRARY\":"));
        assert!(doc.contains("\"top\":"));
    }

    #[test]
    fn single_class_group_reports_zero_influence() {
        // All sub-optimal: no separation boundary exists.
        let space = ConfigSpace::new(Arch::A64fx, 48);
        let records: Vec<AnalysisRecord> = space
            .iter()
            .take(100)
            .map(|config| AnalysisRecord {
                arch: Arch::A64fx,
                app: "strassen".into(),
                input_size: 0.0,
                config,
                speedup: 1.0,
            })
            .collect();
        let hm = influence_analysis(&records, GroupBy::Application).unwrap();
        let row = hm.row("strassen").unwrap();
        assert!(row.influence.iter().all(|v| *v == 0.0));
        assert_eq!(row.optimal_fraction, 0.0);
    }

    #[test]
    fn empty_input_is_error() {
        assert_eq!(
            influence_analysis(&[], GroupBy::Application),
            Err(AnalysisError::NoData)
        );
    }

    #[test]
    fn arch_application_grouping_makes_joint_keys() {
        let mut records = library_dominated_records();
        for r in &mut records[..50] {
            r.arch = Arch::Skylake;
        }
        let hm = influence_analysis(&records, GroupBy::ArchApplication).unwrap();
        assert!(hm.row("milan/nqueens").is_some());
        assert!(hm.row("skylake/nqueens").is_some());
    }

    #[test]
    fn render_text_contains_headers_and_groups() {
        let records = library_dominated_records();
        let hm = influence_analysis(&records, GroupBy::Application).unwrap();
        let text = hm.render_text();
        assert!(text.contains("KMP_LIBRARY"));
        assert!(text.contains("nqueens"));
    }

    #[test]
    fn influence_rows_sum_to_one_or_zero() {
        let records = library_dominated_records();
        let hm = influence_analysis(&records, GroupBy::Application).unwrap();
        for row in &hm.rows {
            let s: f64 = row.influence.iter().sum();
            assert!((s - 1.0).abs() < 1e-9 || s == 0.0, "sum={s}");
        }
    }
}
