//! Internal Control Variables (ICVs).
//!
//! The OpenMP specification defines runtime behaviour in terms of ICVs;
//! environment variables are just one way to initialize them (paper
//! Sec. I: "these methods influence the value of Internal Control
//! Variables (ICVs) which control different aspects of the OpenMP
//! runtime"). [`IcvState`] is the resolved snapshot a device would hold
//! after consuming a [`TuningConfig`] — the standardized ICVs the paper
//! names plus the implementation-defined extensions the study adds.

use crate::arch::Arch;
use crate::config::{EffectiveBind, ReductionMethod, TuningConfig, WaitPolicy};
use crate::envvar::OmpSchedule;
use crate::placement::Placement;
use serde::{Deserialize, Serialize};

/// A resolved ICV snapshot for one device/team.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IcvState {
    /// `nthreads-var`: team size for the next parallel region.
    pub nthreads: usize,
    /// `run-sched-var`: schedule used by `schedule(runtime)` loops.
    pub run_sched: OmpSchedule,
    /// `bind-var`: the binding policy actually in force (after the
    /// places/bind default interaction of Sec. III-2).
    pub bind: EffectiveBind,
    /// `place-partition-var`: the resolved thread → place assignment.
    pub place_partition: Placement,
    /// `wait-policy-var`: derived from `KMP_BLOCKTIME` × `KMP_LIBRARY`.
    pub wait_policy: WaitPolicy,
    /// Implementation-defined: the reduction method in force.
    pub reduction_method: ReductionMethod,
    /// Implementation-defined: internal allocation alignment in bytes.
    pub align_alloc: u32,
}

impl IcvState {
    /// Resolve the ICVs a fresh device would derive from `config` on
    /// `arch`.
    pub fn resolve(arch: Arch, config: &TuningConfig) -> IcvState {
        IcvState {
            nthreads: config.num_threads,
            run_sched: config.schedule,
            bind: config.effective_bind(),
            place_partition: Placement::compute(arch, config),
            wait_policy: config.wait_policy(),
            reduction_method: config.reduction_method(),
            align_alloc: config.align_alloc.bytes(),
        }
    }

    /// Number of places in the partition (0 when unbound).
    pub fn place_count(&self) -> usize {
        match &self.place_partition {
            Placement::Unbound => 0,
            Placement::Bound { n_places, .. } => *n_places,
        }
    }

    /// Render as the `OMP_DISPLAY_ENV`-style block libomp prints.
    pub fn display_env(&self) -> String {
        format!(
            "OPENMP DISPLAY ENVIRONMENT BEGIN\n\
             \x20 _OPENMP = '201811'\n\
             \x20 [host] OMP_NUM_THREADS = '{}'\n\
             \x20 [host] OMP_SCHEDULE = '{}'\n\
             \x20 [host] OMP_PROC_BIND (effective) = '{:?}'\n\
             \x20 [host] OMP_PLACES (count) = '{}'\n\
             \x20 [host] wait policy = '{:?}'\n\
             \x20 [host] reduction method = '{:?}'\n\
             \x20 [host] KMP_ALIGN_ALLOC = '{}'\n\
             OPENMP DISPLAY ENVIRONMENT END\n",
            self.nthreads,
            self.run_sched.env_value(),
            self.bind,
            self.place_count(),
            self.wait_policy,
            self.reduction_method,
            self.align_alloc,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envvar::{KmpBlocktime, KmpLibrary, OmpPlaces, OmpProcBind};

    #[test]
    fn default_icvs_match_section_iii() {
        let c = TuningConfig::default_for(Arch::Skylake, 40);
        let icv = IcvState::resolve(Arch::Skylake, &c);
        assert_eq!(icv.nthreads, 40);
        assert_eq!(icv.run_sched, OmpSchedule::Static);
        assert_eq!(icv.bind, EffectiveBind::None);
        assert_eq!(icv.place_count(), 0);
        assert_eq!(
            icv.wait_policy,
            WaitPolicy::SpinThenSleep {
                millis: 200,
                yielding: true
            }
        );
        assert_eq!(icv.reduction_method, ReductionMethod::Tree);
        assert_eq!(icv.align_alloc, 64);
    }

    #[test]
    fn places_set_resolves_spread_partition() {
        let mut c = TuningConfig::default_for(Arch::Milan, 96);
        c.places = OmpPlaces::Sockets;
        let icv = IcvState::resolve(Arch::Milan, &c);
        assert_eq!(icv.bind, EffectiveBind::Spread);
        assert_eq!(icv.place_count(), 2);
    }

    #[test]
    fn turnaround_infinite_is_hard_spin() {
        let mut c = TuningConfig::default_for(Arch::A64fx, 48);
        c.library = KmpLibrary::Turnaround;
        c.blocktime = KmpBlocktime::Infinite;
        c.proc_bind = OmpProcBind::Close;
        let icv = IcvState::resolve(Arch::A64fx, &c);
        assert_eq!(icv.wait_policy, WaitPolicy::Active { yielding: false });
        assert_eq!(icv.bind, EffectiveBind::Close);
    }

    #[test]
    fn display_env_mentions_every_icv() {
        let c = TuningConfig::default_for(Arch::A64fx, 48);
        let text = IcvState::resolve(Arch::A64fx, &c).display_env();
        for needle in [
            "OMP_NUM_THREADS = '48'",
            "OMP_SCHEDULE = 'static'",
            "KMP_ALIGN_ALLOC = '256'",
            "ENVIRONMENT BEGIN",
            "ENVIRONMENT END",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}
