//! Discrete search-space autotuners (paper Sec. VI).
//!
//! The paper's concluding discussion proposes using the influence
//! analysis as a *search-space pruning* device for discrete tuners:
//! "hill climbing algorithms vary the parameter value of one variable at
//! a time while keeping others fixed … having information on the impact
//! of variables can further decrease [the probability of local minima]".
//! This module implements that proposal:
//!
//! - [`hill_climb`] — coordinate descent over the seven variables, one
//!   full value-domain scan per variable, repeated until a pass finds no
//!   improvement;
//! - [`random_search`] — the deterministic baseline;
//! - [`influence_order`] — variable ordering derived from an
//!   [`crate::analysis::InfluenceRow`], so the most influential knobs
//!   are explored first (fewer evaluations to near-optimal).
//!
//! Objectives map a configuration to a runtime (lower is better); in
//! this repository they are usually `simrt::simulate` closures, but any
//! measurement works.

use crate::analysis::{Feature, InfluenceRow};
use crate::arch::Arch;
use crate::config::TuningConfig;
use crate::envvar::{
    KmpAlignAlloc, KmpBlocktime, KmpForceReduction, KmpLibrary, OmpPlaces, OmpProcBind, OmpSchedule,
};
use crate::space::ConfigSpace;
use serde::{Deserialize, Serialize};

/// The seven tunable variables, as search dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variable {
    Places,
    ProcBind,
    Schedule,
    Library,
    Blocktime,
    ForceReduction,
    AlignAlloc,
}

impl Variable {
    /// All variables in declaration order.
    pub const ALL: [Variable; 7] = [
        Variable::Places,
        Variable::ProcBind,
        Variable::Schedule,
        Variable::Library,
        Variable::Blocktime,
        Variable::ForceReduction,
        Variable::AlignAlloc,
    ];

    /// Number of values this variable can take on `arch`.
    pub fn domain_size(self, arch: Arch) -> usize {
        match self {
            Variable::Places => OmpPlaces::ALL.len(),
            Variable::ProcBind => OmpProcBind::ALL.len(),
            Variable::Schedule => OmpSchedule::ALL.len(),
            Variable::Library => KmpLibrary::ALL.len(),
            Variable::Blocktime => KmpBlocktime::ALL.len(),
            Variable::ForceReduction => KmpForceReduction::ALL.len(),
            Variable::AlignAlloc => KmpAlignAlloc::domain(arch).len(),
        }
    }

    /// Return `config` with this variable set to its `idx`-th value.
    pub fn with_value(self, config: TuningConfig, arch: Arch, idx: usize) -> TuningConfig {
        let mut c = config;
        match self {
            Variable::Places => c.places = OmpPlaces::ALL[idx],
            Variable::ProcBind => c.proc_bind = OmpProcBind::ALL[idx],
            Variable::Schedule => c.schedule = OmpSchedule::ALL[idx],
            Variable::Library => c.library = KmpLibrary::ALL[idx],
            Variable::Blocktime => c.blocktime = KmpBlocktime::ALL[idx],
            Variable::ForceReduction => c.force_reduction = KmpForceReduction::ALL[idx],
            Variable::AlignAlloc => c.align_alloc = KmpAlignAlloc::domain(arch)[idx],
        }
        c
    }

    /// The index of `config`'s current value of this variable.
    pub fn value_index(self, config: &TuningConfig, arch: Arch) -> usize {
        let pos = |found: Option<usize>| found.expect("value in domain");
        match self {
            Variable::Places => pos(OmpPlaces::ALL.iter().position(|v| *v == config.places)),
            Variable::ProcBind => pos(OmpProcBind::ALL.iter().position(|v| *v == config.proc_bind)),
            Variable::Schedule => pos(OmpSchedule::ALL.iter().position(|v| *v == config.schedule)),
            Variable::Library => pos(KmpLibrary::ALL.iter().position(|v| *v == config.library)),
            Variable::Blocktime => pos(KmpBlocktime::ALL
                .iter()
                .position(|v| *v == config.blocktime)),
            Variable::ForceReduction => pos(KmpForceReduction::ALL
                .iter()
                .position(|v| *v == config.force_reduction)),
            Variable::AlignAlloc => pos(KmpAlignAlloc::domain(arch)
                .iter()
                .position(|v| *v == config.align_alloc)),
        }
    }

    /// The analysis feature corresponding to this variable.
    pub fn feature(self) -> Feature {
        match self {
            Variable::Places => Feature::Places,
            Variable::ProcBind => Feature::ProcBind,
            Variable::Schedule => Feature::Schedule,
            Variable::Library => Feature::Library,
            Variable::Blocktime => Feature::Blocktime,
            Variable::ForceReduction => Feature::ForceReduction,
            Variable::AlignAlloc => Feature::AlignAlloc,
        }
    }
}

/// Result of a tuning run.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneResult {
    /// Best configuration found.
    pub best: TuningConfig,
    /// Objective value of `best`.
    pub best_value: f64,
    /// Number of objective evaluations spent.
    pub evaluations: usize,
    /// Objective value after each evaluation (monotone non-increasing
    /// best-so-far), for evaluations-to-quality curves.
    pub trajectory: Vec<f64>,
}

/// Order variables by descending influence from an analysis row — the
/// paper's pruning suggestion. Features absent from the row (e.g.
/// `Architecture`) are ignored; variables missing entirely keep their
/// declaration order at the tail.
pub fn influence_order(row: &InfluenceRow, features: &[Feature]) -> Vec<Variable> {
    let mut scored: Vec<(f64, Variable)> = Variable::ALL
        .iter()
        .map(|&v| {
            let score = features
                .iter()
                .position(|f| *f == v.feature())
                .map(|i| row.influence[i])
                .unwrap_or(0.0);
            (score, v)
        })
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite influence"));
    scored.into_iter().map(|(_, v)| v).collect()
}

/// The tuning knobs that plausibly move a given telemetry time sink,
/// most-leveraged first. This is the runtime-measurement analogue of the
/// offline influence ordering: barrier/imbalance wait points at the
/// schedule (rebalance) and placement (unserialize); wake-up latency at
/// blocktime/wait-policy; memory stalls at placement and allocation
/// alignment; dispatch overhead back at the schedule. Compute and serial
/// time are not addressable by any of the seven variables.
fn sink_knobs(sink: omptel::Sink) -> &'static [Variable] {
    use omptel::Sink;
    match sink {
        Sink::Imbalance => &[Variable::Schedule, Variable::Places, Variable::ProcBind],
        Sink::Sync => &[
            Variable::Schedule,
            Variable::Blocktime,
            Variable::ForceReduction,
            Variable::AlignAlloc,
        ],
        Sink::Wake => &[Variable::Blocktime, Variable::Library],
        Sink::Memory => &[Variable::Places, Variable::ProcBind, Variable::AlignAlloc],
        Sink::Dispatch => &[Variable::Schedule, Variable::Library],
        Sink::Compute | Sink::Serial => &[],
    }
}

/// Order variables by what a telemetry [`omptel::Summary`] says the
/// application actually spends time on: sinks are ranked by their share
/// of region time, each contributes its knobs in leverage order, and
/// unaddressed variables keep declaration order at the tail. A
/// barrier-wait-dominated profile therefore explores schedule and
/// placement first; a wake-latency-dominated one starts with blocktime.
pub fn telemetry_order(summary: &omptel::Summary) -> Vec<Variable> {
    let mut sinks: Vec<omptel::Sink> = omptel::Sink::ALL.to_vec();
    // Stable sort: ties keep the schema's sink order.
    sinks.sort_by_key(|&s| std::cmp::Reverse(summary.sink_ns(s)));
    let mut order: Vec<Variable> = Vec::with_capacity(Variable::ALL.len());
    for sink in sinks {
        for &v in sink_knobs(sink) {
            if !order.contains(&v) {
                order.push(v);
            }
        }
    }
    for v in Variable::ALL {
        if !order.contains(&v) {
            order.push(v);
        }
    }
    order
}

/// [`hill_climb`] with an optional telemetry summary steering the
/// variable order (the counter-informed climber). With `None` it is the
/// blind climber over declaration order.
pub fn hill_climb_informed<F>(
    arch: Arch,
    start: TuningConfig,
    telemetry: Option<&omptel::Summary>,
    max_evals: usize,
    objective: F,
) -> TuneResult
where
    F: FnMut(&TuningConfig) -> f64,
{
    match telemetry {
        Some(summary) => hill_climb(arch, start, &telemetry_order(summary), max_evals, objective),
        None => hill_climb(arch, start, &Variable::ALL, max_evals, objective),
    }
}

/// Coordinate-descent hill climbing: scan each variable's full value
/// domain in `order`, keep the best, repeat passes until one finds no
/// improvement or `max_evals` is exhausted. Deterministic.
pub fn hill_climb<F>(
    arch: Arch,
    start: TuningConfig,
    order: &[Variable],
    max_evals: usize,
    mut objective: F,
) -> TuneResult
where
    F: FnMut(&TuningConfig) -> f64,
{
    let mut best = start;
    let mut best_value = objective(&best);
    let mut evaluations = 1;
    let mut trajectory = vec![best_value];

    loop {
        let mut improved = false;
        for &var in order {
            let current_idx = var.value_index(&best, arch);
            for idx in 0..var.domain_size(arch) {
                if idx == current_idx {
                    continue;
                }
                if evaluations >= max_evals {
                    return TuneResult {
                        best,
                        best_value,
                        evaluations,
                        trajectory,
                    };
                }
                let candidate = var.with_value(best, arch, idx);
                let value = objective(&candidate);
                evaluations += 1;
                if value < best_value {
                    best = candidate;
                    best_value = value;
                    improved = true;
                }
                trajectory.push(best_value);
            }
        }
        if !improved {
            return TuneResult {
                best,
                best_value,
                evaluations,
                trajectory,
            };
        }
    }
}

/// Uniform random search over the space (deterministic in `seed`).
pub fn random_search<F>(
    arch: Arch,
    num_threads: usize,
    seed: u64,
    max_evals: usize,
    mut objective: F,
) -> TuneResult
where
    F: FnMut(&TuningConfig) -> f64,
{
    let space = ConfigSpace::new(arch, num_threads);
    // SplitMix the seed so that nearby seeds give unrelated streams, and
    // guarantee a nonzero xorshift state.
    let mut state = {
        let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        (z ^ (z >> 31)) | 1
    };
    let mut next = move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545F4914F6CDD1D)
    };
    let mut best = space.default_config();
    let mut best_value = f64::INFINITY;
    let mut trajectory = Vec::with_capacity(max_evals);
    for _ in 0..max_evals {
        let idx = (next() % space.len() as u64) as usize;
        let candidate = space.get(idx).expect("in space");
        let value = objective(&candidate);
        if value < best_value {
            best = candidate;
            best_value = value;
        }
        trajectory.push(best_value);
    }
    TuneResult {
        best,
        best_value,
        evaluations: max_evals,
        trajectory,
    }
}

/// Evaluations needed by a trajectory to come within `factor` (≥ 1.0) of
/// `target` (the known optimum). `None` if never reached.
pub fn evals_to_within(trajectory: &[f64], target: f64, factor: f64) -> Option<usize> {
    trajectory
        .iter()
        .position(|v| *v <= target * factor)
        .map(|i| i + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envvar::KmpLibrary;

    /// Synthetic objective: turnaround halves the runtime, spread bind
    /// shaves 20 %, master bind is catastrophic, everything else is
    /// neutral. Global optimum = turnaround + spread.
    fn objective(c: &TuningConfig) -> f64 {
        let mut t = 100.0;
        if c.library == KmpLibrary::Turnaround {
            t *= 0.5;
        }
        match c.effective_bind() {
            crate::config::EffectiveBind::Spread => t *= 0.8,
            crate::config::EffectiveBind::Master => t *= 50.0,
            _ => {}
        }
        t
    }

    #[test]
    fn hill_climb_finds_the_optimum() {
        let start = TuningConfig::default_for(Arch::Milan, 96);
        let r = hill_climb(Arch::Milan, start, &Variable::ALL, 500, objective);
        assert_eq!(r.best_value, 40.0, "best {:?}", r.best);
        assert_eq!(r.best.library, KmpLibrary::Turnaround);
        assert_eq!(
            r.best.effective_bind(),
            crate::config::EffectiveBind::Spread
        );
        // Coordinate descent over 7 small domains: cheap.
        assert!(r.evaluations < 60, "used {}", r.evaluations);
    }

    #[test]
    fn trajectory_is_monotone_nonincreasing() {
        let start = TuningConfig::default_for(Arch::A64fx, 48);
        let r = hill_climb(Arch::A64fx, start, &Variable::ALL, 500, objective);
        assert!(r.trajectory.windows(2).all(|w| w[1] <= w[0]));
        let rs = random_search(Arch::A64fx, 48, 7, 200, objective);
        assert!(rs.trajectory.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn influence_ordering_prioritizes_the_dominant_knob() {
        let features = Feature::columns(crate::analysis::GroupBy::ArchApplication);
        let mut influence = vec![0.01; features.len()];
        // Make KMP_LIBRARY dominant.
        let lib_col = features
            .iter()
            .position(|f| *f == Feature::Library)
            .unwrap();
        influence[lib_col] = 0.9;
        let row = InfluenceRow {
            group: "x".into(),
            influence,
            accuracy: 0.9,
            n_samples: 100,
            optimal_fraction: 0.2,
        };
        let order = influence_order(&row, &features);
        assert_eq!(order[0], Variable::Library);
        assert_eq!(order.len(), 7);
    }

    #[test]
    fn guided_order_converges_faster_on_the_synthetic_objective() {
        // Library is the big knob; exploring it first reaches the
        // optimum in fewer evaluations than exploring it last.
        let start = TuningConfig::default_for(Arch::Milan, 96);
        let guided = [
            Variable::Library,
            Variable::ProcBind,
            Variable::Places,
            Variable::Schedule,
            Variable::Blocktime,
            Variable::ForceReduction,
            Variable::AlignAlloc,
        ];
        let reversed: Vec<Variable> = guided.iter().rev().copied().collect();
        let a = hill_climb(Arch::Milan, start, &guided, 500, objective);
        let b = hill_climb(Arch::Milan, start, &reversed, 500, objective);
        assert_eq!(a.best_value, b.best_value, "both converge");
        let ea = evals_to_within(&a.trajectory, 40.0, 1.0).unwrap();
        let eb = evals_to_within(&b.trajectory, 40.0, 1.0).unwrap();
        assert!(ea < eb, "guided {ea} vs reversed {eb}");
    }

    /// A summary whose region time is dominated by one sink.
    fn summary_dominated_by(sink: omptel::Sink) -> omptel::Summary {
        let mut bd = omptel::Breakdown {
            compute_ns: 100.0,
            ..omptel::Breakdown::default()
        };
        match sink {
            omptel::Sink::Imbalance => bd.imbalance_ns = 900.0,
            omptel::Sink::Wake => bd.wake_ns = 900.0,
            omptel::Sink::Memory => bd.memory_ns = 900.0,
            omptel::Sink::Sync => bd.sync_ns = 900.0,
            omptel::Sink::Dispatch => bd.dispatch_ns = 900.0,
            omptel::Sink::Compute => bd.compute_ns = 900.0,
            omptel::Sink::Serial => bd.serial_ns = 900.0,
        }
        let mut s = omptel::Summary::default();
        s.add_aggregate(bd.sum(), &bd, 1);
        s
    }

    #[test]
    fn telemetry_order_leads_with_the_dominant_sinks_knobs() {
        let order = telemetry_order(&summary_dominated_by(omptel::Sink::Imbalance));
        assert_eq!(order[0], Variable::Schedule);
        assert_eq!(order.len(), 7, "every variable appears: {order:?}");
        let wake = telemetry_order(&summary_dominated_by(omptel::Sink::Wake));
        assert_eq!(wake[0], Variable::Blocktime);
        assert_eq!(wake[1], Variable::Library);
        let mem = telemetry_order(&summary_dominated_by(omptel::Sink::Memory));
        assert_eq!(mem[0], Variable::Places);
        // Each order is a permutation of the variable set.
        for o in [&order, &wake, &mem] {
            let mut sorted: Vec<_> = o.iter().map(|v| format!("{v:?}")).collect();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), 7);
        }
    }

    /// Barrier-bound synthetic objective: the schedule is the big knob
    /// (dynamic rebalances the imbalanced loop), placement the second;
    /// the remaining variables are neutral.
    fn barrier_bound_objective(c: &TuningConfig) -> f64 {
        let mut t = 100.0;
        if c.schedule == crate::envvar::OmpSchedule::Dynamic {
            t *= 0.4;
        }
        match c.effective_bind() {
            crate::config::EffectiveBind::Spread => t *= 0.9,
            crate::config::EffectiveBind::Master => t *= 30.0,
            _ => {}
        }
        t
    }

    #[test]
    fn informed_climber_needs_no_more_evals_than_blind_on_barrier_bound_model() {
        let start = TuningConfig::default_for(Arch::Milan, 96);
        let summary = summary_dominated_by(omptel::Sink::Imbalance);
        let informed = hill_climb_informed(
            Arch::Milan,
            start,
            Some(&summary),
            500,
            barrier_bound_objective,
        );
        let blind = hill_climb_informed(Arch::Milan, start, None, 500, barrier_bound_objective);
        assert_eq!(informed.best_value, blind.best_value, "both converge");
        let target = informed.best_value;
        let ei = evals_to_within(&informed.trajectory, target, 1.0).unwrap();
        let eb = evals_to_within(&blind.trajectory, target, 1.0).unwrap();
        assert!(ei <= eb, "informed {ei} vs blind {eb}");
        // On this model the schedule-first order is strictly faster to
        // the big win (runtime within 2x of optimal).
        let ei2 = evals_to_within(&informed.trajectory, target, 2.0).unwrap();
        let eb2 = evals_to_within(&blind.trajectory, target, 2.0).unwrap();
        assert!(ei2 < eb2, "informed {ei2} vs blind {eb2} to 2x");
    }

    #[test]
    fn random_search_is_deterministic_and_bounded() {
        let a = random_search(Arch::Skylake, 40, 42, 100, objective);
        let b = random_search(Arch::Skylake, 40, 42, 100, objective);
        assert_eq!(a, b);
        assert_eq!(a.evaluations, 100);
        // Different seeds must explore different paths: with a 1-eval
        // budget the first sampled config decides the outcome, and over
        // many seeds more than one distinct value must occur.
        let firsts: std::collections::BTreeSet<u64> = (0..32)
            .map(|seed| {
                random_search(Arch::Skylake, 40, seed, 1, objective)
                    .best_value
                    .to_bits()
            })
            .collect();
        assert!(firsts.len() > 1, "seeds collapsed to one stream");
    }

    #[test]
    fn max_evals_is_respected() {
        let start = TuningConfig::default_for(Arch::Milan, 96);
        let r = hill_climb(Arch::Milan, start, &Variable::ALL, 5, objective);
        assert!(r.evaluations <= 5);
    }

    #[test]
    fn variable_value_roundtrip() {
        let c = TuningConfig::default_for(Arch::Skylake, 40);
        for var in Variable::ALL {
            for idx in 0..var.domain_size(Arch::Skylake) {
                let c2 = var.with_value(c, Arch::Skylake, idx);
                assert_eq!(var.value_index(&c2, Arch::Skylake), idx);
            }
        }
    }
}
