//! Thread → place assignment under `OMP_PLACES` × `OMP_PROC_BIND`.
//!
//! This is the pure logic shared by the real runtime (`omprt`, which
//! records assignments) and the simulator (`simrt`, where placement has
//! performance consequences): given the place granularity, the effective
//! binding policy, and a thread count, compute which place every thread
//! occupies.
//!
//! Semantics follow the OpenMP spec as implemented by libomp:
//!
//! - `close`: consecutive threads fill consecutive places (threads are
//!   partitioned into `P` contiguous groups),
//! - `spread`: threads are spaced as evenly as possible across places,
//! - `master`: every thread shares the primary thread's place (place 0) —
//!   the paper's worst-trend configuration at high thread counts,
//! - unbound: no assignment; threads migrate freely.
//!
//! When `OMP_PROC_BIND` requests binding but `OMP_PLACES` is unset, libomp
//! falls back to a per-core place list; we do the same.

use crate::arch::Arch;
use crate::config::{EffectiveBind, TuningConfig};
use crate::envvar::OmpPlaces;
use serde::{Deserialize, Serialize};

/// The result of placing `num_threads` threads on an architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Placement {
    /// Threads are unbound and may migrate across all cores.
    Unbound,
    /// `assignment[i]` is the place index of thread `i`.
    Bound {
        /// Place of each thread.
        assignment: Vec<usize>,
        /// Total number of places.
        n_places: usize,
        /// Cores per place.
        cores_per_place: usize,
    },
}

impl Placement {
    /// Compute the placement for `config` on `arch`.
    pub fn compute(arch: Arch, config: &TuningConfig) -> Placement {
        let bind = config.effective_bind();
        if bind == EffectiveBind::None {
            return Placement::Unbound;
        }
        // Binding without places: libomp falls back to per-core places.
        let granularity = if config.places == OmpPlaces::Unset {
            OmpPlaces::Cores
        } else {
            config.places
        };
        let n_places = granularity.place_count(arch);
        let t = config.num_threads;
        let assignment: Vec<usize> = match bind {
            EffectiveBind::None => unreachable!("handled above"),
            EffectiveBind::Master => vec![0; t],
            EffectiveBind::Close => {
                // Partition threads into contiguous groups of ceil(T/P).
                let group = t.div_ceil(n_places);
                (0..t).map(|i| (i / group).min(n_places - 1)).collect()
            }
            EffectiveBind::Spread => (0..t).map(|i| i * n_places / t).collect(),
        };
        Placement::Bound {
            assignment,
            n_places,
            cores_per_place: arch.cores() / n_places,
        }
    }

    /// Number of threads sharing each place (empty for unbound).
    pub fn occupancy(&self) -> Vec<usize> {
        match self {
            Placement::Unbound => Vec::new(),
            Placement::Bound {
                assignment,
                n_places,
                ..
            } => {
                let mut occ = vec![0usize; *n_places];
                for &p in assignment {
                    occ[p] += 1;
                }
                occ
            }
        }
    }

    /// The worst-case ratio of threads to cores on any single place —
    /// 1.0 means no core is shared; above 1.0 threads time-slice.
    /// Unbound placements report the machine-wide ratio.
    pub fn max_oversubscription(&self, arch: Arch, num_threads: usize) -> f64 {
        match self {
            Placement::Unbound => num_threads as f64 / arch.cores() as f64,
            Placement::Bound {
                cores_per_place, ..
            } => {
                let occ = self.occupancy();
                let max_occ = occ.into_iter().max().unwrap_or(0);
                max_occ as f64 / *cores_per_place as f64
            }
        }
    }

    /// Number of distinct places actually occupied (0 for unbound).
    pub fn places_used(&self) -> usize {
        self.occupancy().iter().filter(|n| **n > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envvar::OmpProcBind;

    fn config(arch: Arch, places: OmpPlaces, bind: OmpProcBind, t: usize) -> TuningConfig {
        TuningConfig {
            places,
            proc_bind: bind,
            ..TuningConfig::default_for(arch, t)
        }
    }

    #[test]
    fn default_config_is_unbound() {
        let c = TuningConfig::default_for(Arch::Milan, 96);
        assert_eq!(Placement::compute(Arch::Milan, &c), Placement::Unbound);
    }

    #[test]
    fn master_piles_everyone_on_place_zero() {
        let c = config(Arch::Milan, OmpPlaces::Cores, OmpProcBind::Master, 96);
        let p = Placement::compute(Arch::Milan, &c);
        let occ = p.occupancy();
        assert_eq!(occ[0], 96);
        assert!(occ[1..].iter().all(|n| *n == 0));
        // 96 threads on one core: oversubscription 96.
        assert_eq!(p.max_oversubscription(Arch::Milan, 96), 96.0);
    }

    #[test]
    fn spread_balances_occupancy() {
        let c = config(Arch::Milan, OmpPlaces::Sockets, OmpProcBind::Spread, 96);
        let p = Placement::compute(Arch::Milan, &c);
        assert_eq!(p.occupancy(), vec![48, 48]);
        assert!((p.max_oversubscription(Arch::Milan, 96) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spread_with_fewer_threads_than_places_spaces_them() {
        let c = config(Arch::A64fx, OmpPlaces::Cores, OmpProcBind::Spread, 4);
        let p = Placement::compute(Arch::A64fx, &c);
        match p {
            Placement::Bound { assignment, .. } => {
                assert_eq!(assignment, vec![0, 12, 24, 36]);
            }
            _ => panic!("expected bound"),
        }
    }

    #[test]
    fn close_packs_consecutively() {
        let c = config(Arch::A64fx, OmpPlaces::LlCaches, OmpProcBind::Close, 8);
        let p = Placement::compute(Arch::A64fx, &c);
        match &p {
            Placement::Bound {
                assignment,
                n_places,
                ..
            } => {
                assert_eq!(*n_places, 4);
                // ceil(8/4)=2 threads per place, consecutive.
                assert_eq!(assignment, &vec![0, 0, 1, 1, 2, 2, 3, 3]);
            }
            _ => panic!("expected bound"),
        }
    }

    #[test]
    fn close_on_cores_never_oversubscribes_at_full_count() {
        for arch in Arch::ALL {
            let c = config(arch, OmpPlaces::Cores, OmpProcBind::Close, arch.cores());
            let p = Placement::compute(arch, &c);
            assert!((p.max_oversubscription(arch, arch.cores()) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn bind_without_places_uses_core_places() {
        let c = config(Arch::Skylake, OmpPlaces::Unset, OmpProcBind::Close, 40);
        let p = Placement::compute(Arch::Skylake, &c);
        match p {
            Placement::Bound {
                n_places,
                cores_per_place,
                ..
            } => {
                assert_eq!(n_places, 40);
                assert_eq!(cores_per_place, 1);
            }
            _ => panic!("bind=close must bind even without places"),
        }
    }

    #[test]
    fn places_without_bind_derives_spread() {
        // Sec. III-2: places set, bind unset → effective spread.
        let c = config(Arch::Skylake, OmpPlaces::Sockets, OmpProcBind::Unset, 40);
        let p = Placement::compute(Arch::Skylake, &c);
        assert_eq!(p.occupancy(), vec![20, 20]);
    }

    #[test]
    fn unbound_oversubscription_is_machine_wide() {
        let p = Placement::Unbound;
        assert_eq!(p.max_oversubscription(Arch::Skylake, 40), 1.0);
        assert_eq!(p.max_oversubscription(Arch::Skylake, 20), 0.5);
        assert_eq!(p.places_used(), 0);
    }

    #[test]
    fn every_thread_gets_a_valid_place() {
        for arch in Arch::ALL {
            for places in OmpPlaces::ALL {
                for bind in OmpProcBind::ALL {
                    for t in [1, 2, arch.cores() / 2, arch.cores()] {
                        let c = config(arch, places, bind, t);
                        if let Placement::Bound {
                            assignment,
                            n_places,
                            ..
                        } = Placement::compute(arch, &c)
                        {
                            assert_eq!(assignment.len(), t);
                            assert!(assignment.iter().all(|p| p < &n_places));
                        }
                    }
                }
            }
        }
    }
}
