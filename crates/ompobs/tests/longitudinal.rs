//! End-to-end: real sweeps folded into real registry records on disk,
//! then the sentinel and blame run over the loaded trail — the same
//! path `scripts/verify.sh` drives through the CLI.

use std::path::PathBuf;

use omptune_core::Arch;
use sweep::{clean, CollectCore, Registry, RunCore, RunInfo, Scope, SweepOptions, SweepSpec};

fn temp_registry(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ompobs-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Sweep two architectures at the tiny stride and fold a core,
/// optionally scaling one architecture's virtual time — the same fault
/// `collect --perturb` injects.
fn swept_core(perturb: Option<(Arch, f64)>) -> CollectCore {
    let spec = SweepSpec {
        scope: Scope::Strided(400),
        ..SweepSpec::default()
    };
    let mut core = CollectCore::new(&spec);
    for &arch in &[Arch::A64fx, Arch::Skylake] {
        let outcome = sweep::sweep_arch_scheduled(arch, &spec, &SweepOptions::new(2));
        let mut batches = outcome.batches;
        if let Some((p, factor)) = perturb {
            if p == arch {
                for data in &mut batches {
                    for sample in &mut data.samples {
                        for t in &mut sample.runtimes {
                            if t.is_finite() {
                                *t *= factor;
                            }
                        }
                        sample.telemetry.virtual_ns *= factor;
                    }
                }
            }
        }
        let mut dropped = 0usize;
        for data in &mut batches {
            dropped += clean(data, spec.reps as usize).dropped.len();
        }
        core.push_arch(arch.id(), &batches, dropped as u64);
    }
    core
}

fn append(reg: &Registry, core: CollectCore, rev: &str, ts: u64) -> sweep::RunRecord {
    reg.append(RunCore::Collect(core), RunInfo::default(), rev, ts)
        .expect("registry append")
}

#[test]
fn registered_history_yields_clean_sentinel_then_flags_a_perturbed_run() {
    let dir = temp_registry("trail");
    let reg = Registry::open(&dir).expect("open registry");

    let base = swept_core(None);
    let r0 = append(&reg, base.clone(), "rev-a", 100);
    let r1 = append(&reg, base.clone(), "rev-a", 200);
    let r2 = append(&reg, base.clone(), "rev-b", 300);
    assert_eq!(
        r0.record_hash, r1.record_hash,
        "identical sweeps share a content address"
    );
    assert_eq!(r1.record_hash, r2.record_hash);

    // Three identical registered runs: the sentinel is clean and ran
    // zero statistical tests (identity by address).
    let load = reg.load().expect("load registry");
    assert_eq!(load.records.len(), 3);
    assert_eq!(load.corrupt_skipped, 0);
    let clean_history = ompobs::sentinel(&load.records, 0.05);
    assert!(!clean_history.change, "{}", clean_history.render());
    assert_eq!(clean_history.family, 0);
    assert!(clean_history.steps.iter().all(|s| s.identical));

    // A fourth run with one architecture's virtual time inflated 10%
    // (the verify.sh fault injection) is a change-point, and blame
    // names that architecture's slice.
    let perturbed = swept_core(Some((Arch::Skylake, 1.10)));
    let r3 = append(&reg, perturbed, "rev-c", 400);
    assert_ne!(r3.record_hash, r2.record_hash);

    let load = reg.load().expect("reload registry");
    assert_eq!(load.records.len(), 4);
    let history = ompobs::sentinel(&load.records, 0.05);
    assert!(history.change, "{}", history.render());
    assert_eq!(history.change_points, vec![2], "only the final step moves");
    let step = &history.steps[2];
    assert!(
        step.rows
            .iter()
            .any(|r| r.change && r.series.starts_with("skylake/virt/")),
        "{}",
        history.render()
    );
    assert!(
        !step
            .rows
            .iter()
            .any(|r| r.change && r.series.starts_with("a64fx/")),
        "untouched architecture must not be flagged: {}",
        history.render()
    );

    let (from, to) = history.default_bracket().expect("bracket");
    assert_eq!((from, to), (2, 3));
    let blame = ompobs::blame(&load.records, from, to).expect("blame");
    let top = blame.top.as_ref().expect("top slice");
    assert_eq!(top.arch, "skylake");
    assert!(
        (top.delta_rel - 0.10).abs() < 0.02,
        "relative delta tracks the injected factor: {}",
        blame.render()
    );
    assert!(blame.render().contains("top regressed slice: skylake/"));

    // The dashboard renders the whole trail without panicking and
    // carries the verdict.
    let html =
        ompobs::report::dashboard_html(&dir.display().to_string(), &load, &history, Some(&blame));
    assert!(html.contains("<!DOCTYPE html>"));
    assert!(html.contains("CHANGE-POINT"));
    assert!(html.contains("skylake/virt/s0"));
    assert!(html.ends_with("</html>\n"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bisect_replay_matches_unperturbed_records_only() {
    let dir = temp_registry("bisect");
    let reg = Registry::open(&dir).expect("open registry");
    append(&reg, swept_core(None), "rev-a", 100);
    append(&reg, swept_core(Some((Arch::A64fx, 1.25))), "rev-b", 200);

    let load = reg.load().expect("load registry");
    let result = ompobs::bisect(&load.records, None, 2).expect("bisect replay");
    assert_eq!(result.compared, 2);
    // The current tree reproduces the unperturbed record bit-exactly
    // and disagrees with the perturbed one.
    assert_eq!(result.matches, vec![0], "{}", result.render());
    assert!(result.render().contains("run(s) [0]"));

    let _ = std::fs::remove_dir_all(&dir);
}
