//! `ompobs` — longitudinal observatory over the content-addressed run
//! registry that `collect` and the benches append to.
//!
//! ```text
//! ompobs list     [--dir DIR]
//! ompobs sentinel [--dir DIR] [--alpha A] [--out PATH]
//! ompobs blame    [--dir DIR] [--from N --to N] [--out PATH]
//! ompobs bisect   [--dir DIR] [--cache-dir DIR] [--workers N]
//! ompobs report   [--dir DIR] [--out PATH]
//! ```
//!
//! The registry directory defaults to `$OMPOBS_DIR`, then `.ompobs`.
//! Exit codes follow the suite convention: `0` clean, `4` change-point
//! detected, `2` usage error, `1` I/O or data error — CI can tell
//! "history moved" from "the scan could not run".

use std::path::PathBuf;
use std::process::ExitCode;

use sweep::{RegistryLoad, RunCore, SampleCache};

const USAGE: &str = "usage: ompobs list     [--dir DIR]
       ompobs sentinel [--dir DIR] [--alpha A] [--out PATH]
       ompobs blame    [--dir DIR] [--from N --to N] [--out PATH]
       ompobs bisect   [--dir DIR] [--cache-dir DIR] [--workers N]
       ompobs report   [--dir DIR] [--out PATH]";

const EXIT_OK: u8 = 0;
const EXIT_ERROR: u8 = 1;
const EXIT_USAGE: u8 = 2;
const EXIT_CHANGE: u8 = 4;

/// Flags shared by every subcommand, parsed in one pass.
#[derive(Default)]
struct Flags {
    dir: Option<PathBuf>,
    alpha: f64,
    out: Option<PathBuf>,
    from: Option<u64>,
    to: Option<u64>,
    cache_dir: Option<PathBuf>,
    workers: usize,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags {
        alpha: 0.05,
        workers: 2,
        ..Flags::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut want = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} wants a value"))
        };
        match arg.as_str() {
            "--dir" => f.dir = Some(PathBuf::from(want("--dir")?)),
            "--out" => f.out = Some(PathBuf::from(want("--out")?)),
            "--cache-dir" => f.cache_dir = Some(PathBuf::from(want("--cache-dir")?)),
            "--alpha" => match want("--alpha")?.parse::<f64>() {
                Ok(a) if a > 0.0 && a < 1.0 => f.alpha = a,
                _ => return Err("--alpha wants a value in (0, 1)".to_string()),
            },
            "--from" => match want("--from")?.parse::<u64>() {
                Ok(n) => f.from = Some(n),
                Err(_) => return Err("--from wants a run sequence number".to_string()),
            },
            "--to" => match want("--to")?.parse::<u64>() {
                Ok(n) => f.to = Some(n),
                Err(_) => return Err("--to wants a run sequence number".to_string()),
            },
            "--workers" => match want("--workers")?.parse::<usize>() {
                Ok(n) if n > 0 => f.workers = n,
                _ => return Err("--workers wants a positive integer".to_string()),
            },
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(f)
}

fn registry_dir(f: &Flags) -> PathBuf {
    f.dir
        .clone()
        .or_else(sweep::registry::env_registry_dir)
        .unwrap_or_else(|| PathBuf::from(".ompobs"))
}

fn load_registry(dir: &PathBuf) -> Result<RegistryLoad, String> {
    let reg = sweep::Registry::open(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let load = reg.load().map_err(|e| format!("{}: {e}", dir.display()))?;
    if load.corrupt_skipped > 0 {
        eprintln!(
            "ompobs: {} corrupt record(s) skipped in {}",
            load.corrupt_skipped,
            dir.display()
        );
    }
    if load.index_rebuilt {
        eprintln!("ompobs: index rebuilt from JSONL in {}", dir.display());
    }
    Ok(load)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => {
            eprintln!("{USAGE}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("ompobs: {e}\n{USAGE}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    match cmd {
        "list" => list_cmd(&flags),
        "sentinel" => sentinel_cmd(&flags),
        "blame" => blame_cmd(&flags),
        "bisect" => bisect_cmd(&flags),
        "report" => report_cmd(&flags),
        _ => {
            eprintln!("ompobs: unknown command {cmd:?}\n{USAGE}");
            ExitCode::from(EXIT_USAGE)
        }
    }
}

fn list_cmd(flags: &Flags) -> ExitCode {
    let dir = registry_dir(flags);
    let load = match load_registry(&dir) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("ompobs: {e}");
            return ExitCode::from(EXIT_ERROR);
        }
    };
    println!(
        "{:<5} {:<17} {:<8} {:<13} {:<17} {:>9} {:>8} {:>10}",
        "SEQ", "WHEN", "KIND", "REV", "HASH", "SAMPLES", "WORKERS", "JOULES"
    );
    for rec in &load.records {
        let samples = match &rec.core {
            RunCore::Collect(c) => c.arches.iter().map(|a| a.samples).sum::<u64>(),
            RunCore::Bench(_) => 0,
        };
        // Whole-µJ digests; zero means a pre-energy record.
        let energy_uj = match &rec.core {
            RunCore::Collect(c) => c.arches.iter().map(|a| a.energy_uj()).sum::<u64>(),
            RunCore::Bench(_) => 0,
        };
        let joules = if energy_uj > 0 {
            format!("{:.3}", energy_uj as f64 / 1e6)
        } else {
            "-".to_string()
        };
        println!(
            "{:<5} {:<17} {:<8} {:<13} {:016x} {:>9} {:>8} {:>10}",
            rec.seq,
            rec.ts_unix,
            rec.core.kind(),
            &rec.git_rev[..rec.git_rev.len().min(12)],
            rec.record_hash,
            samples,
            rec.info.workers,
            joules
        );
    }
    println!(
        "{} record(s) in {} ({} corrupt skipped)",
        load.records.len(),
        dir.display(),
        load.corrupt_skipped
    );
    ExitCode::from(EXIT_OK)
}

fn sentinel_cmd(flags: &Flags) -> ExitCode {
    let dir = registry_dir(flags);
    let load = match load_registry(&dir) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("ompobs: {e}");
            return ExitCode::from(EXIT_ERROR);
        }
    };
    let history = ompobs::sentinel(&load.records, flags.alpha);
    print!("{}", history.render());
    let out = flags
        .out
        .clone()
        .unwrap_or_else(|| dir.join("history.json"));
    match serde_json::to_string_pretty(&history) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&out, json + "\n") {
                eprintln!("ompobs: writing {}: {e}", out.display());
                return ExitCode::from(EXIT_ERROR);
            }
            eprintln!("wrote {}", out.display());
        }
        Err(e) => {
            eprintln!("ompobs: serializing history: {e}");
            return ExitCode::from(EXIT_ERROR);
        }
    }
    ExitCode::from(if history.change { EXIT_CHANGE } else { EXIT_OK })
}

fn blame_cmd(flags: &Flags) -> ExitCode {
    let dir = registry_dir(flags);
    let load = match load_registry(&dir) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("ompobs: {e}");
            return ExitCode::from(EXIT_ERROR);
        }
    };
    let (from, to) = match (flags.from, flags.to) {
        (Some(a), Some(b)) => (a, b),
        (None, None) => {
            // No explicit bracket: blame the last change-point step,
            // falling back to the last step of the trail.
            let history = ompobs::sentinel(&load.records, flags.alpha);
            match history.default_bracket() {
                Some(pair) => pair,
                None => {
                    eprintln!("ompobs: fewer than two comparable runs — nothing to blame");
                    return ExitCode::from(EXIT_ERROR);
                }
            }
        }
        _ => {
            eprintln!("ompobs: --from and --to go together\n{USAGE}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let blame = match ompobs::blame(&load.records, from, to) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("ompobs: {e}");
            return ExitCode::from(EXIT_ERROR);
        }
    };
    print!("{}", blame.render());
    let out = flags.out.clone().unwrap_or_else(|| dir.join("blame.json"));
    match serde_json::to_string_pretty(&blame) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&out, json + "\n") {
                eprintln!("ompobs: writing {}: {e}", out.display());
                return ExitCode::from(EXIT_ERROR);
            }
            eprintln!("wrote {}", out.display());
        }
        Err(e) => {
            eprintln!("ompobs: serializing blame: {e}");
            return ExitCode::from(EXIT_ERROR);
        }
    }
    ExitCode::from(EXIT_OK)
}

fn bisect_cmd(flags: &Flags) -> ExitCode {
    let dir = registry_dir(flags);
    let load = match load_registry(&dir) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("ompobs: {e}");
            return ExitCode::from(EXIT_ERROR);
        }
    };
    let cache = flags.cache_dir.as_ref().map(SampleCache::new);
    let result = match ompobs::bisect(&load.records, cache.as_ref(), flags.workers) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("ompobs: {e}");
            return ExitCode::from(EXIT_ERROR);
        }
    };
    print!("{}", result.render());
    // "reproduces nothing" is the change signal for CI.
    ExitCode::from(if result.matches.is_empty() && result.compared > 0 {
        EXIT_CHANGE
    } else {
        EXIT_OK
    })
}

fn report_cmd(flags: &Flags) -> ExitCode {
    let dir = registry_dir(flags);
    let load = match load_registry(&dir) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("ompobs: {e}");
            return ExitCode::from(EXIT_ERROR);
        }
    };
    let history = ompobs::sentinel(&load.records, flags.alpha);
    let blame = history
        .default_bracket()
        .filter(|_| history.change)
        .and_then(|(from, to)| ompobs::blame(&load.records, from, to).ok());
    let html =
        ompobs::report::dashboard_html(&dir.display().to_string(), &load, &history, blame.as_ref());
    let out = flags.out.clone().unwrap_or_else(|| dir.join("report.html"));
    if let Err(e) = std::fs::write(&out, html) {
        eprintln!("ompobs: writing {}: {e}", out.display());
        return ExitCode::from(EXIT_ERROR);
    }
    println!(
        "report: {} record(s), {} change-point(s) -> {}",
        load.records.len(),
        history.change_points.len(),
        out.display()
    );
    ExitCode::from(EXIT_OK)
}
