//! Dependency-free static HTML dashboard over one run registry.
//!
//! Everything is rendered by hand — markup, styles, and the SVG
//! sparklines — so the artifact opens from a `file://` URL in any
//! browser with no scripts, fonts, or network fetches. The page shows
//! the run trail, per-series virtual-time and modeled-energy
//! sparklines with change-point badges, the bench scalar trends, and
//! (when a change-point fired)
//! the blame verdict, plus links to the flame-graph artifacts
//! `ompprof` writes next to a run directory.

use crate::{Blame, History};
use sweep::{RegistryLoad, RunCore, RunRecord};

/// Sparkline geometry: small enough to tile, big enough to read.
const SPARK_W: f64 = 220.0;
const SPARK_H: f64 = 36.0;
const SPARK_PAD: f64 = 3.0;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Civil date from a Unix timestamp (Howard Hinnant's algorithm),
/// rendered `YYYY-MM-DD HH:MM` UTC — enough for a trail axis without
/// a time library.
fn fmt_ts(ts: u64) -> String {
    let days = (ts / 86_400) as i64;
    let secs = ts % 86_400;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!(
        "{:04}-{:02}-{:02} {:02}:{:02}",
        y,
        m,
        d,
        secs / 3600,
        (secs % 3600) / 60
    )
}

/// One polyline sparkline. NaN points are skipped (the line breaks);
/// a single point degrades to a dot; `marks` indexes get a
/// change-point dot.
fn sparkline(values: &[f64], marks: &[usize], class: &str) -> String {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return "<svg class=\"spark\" viewBox=\"0 0 220 36\"><text x=\"6\" y=\"22\" class=\"mut\">no data</text></svg>".to_string();
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in &finite {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if (hi - lo).abs() < 1e-30 {
        // Flat series: center the line so it doesn't hug an edge.
        lo -= 1.0;
        hi += 1.0;
    }
    let n = values.len();
    let x_at = |i: usize| {
        if n <= 1 {
            SPARK_W / 2.0
        } else {
            SPARK_PAD + (SPARK_W - 2.0 * SPARK_PAD) * i as f64 / (n - 1) as f64
        }
    };
    let y_at = |v: f64| SPARK_H - SPARK_PAD - (SPARK_H - 2.0 * SPARK_PAD) * (v - lo) / (hi - lo);
    let mut points = String::new();
    let mut dots = String::new();
    for (i, &v) in values.iter().enumerate() {
        if !v.is_finite() {
            continue;
        }
        let (x, y) = (x_at(i), y_at(v));
        points.push_str(&format!("{x:.1},{y:.1} "));
        if marks.contains(&i) {
            dots.push_str(&format!(
                "<circle cx=\"{x:.1}\" cy=\"{y:.1}\" r=\"3\" class=\"cp\"/>"
            ));
        }
    }
    let last = values
        .iter()
        .rposition(|v| v.is_finite())
        .map(|i| {
            let (x, y) = (x_at(i), y_at(values[i]));
            format!("<circle cx=\"{x:.1}\" cy=\"{y:.1}\" r=\"2\" class=\"tip\"/>")
        })
        .unwrap_or_default();
    format!(
        "<svg class=\"spark\" viewBox=\"0 0 {SPARK_W} {SPARK_H}\" preserveAspectRatio=\"none\">\
<polyline class=\"{class}\" points=\"{points}\"/>{last}{dots}</svg>"
    )
}

fn fmt_virt(ns: f64) -> String {
    if !ns.is_finite() {
        "-".to_string()
    } else if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Per-run mean of one arch's stratum `k` ring series.
fn series_point(rec: &RunRecord, arch: &str, k: usize) -> f64 {
    let RunCore::Collect(c) = &rec.core else {
        return f64::NAN;
    };
    let Some(a) = c.arches.iter().find(|a| a.arch == arch) else {
        return f64::NAN;
    };
    let means = a.virt[k].means();
    if means.is_empty() {
        f64::NAN
    } else {
        means.iter().sum::<f64>() / means.len() as f64
    }
}

/// Per-run mean of one arch's stratum `k` energy ring series (joules).
/// Pre-energy records have no energy strata and yield NaN, which the
/// sparkline renders as a break in the line.
fn energy_series_point(rec: &RunRecord, arch: &str, k: usize) -> f64 {
    let RunCore::Collect(c) = &rec.core else {
        return f64::NAN;
    };
    let Some(a) = c.arches.iter().find(|a| a.arch == arch) else {
        return f64::NAN;
    };
    let Some(s) = a.energy.get(k) else {
        return f64::NAN;
    };
    let means = s.means();
    if means.is_empty() {
        f64::NAN
    } else {
        means.iter().sum::<f64>() / means.len() as f64
    }
}

fn fmt_joules(j: f64) -> String {
    if !j.is_finite() {
        "-".to_string()
    } else if j >= 1.0 {
        format!("{j:.3}J")
    } else if j >= 1e-3 {
        format!("{:.3}mJ", j * 1e3)
    } else {
        format!("{:.3}uJ", j * 1e6)
    }
}

/// Render the full dashboard. `dir` is the registry path shown in the
/// header; `trail` must be the comparable-trail subset of
/// `load.records` the `history` was computed over.
pub fn dashboard_html(
    dir: &str,
    load: &RegistryLoad,
    history: &History,
    blame: Option<&Blame>,
) -> String {
    let trail: Vec<&RunRecord> = crate::comparable_trail(&load.records);
    let collect_n = load
        .records
        .iter()
        .filter(|r| matches!(r.core, RunCore::Collect(_)))
        .count();
    let bench_records: Vec<&RunRecord> = load
        .records
        .iter()
        .filter(|r| matches!(r.core, RunCore::Bench(_)))
        .collect();

    // Change-point marks by trail position: step i flags run i+1.
    let marks: Vec<usize> = history.change_points.iter().map(|&i| i + 1).collect();

    let mut html = String::with_capacity(32 * 1024);
    html.push_str(
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
<title>ompobs — run observatory</title>\n<style>\n\
body{font:14px/1.5 -apple-system,'Segoe UI',sans-serif;margin:2em auto;max-width:1100px;\
padding:0 1em;color:#1a1f29;background:#fafbfc}\n\
h1{font-size:1.5em}h2{font-size:1.15em;margin-top:1.8em;border-bottom:1px solid #e1e4e8;\
padding-bottom:.3em}\n\
code,.mono{font-family:ui-monospace,Menlo,monospace;font-size:.92em}\n\
table{border-collapse:collapse;width:100%}\n\
th,td{text-align:left;padding:.3em .7em;border-bottom:1px solid #eceef1;white-space:nowrap}\n\
th{color:#57606a;font-weight:600}\n\
.num{text-align:right;font-variant-numeric:tabular-nums}\n\
.badge{display:inline-block;padding:.1em .6em;border-radius:1em;font-size:.85em;font-weight:600}\n\
.ok{background:#dafbe1;color:#116329}.bad{background:#ffebe9;color:#cf222e}\n\
.mut{fill:#8b949e;color:#8b949e;font-size:11px}\n\
.spark{width:220px;height:36px;background:#fff;border:1px solid #e1e4e8;border-radius:3px;\
vertical-align:middle}\n\
.spark polyline{fill:none;stroke:#0969da;stroke-width:1.5}\n\
.spark polyline.bench{stroke:#8250df}\n\
.spark polyline.energy{stroke:#bf8700}\n\
.spark .tip{fill:#0969da}.spark .cp{fill:#cf222e}\n\
.cards{display:flex;gap:1em;flex-wrap:wrap;margin:1em 0}\n\
.card{background:#fff;border:1px solid #e1e4e8;border-radius:6px;padding:.7em 1.1em;min-width:9em}\n\
.card b{display:block;font-size:1.4em}.card span{color:#57606a;font-size:.85em}\n\
pre{background:#fff;border:1px solid #e1e4e8;border-radius:6px;padding:.8em;overflow-x:auto}\n\
a{color:#0969da;text-decoration:none}a:hover{text-decoration:underline}\n\
</style>\n</head>\n<body>\n",
    );
    html.push_str("<h1>ompobs — longitudinal run observatory</h1>\n");
    html.push_str(&format!(
        "<p>registry <code>{}</code> · spec <code>{}</code> · verdict {}</p>\n",
        esc(dir),
        esc(&history.spec_fp),
        if history.change {
            "<span class=\"badge bad\">CHANGE-POINT</span>"
        } else {
            "<span class=\"badge ok\">OK</span>"
        }
    ));

    html.push_str("<div class=\"cards\">\n");
    for (value, label) in [
        (load.records.len().to_string(), "records"),
        (collect_n.to_string(), "sweep runs"),
        (bench_records.len().to_string(), "bench runs"),
        (load.corrupt_skipped.to_string(), "corrupt skipped"),
        (history.change_points.len().to_string(), "change-points"),
        (history.family.to_string(), "Holm family"),
    ] {
        html.push_str(&format!(
            "<div class=\"card\"><b>{value}</b><span>{label}</span></div>\n"
        ));
    }
    html.push_str("</div>\n");

    // --- run trail ---------------------------------------------------
    html.push_str(
        "<h2>Run trail</h2>\n<table>\n<tr><th>#</th><th>when (UTC)</th>\
<th>kind</th><th>rev</th><th>content hash</th><th class=\"num\">samples</th>\
<th class=\"num\">workers</th><th></th></tr>\n",
    );
    for rec in &load.records {
        let samples = match &rec.core {
            RunCore::Collect(c) => c.arches.iter().map(|a| a.samples).sum::<u64>(),
            RunCore::Bench(_) => 0,
        };
        let trail_pos = trail.iter().position(|t| t.seq == rec.seq);
        let badge = match trail_pos {
            Some(p) if marks.contains(&p) => "<span class=\"badge bad\">change-point</span>",
            Some(_) => "<span class=\"badge ok\">in trail</span>",
            None => "",
        };
        html.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td>{}</td><td class=\"mono\">{}</td>\
<td class=\"mono\">{:016x}</td><td class=\"num\">{}</td><td class=\"num\">{}</td><td>{}</td></tr>\n",
            rec.seq,
            fmt_ts(rec.ts_unix),
            rec.core.kind(),
            esc(&rec.git_rev[..rec.git_rev.len().min(12)]),
            rec.record_hash,
            samples,
            rec.info.workers,
            badge
        ));
    }
    html.push_str("</table>\n");

    // --- per-series sparklines --------------------------------------
    html.push_str("<h2>Virtual-time and modeled-energy series over the trail</h2>\n");
    if trail.len() < 2 {
        html.push_str("<p class=\"mut\">Fewer than two comparable runs — record more sweeps to grow the trail.</p>\n");
    } else {
        let mut arch_names: Vec<String> = Vec::new();
        for rec in &trail {
            if let RunCore::Collect(c) = &rec.core {
                for a in &c.arches {
                    if !arch_names.contains(&a.arch) {
                        arch_names.push(a.arch.clone());
                    }
                }
            }
        }
        html.push_str(
            "<table>\n<tr><th>series</th><th>trend</th><th class=\"num\">first</th>\
<th class=\"num\">last</th><th class=\"num\">delta</th></tr>\n",
        );
        for arch in &arch_names {
            // Arch headline: total attributed virtual time per run.
            let totals: Vec<f64> = trail
                .iter()
                .map(|rec| match &rec.core {
                    RunCore::Collect(c) => c
                        .arches
                        .iter()
                        .find(|a| &a.arch == arch)
                        .map(|a| a.virt_ns() as f64)
                        .unwrap_or(f64::NAN),
                    RunCore::Bench(_) => f64::NAN,
                })
                .collect();
            push_series_row(
                &mut html,
                &format!("{arch}/virt (total)"),
                &totals,
                &marks,
                "",
                fmt_virt,
            );
            for k in 0..sweep::registry::STRATA {
                let vals: Vec<f64> = trail.iter().map(|r| series_point(r, arch, k)).collect();
                push_series_row(
                    &mut html,
                    &format!("{arch}/virt/s{k}"),
                    &vals,
                    &marks,
                    "",
                    |v| format!("{v:.4}"),
                );
            }
            // Modeled-energy headline + strata. Skipped entirely when
            // no run in the trail carries energy digests (pre-ompwatt
            // registries), so legacy dashboards are unchanged.
            let joules: Vec<f64> = trail
                .iter()
                .map(|rec| match &rec.core {
                    RunCore::Collect(c) => c
                        .arches
                        .iter()
                        .find(|a| &a.arch == arch)
                        .map(|a| a.energy_uj() as f64 / 1e6)
                        .filter(|&j| j > 0.0)
                        .unwrap_or(f64::NAN),
                    RunCore::Bench(_) => f64::NAN,
                })
                .collect();
            if joules.iter().any(|v| v.is_finite()) {
                push_series_row(
                    &mut html,
                    &format!("{arch}/energy (total)"),
                    &joules,
                    &marks,
                    "energy",
                    fmt_joules,
                );
                for k in 0..sweep::registry::STRATA {
                    let vals: Vec<f64> = trail
                        .iter()
                        .map(|r| energy_series_point(r, arch, k))
                        .collect();
                    push_series_row(
                        &mut html,
                        &format!("{arch}/energy/s{k}"),
                        &vals,
                        &marks,
                        "energy",
                        fmt_joules,
                    );
                }
            }
        }
        html.push_str("</table>\n");
    }

    // --- bench trends ------------------------------------------------
    html.push_str("<h2>Bench trends</h2>\n");
    if bench_records.is_empty() {
        html.push_str("<p class=\"mut\">No bench records yet — run <code>cargo bench</code> with <code>OMPOBS_DIR</code> pointing here.</p>\n");
    } else {
        let mut keys: Vec<(String, String)> = Vec::new();
        for rec in &bench_records {
            if let RunCore::Bench(b) = &rec.core {
                for (k, _) in &b.scalars {
                    let pair = (b.bench.clone(), k.clone());
                    if !keys.contains(&pair) {
                        keys.push(pair);
                    }
                }
            }
        }
        keys.sort();
        html.push_str(
            "<table>\n<tr><th>series</th><th>trend</th><th class=\"num\">first</th>\
<th class=\"num\">last</th><th class=\"num\">delta</th></tr>\n",
        );
        for (bench, key) in &keys {
            let vals: Vec<f64> = bench_records
                .iter()
                .filter_map(|rec| match &rec.core {
                    RunCore::Bench(b) if &b.bench == bench => Some(
                        b.scalars
                            .iter()
                            .find(|(k, _)| k == key)
                            .map(|(_, bits)| f64::from_bits(*bits))
                            .unwrap_or(f64::NAN),
                    ),
                    _ => None,
                })
                .collect();
            push_series_row(
                &mut html,
                &format!("{bench}/{key}"),
                &vals,
                &[],
                "bench",
                |v| format!("{v:.4e}"),
            );
        }
        html.push_str("</table>\n");
    }

    // --- sentinel + blame -------------------------------------------
    html.push_str("<h2>Sentinel verdict</h2>\n<pre>");
    html.push_str(&esc(&history.render()));
    html.push_str("</pre>\n");
    if let Some(b) = blame {
        html.push_str("<h2>Blame</h2>\n<pre>");
        html.push_str(&esc(&b.render()));
        html.push_str("</pre>\n");
    }

    // --- artifact links ---------------------------------------------
    let mut out_dirs: Vec<&str> = load
        .records
        .iter()
        .rev()
        .map(|r| r.info.out_dir.as_str())
        .filter(|d| !d.is_empty())
        .collect();
    out_dirs.dedup();
    if !out_dirs.is_empty() {
        html.push_str("<h2>Run artifacts</h2>\n<ul>\n");
        for d in out_dirs.iter().take(8) {
            html.push_str(&format!(
                "<li><code>{}</code> — <a href=\"{}/manifest.json\">manifest</a> · \
<a href=\"{}/flame_best.svg\">flame graph (best)</a> · \
<a href=\"{}/flame_diff.svg\">differential flame graph</a></li>\n",
                esc(d),
                esc(d),
                esc(d),
                esc(d)
            ));
        }
        html.push_str("</ul>\n<p class=\"mut\">Flame-graph links resolve when <code>ompprof flame</code> has been run over the same directories.</p>\n");
    }

    html.push_str(&format!(
        "<p class=\"mut\">generated by ompobs · schema {} · history of {} step(s)</p>\n</body>\n</html>\n",
        esc(&history.schema),
        history.steps.len()
    ));
    html
}

fn push_series_row(
    html: &mut String,
    name: &str,
    vals: &[f64],
    marks: &[usize],
    class: &str,
    fmt: impl Fn(f64) -> String,
) {
    let first = vals.iter().copied().find(|v| v.is_finite());
    let last = vals.iter().rev().copied().find(|v| v.is_finite());
    let delta = match (first, last) {
        (Some(a), Some(b)) if a != 0.0 => format!("{:+.2}%", (b - a) / a * 100.0),
        _ => "-".to_string(),
    };
    html.push_str(&format!(
        "<tr><td class=\"mono\">{}</td><td>{}</td><td class=\"num\">{}</td>\
<td class=\"num\">{}</td><td class=\"num\">{}</td></tr>\n",
        esc(name),
        sparkline(vals, marks, class),
        first.map(&fmt).unwrap_or_else(|| "-".to_string()),
        last.map(&fmt).unwrap_or_else(|| "-".to_string()),
        delta
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_render_civil_dates() {
        assert_eq!(fmt_ts(0), "1970-01-01 00:00");
        assert_eq!(fmt_ts(86_400), "1970-01-02 00:00");
        assert_eq!(fmt_ts(1_786_538_040), "2026-08-12 12:34");
    }

    #[test]
    fn sparkline_handles_degenerate_series() {
        assert!(sparkline(&[], &[], "").contains("no data"));
        assert!(sparkline(&[f64::NAN], &[], "").contains("no data"));
        let one = sparkline(&[5.0], &[], "");
        assert!(one.contains("polyline"));
        let flat = sparkline(&[2.0, 2.0, 2.0], &[], "");
        assert!(flat.contains("polyline"));
        let marked = sparkline(&[1.0, 2.0, 3.0], &[2], "");
        assert!(marked.contains("class=\"cp\""));
    }

    #[test]
    fn html_escapes_untrusted_strings() {
        assert_eq!(esc("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
    }
}
