//! # ompobs — longitudinal run observatory
//!
//! `ompmon drift` answers "did these *two* runs disagree?" given two
//! run directories by hand. `ompobs` generalizes the question to the
//! whole recorded history in a [`sweep::Registry`]: every `collect`
//! run and bench invocation appends a content-addressed record, and
//! this crate reads the resulting trail three ways:
//!
//! - [`sentinel`] — the N-run change-point scan. Comparable runs
//!   (equal sweep-spec fingerprints) are walked in sequence order;
//!   each consecutive step is tested series-by-series with the paired
//!   Wilcoxon signed-rank test, Holm-adjusted over *every* (step,
//!   series) test in the history so a long trail does not manufacture
//!   spurious change-points. Records with equal content hashes skip
//!   testing outright — equal addresses mean equal results.
//! - [`blame`] — bisection-to-blame. Once a step is flagged, the two
//!   bracketing records' per-app and per-(variable, value) cost
//!   digests are diffed to name the top regressed slice:
//!   (arch, app, variable, value) with its relative delta.
//! - [`bisect`] — replay the sweep recorded by the latest run under
//!   the *current* tree (warm from the shared sample cache when one is
//!   given) and report which historical records the tree still
//!   reproduces — the content address does the bisection.
//!
//! [`report`] renders the registry into a dependency-free static HTML
//! dashboard with hand-rolled SVG sparklines.

pub mod report;

use mlstats::holm_adjust;
use mlstats::wilcoxon::{wilcoxon_signed_rank, WilcoxonError};
use serde::Serialize;
use sweep::{CollectCore, RunCore, RunRecord};

/// History schema marker written into `history.json`.
pub const HISTORY_SCHEMA: &str = "ompobs-history-v1";

/// One run in the comparable trail.
#[derive(Debug, Clone, Serialize)]
pub struct RunBrief {
    pub seq: u64,
    pub ts_unix: u64,
    pub git_rev: String,
    /// Content address, hex.
    pub record_hash: String,
    pub samples: u64,
    pub workers: u64,
}

/// One tested series inside one step.
#[derive(Debug, Clone, Serialize)]
pub struct StepRow {
    pub series: String,
    /// Paired points tested (tail-aligned, NaN pairs dropped).
    pub n: usize,
    pub mean_a: f64,
    pub mean_b: f64,
    /// Every paired difference was exactly zero.
    pub identical: bool,
    pub p_raw: Option<f64>,
    /// Holm-adjusted over every testable row of every step.
    pub p_holm: Option<f64>,
    pub change: bool,
}

/// One consecutive pair of comparable runs.
#[derive(Debug, Clone, Serialize)]
pub struct Step {
    pub from_seq: u64,
    pub to_seq: u64,
    pub from_rev: String,
    pub to_rev: String,
    /// Equal content hashes: the step is identical by address, no
    /// tests were needed.
    pub identical: bool,
    /// Structural disagreements (an architecture present on one side
    /// only) — change-points without any statistics.
    pub structural: Vec<String>,
    pub rows: Vec<StepRow>,
    pub change_point: bool,
}

/// The sentinel's full verdict over one registry.
#[derive(Debug, Clone, Serialize)]
pub struct History {
    pub schema: String,
    pub alpha: f64,
    /// Fingerprint (hex) of the sweep spec the trail was grouped by.
    pub spec_fp: String,
    /// Total Holm family size across all steps.
    pub family: usize,
    pub runs: Vec<RunBrief>,
    pub steps: Vec<Step>,
    /// Indices into `steps` that are change-points.
    pub change_points: Vec<usize>,
    /// The verdict: any step is a change-point.
    pub change: bool,
    /// Why the trail may be shorter than the registry (context line).
    pub note: String,
}

fn collect_samples(c: &CollectCore) -> u64 {
    c.arches.iter().map(|a| a.samples).sum()
}

/// The comparable trail: collect records sharing the *latest* collect
/// record's spec fingerprint, sequence order.
pub fn comparable_trail(records: &[RunRecord]) -> Vec<&RunRecord> {
    let Some(last_fp) = records
        .iter()
        .rev()
        .find(|r| matches!(r.core, RunCore::Collect(_)))
        .map(|r| r.core.spec_fp())
    else {
        return Vec::new();
    };
    records
        .iter()
        .filter(|r| matches!(r.core, RunCore::Collect(_)) && r.core.spec_fp() == last_fp)
        .collect()
}

/// Scan the registry history for change-points at family-wise level
/// `alpha` (0.05 is the paper's).
pub fn sentinel(records: &[RunRecord], alpha: f64) -> History {
    let trail = comparable_trail(records);
    let mut history = History {
        schema: HISTORY_SCHEMA.to_string(),
        alpha,
        spec_fp: trail
            .first()
            .map(|r| format!("{:016x}", r.core.spec_fp()))
            .unwrap_or_else(|| "-".to_string()),
        family: 0,
        runs: Vec::new(),
        steps: Vec::new(),
        change_points: Vec::new(),
        change: false,
        note: String::new(),
    };
    for r in &trail {
        let RunCore::Collect(c) = &r.core else {
            continue;
        };
        history.runs.push(RunBrief {
            seq: r.seq,
            ts_unix: r.ts_unix,
            git_rev: r.git_rev.clone(),
            record_hash: format!("{:016x}", r.record_hash),
            samples: collect_samples(c),
            workers: r.info.workers,
        });
    }
    if trail.len() < 2 {
        history.note = format!(
            "{} comparable run(s) — need at least 2 for a step",
            trail.len()
        );
        return history;
    }
    history.note = format!(
        "{} comparable runs out of {} records",
        trail.len(),
        records.len()
    );

    for pair in trail.windows(2) {
        let (ra, rb) = (pair[0], pair[1]);
        let mut step = Step {
            from_seq: ra.seq,
            to_seq: rb.seq,
            from_rev: ra.git_rev.clone(),
            to_rev: rb.git_rev.clone(),
            identical: ra.record_hash == rb.record_hash,
            structural: Vec::new(),
            rows: Vec::new(),
            change_point: false,
        };
        if !step.identical {
            let (RunCore::Collect(ca), RunCore::Collect(cb)) = (&ra.core, &rb.core) else {
                unreachable!("trail holds collect records only");
            };
            compare_step(ca, cb, &mut step);
        }
        history.steps.push(step);
    }

    // One Holm family over every testable row of every step: a long
    // history is one big multiple-comparison problem, not many small
    // ones.
    let mut addresses = Vec::new();
    let mut raw = Vec::new();
    for (si, step) in history.steps.iter().enumerate() {
        for (ri, row) in step.rows.iter().enumerate() {
            if let Some(p) = row.p_raw {
                addresses.push((si, ri));
                raw.push(p);
            }
        }
    }
    history.family = raw.len();
    for (&(si, ri), &adj) in addresses.iter().zip(holm_adjust(&raw).iter()) {
        let row = &mut history.steps[si].rows[ri];
        row.p_holm = Some(adj);
        if adj <= alpha {
            row.change = true;
        }
    }
    for (si, step) in history.steps.iter_mut().enumerate() {
        step.change_point = !step.structural.is_empty() || step.rows.iter().any(|r| r.change);
        if step.change_point {
            history.change_points.push(si);
        }
    }
    history.change = !history.change_points.is_empty();
    history
}

/// Series-by-series comparison of two collect cores into `step`.
fn compare_step(ca: &CollectCore, cb: &CollectCore, step: &mut Step) {
    for a in &ca.arches {
        if !cb.arches.iter().any(|b| b.arch == a.arch) {
            step.structural
                .push(format!("{} missing in #{}", a.arch, step.to_seq));
        }
    }
    for b in &cb.arches {
        if !ca.arches.iter().any(|a| a.arch == b.arch) {
            step.structural
                .push(format!("{} missing in #{}", b.arch, step.from_seq));
        }
    }
    for a in &ca.arches {
        let Some(b) = cb.arches.iter().find(|b| b.arch == a.arch) else {
            continue;
        };
        for (k, (sa, sb)) in a.virt.iter().zip(&b.virt).enumerate() {
            push_series_row(step, format!("{}/virt/s{k}", a.arch), sa, sb);
        }
        // Energy series ride the same test: a config change that moves
        // joules without moving virtual time (a wait-policy swap, say)
        // is a change-point too. Pre-energy records carry no energy
        // series; comparing against one is skipped, not flagged — an
        // upgrade must not read as a regression.
        if !a.energy.is_empty() && !b.energy.is_empty() {
            for (k, (sa, sb)) in a.energy.iter().zip(&b.energy).enumerate() {
                push_series_row(step, format!("{}/energy/s{k}", a.arch), sa, sb);
            }
        }
    }
}

/// Test one tail-aligned series pair and append its row to the step.
fn push_series_row(
    step: &mut Step,
    series: String,
    sa: &sweep::StratumSeries,
    sb: &sweep::StratumSeries,
) {
    let (xs, ys) = paired_means(&sa.means(), &sb.means());
    let mut row = StepRow {
        series,
        n: xs.len(),
        mean_a: mean(&xs),
        mean_b: mean(&ys),
        identical: false,
        p_raw: None,
        p_holm: None,
        change: false,
    };
    match wilcoxon_signed_rank(&xs, &ys) {
        Ok(r) => row.p_raw = Some(r.p_value),
        Err(WilcoxonError::AllZeroDifferences) => row.identical = true,
        Err(_) => {}
    }
    step.rows.push(row);
}

/// Tail-aligned positional pairing (ring semantics), NaN pairs dropped.
fn paired_means(a: &[f64], b: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let n = a.len().min(b.len());
    let (mut xs, mut ys) = (Vec::with_capacity(n), Vec::with_capacity(n));
    for (&x, &y) in a[a.len() - n..].iter().zip(&b[b.len() - n..]) {
        if x.is_finite() && y.is_finite() {
            xs.push(x);
            ys.push(y);
        }
    }
    (xs, ys)
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        f64::NAN
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

impl History {
    /// Fixed-width trail report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "sentinel: {} comparable run(s), spec {} (alpha {}, Holm over {} tests)\n",
            self.runs.len(),
            self.spec_fp,
            self.alpha,
            self.family
        ));
        for r in &self.runs {
            out.push_str(&format!(
                "  run #{:<3} rev {:<12} hash {} ({} samples, {} workers)\n",
                r.seq,
                short(&r.git_rev),
                r.record_hash,
                r.samples,
                r.workers
            ));
        }
        for step in &self.steps {
            let label = format!("#{} -> #{}", step.from_seq, step.to_seq);
            if step.identical {
                out.push_str(&format!("step {label}: identical (content hashes equal)\n"));
                continue;
            }
            out.push_str(&format!(
                "step {label}: {}\n",
                if step.change_point {
                    "CHANGE-POINT"
                } else {
                    "ok"
                }
            ));
            for s in &step.structural {
                out.push_str(&format!("    structural: {s}\n"));
            }
            for row in step.rows.iter().filter(|r| r.change) {
                out.push_str(&format!(
                    "    {:<24} n={:<3} {:.4e} -> {:.4e}  p_holm={:.2e}\n",
                    row.series,
                    row.n,
                    row.mean_a,
                    row.mean_b,
                    row.p_holm.unwrap_or(f64::NAN)
                ));
            }
        }
        out.push_str(&format!(
            "VERDICT: {}\n",
            if self.change {
                "CHANGE-POINT"
            } else {
                "OK (no change-point)"
            }
        ));
        out
    }

    /// The step to blame by default: the last change-point, else the
    /// last step.
    pub fn default_bracket(&self) -> Option<(u64, u64)> {
        let step = self
            .change_points
            .last()
            .map(|&i| &self.steps[i])
            .or_else(|| self.steps.last())?;
        Some((step.from_seq, step.to_seq))
    }
}

fn short(rev: &str) -> &str {
    &rev[..rev.len().min(12)]
}

// ---------------------------------------------------------------------------
// Bisection-to-blame.

/// Delta of one digest slice between the bracketing runs.
#[derive(Debug, Clone, Serialize)]
pub struct SliceDelta {
    pub name: String,
    pub from_virt_ns: u64,
    pub to_virt_ns: u64,
    /// `(to - from) / from`; positive means slower.
    pub delta_rel: f64,
}

fn slice_delta(name: String, from: u64, to: u64) -> SliceDelta {
    let delta_rel = if from > 0 {
        (to as f64 - from as f64) / from as f64
    } else if to > 0 {
        f64::INFINITY
    } else {
        0.0
    };
    SliceDelta {
        name,
        from_virt_ns: from,
        to_virt_ns: to,
        delta_rel,
    }
}

/// The named culprit: the top regressed (arch, app, variable, value).
#[derive(Debug, Clone, Serialize)]
pub struct TopSlice {
    pub arch: String,
    pub app: String,
    pub variable: String,
    pub value: String,
    pub delta_rel: f64,
}

/// The blame verdict for one bracketing pair.
#[derive(Debug, Clone, Serialize)]
pub struct Blame {
    pub schema: String,
    pub from_seq: u64,
    pub to_seq: u64,
    pub from_rev: String,
    pub to_rev: String,
    /// Per-arch virtual-time deltas, most-regressed first.
    pub arches: Vec<SliceDelta>,
    /// Per-arch modeled-energy deltas (µJ digests), most-regressed
    /// first; empty when either bracketing record predates energy.
    pub energy: Vec<SliceDelta>,
    /// Per-app deltas within the top arch, most-regressed first.
    pub apps: Vec<SliceDelta>,
    /// Per-(variable, value) deltas within the top arch,
    /// most-regressed first (by absolute nanosecond delta).
    pub cells: Vec<SliceDelta>,
    pub top: Option<TopSlice>,
}

/// Diff the digests of two registered runs and name the top regressed
/// slice. `from_seq`/`to_seq` address records in `records`.
pub fn blame(records: &[RunRecord], from_seq: u64, to_seq: u64) -> Result<Blame, String> {
    let find = |seq: u64| -> Result<&CollectCore, String> {
        let rec = records
            .iter()
            .find(|r| r.seq == seq)
            .ok_or_else(|| format!("run #{seq} is not in the registry"))?;
        match &rec.core {
            RunCore::Collect(c) => Ok(c),
            RunCore::Bench(_) => Err(format!("run #{seq} is a bench record, not a sweep")),
        }
    };
    let ca = find(from_seq)?;
    let cb = find(to_seq)?;
    let rev_of = |seq: u64| {
        records
            .iter()
            .find(|r| r.seq == seq)
            .map(|r| r.git_rev.clone())
            .unwrap_or_default()
    };

    let mut arches: Vec<SliceDelta> = ca
        .arches
        .iter()
        .filter_map(|a| {
            cb.arches
                .iter()
                .find(|b| b.arch == a.arch)
                .map(|b| slice_delta(a.arch.clone(), a.virt_ns(), b.virt_ns()))
        })
        .collect();
    if arches.is_empty() {
        return Err("the two runs share no architecture".to_string());
    }
    sort_regressed(&mut arches);
    // Energy deltas: the second objective's view of the same bracket.
    // Gated on both sides carrying energy so a pre-energy baseline
    // never reads as a 100% energy regression.
    let mut energy: Vec<SliceDelta> = ca
        .arches
        .iter()
        .filter(|a| a.energy_uj() > 0)
        .filter_map(|a| {
            cb.arches
                .iter()
                .find(|b| b.arch == a.arch && b.energy_uj() > 0)
                .map(|b| slice_delta(a.arch.clone(), a.energy_uj(), b.energy_uj()))
        })
        .collect();
    sort_regressed(&mut energy);
    let top_arch = arches[0].name.clone();
    let da = ca
        .arches
        .iter()
        .find(|a| a.arch == top_arch)
        .expect("top arch from ca");
    let db = cb
        .arches
        .iter()
        .find(|b| b.arch == top_arch)
        .expect("top arch from cb");

    let mut apps: Vec<SliceDelta> = da
        .apps
        .iter()
        .filter_map(|a| {
            db.apps
                .iter()
                .find(|b| b.app == a.app)
                .map(|b| slice_delta(a.app.clone(), a.virt_ns, b.virt_ns))
        })
        .collect();
    sort_regressed(&mut apps);

    // Cells rank by absolute nanosecond delta: under a uniform shift
    // every cell moves by the same ratio, and the biggest slice is the
    // most informative name to print.
    let mut cells: Vec<SliceDelta> = da
        .cells
        .iter()
        .filter_map(|a| {
            db.cells
                .iter()
                .find(|b| b.variable == a.variable && b.value == a.value)
                .map(|b| slice_delta(format!("{}={}", a.variable, a.value), a.virt_ns, b.virt_ns))
        })
        .filter(|d| d.from_virt_ns > 0 || d.to_virt_ns > 0)
        .collect();
    cells.sort_by(|x, y| {
        let dx = x.to_virt_ns as i128 - x.from_virt_ns as i128;
        let dy = y.to_virt_ns as i128 - y.from_virt_ns as i128;
        dy.abs().cmp(&dx.abs())
    });

    let top = match (apps.first(), cells.first()) {
        (Some(app), Some(cell)) => {
            let (variable, value) = cell
                .name
                .split_once('=')
                .unwrap_or((cell.name.as_str(), ""));
            Some(TopSlice {
                arch: top_arch.clone(),
                app: app.name.clone(),
                variable: variable.to_string(),
                value: value.to_string(),
                delta_rel: arches[0].delta_rel,
            })
        }
        _ => None,
    };
    Ok(Blame {
        schema: "ompobs-blame-v1".to_string(),
        from_seq,
        to_seq,
        from_rev: rev_of(from_seq),
        to_rev: rev_of(to_seq),
        arches,
        energy,
        apps,
        cells,
        top,
    })
}

fn sort_regressed(v: &mut [SliceDelta]) {
    v.sort_by(|x, y| {
        y.delta_rel
            .abs()
            .partial_cmp(&x.delta_rel.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
}

impl Blame {
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "blame: run #{} (rev {}) -> run #{} (rev {})\n",
            self.from_seq,
            short(&self.from_rev),
            self.to_seq,
            short(&self.to_rev)
        ));
        for a in &self.arches {
            out.push_str(&format!(
                "  arch {:<10} {:+.2}% virtual time\n",
                a.name,
                a.delta_rel * 100.0
            ));
        }
        for a in &self.energy {
            out.push_str(&format!(
                "  arch {:<10} {:+.2}% modeled energy\n",
                a.name,
                a.delta_rel * 100.0
            ));
        }
        for a in self.apps.iter().take(3) {
            out.push_str(&format!(
                "  app  {:<10} {:+.2}%\n",
                a.name,
                a.delta_rel * 100.0
            ));
        }
        for c in self.cells.iter().take(3) {
            out.push_str(&format!(
                "  cell {:<28} {:+.2}%\n",
                c.name,
                c.delta_rel * 100.0
            ));
        }
        if let Some(t) = &self.top {
            out.push_str(&format!(
                "top regressed slice: {}/{} {}={} ({:+.2}%)\n",
                t.arch,
                t.app,
                t.variable,
                t.value,
                t.delta_rel * 100.0
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Bisection by replay: which recorded runs does the current tree still
// reproduce?

/// Result of replaying the latest recorded sweep under the current
/// tree.
#[derive(Debug, Clone, Serialize)]
pub struct Bisect {
    /// Content address the replay produced, hex.
    pub replay_hash: String,
    /// Sequence numbers of records the replay reproduces bit-exactly.
    pub matches: Vec<u64>,
    /// Trail length the replay was compared against.
    pub compared: usize,
}

/// Parse a recorded scope string back into a [`sweep::Scope`].
pub fn parse_scope(s: &str) -> Option<sweep::Scope> {
    match s {
        "Full" => Some(sweep::Scope::Full),
        "PaperSized" => Some(sweep::Scope::PaperSized),
        "Pruned" => Some(sweep::Scope::Pruned),
        other => other
            .strip_prefix("Strided(")
            .and_then(|rest| rest.strip_suffix(')'))
            .and_then(|n| n.parse().ok())
            .map(sweep::Scope::Strided),
    }
}

fn parse_roster(s: &str) -> Option<sweep::Roster> {
    match s {
        "Paper" => Some(sweep::Roster::Paper),
        "Generated" => Some(sweep::Roster::Generated),
        "All" => Some(sweep::Roster::All),
        _ => None,
    }
}

/// Re-run the sweep recorded by the latest comparable run under the
/// current tree (warm from `cache` when given) and compare content
/// addresses against the whole trail.
pub fn bisect(
    records: &[RunRecord],
    cache: Option<&sweep::SampleCache>,
    workers: usize,
) -> Result<Bisect, String> {
    let trail = comparable_trail(records);
    let last = trail.last().ok_or("no collect runs in the registry")?;
    let RunCore::Collect(recorded) = &last.core else {
        unreachable!("trail holds collect records only");
    };
    let spec = sweep::SweepSpec {
        scope: parse_scope(&recorded.scope)
            .ok_or_else(|| format!("unparsable recorded scope {:?}", recorded.scope))?,
        roster: parse_roster(&recorded.roster)
            .ok_or_else(|| format!("unparsable recorded roster {:?}", recorded.roster))?,
        reps: recorded.reps,
        seed: recorded.seed,
        failure_rate: f64::from_bits(recorded.failure_rate_bits),
    };
    let mut core = sweep::CollectCore::new(&spec);
    for digest in &recorded.arches {
        let arch = *omptune_core::Arch::ALL
            .iter()
            .find(|a| a.id() == digest.arch)
            .ok_or_else(|| format!("recorded architecture {:?} no longer exists", digest.arch))?;
        let opts = match cache {
            Some(c) => sweep::SweepOptions::new(workers.max(1)).with_cache(c),
            None => sweep::SweepOptions::new(workers.max(1)),
        };
        let outcome = sweep::sweep_arch_scheduled(arch, &spec, &opts);
        let mut batches = outcome.batches;
        let mut dropped = 0usize;
        for data in &mut batches {
            dropped += sweep::clean(data, spec.reps as usize).dropped.len();
        }
        core.push_arch(arch.id(), &batches, dropped as u64);
    }
    let replay_hash = RunCore::Collect(core).hash();
    Ok(Bisect {
        replay_hash: format!("{replay_hash:016x}"),
        matches: trail
            .iter()
            .filter(|r| r.record_hash == replay_hash)
            .map(|r| r.seq)
            .collect(),
        compared: trail.len(),
    })
}

impl Bisect {
    pub fn render(&self) -> String {
        let mut out = format!(
            "bisect: replay under the current tree hashed {}\n",
            self.replay_hash
        );
        if self.matches.is_empty() {
            out.push_str(&format!(
                "the current tree reproduces NONE of the {} comparable run(s) — behaviour changed after the last record\n",
                self.compared
            ));
        } else {
            out.push_str(&format!(
                "the current tree reproduces run(s) {:?} of {} compared — the change landed after run #{}\n",
                self.matches,
                self.compared,
                self.matches.last().expect("non-empty matches")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweep::{ArchDigest, RunInfo, StratumSeries};

    /// A hand-built digest: deterministic series, two apps, two cells.
    /// `scale` moves virtual time; `energy_scale` moves the modeled
    /// joules — independently, so tests can perturb one objective only.
    fn synth_arch(arch: &str, scale: f64, energy_scale: f64) -> ArchDigest {
        let mut virt = Vec::new();
        let mut energy = Vec::new();
        for k in 0..sweep::registry::STRATA {
            let mut s = StratumSeries::default();
            let mut e = StratumSeries::default();
            for i in 0..40u64 {
                let base = 1000.0 + (k as f64) * 37.0 + (i as f64) * 3.0;
                // Private constructor is in sweep; emulate by pushing
                // through the public fields.
                s.total += 1;
                s.counts.push(3);
                s.sum_bits.push((base * scale).to_bits());
                e.total += 1;
                e.counts.push(1);
                e.sum_bits.push((base * 0.002 * energy_scale).to_bits());
            }
            virt.push(s);
            energy.push(e);
        }
        ArchDigest {
            arch: arch.to_string(),
            settings: 4,
            samples: 320,
            dropped: 0,
            virt,
            energy,
            apps: vec![
                sweep::registry::AppDigest {
                    app: "cg".to_string(),
                    samples: 200,
                    virt_ns: (2_000_000.0 * scale) as u64,
                    energy_uj: (4_000_000.0 * energy_scale) as u64,
                },
                sweep::registry::AppDigest {
                    app: "ft".to_string(),
                    samples: 120,
                    virt_ns: (1_000_000.0 * scale) as u64,
                    energy_uj: (2_000_000.0 * energy_scale) as u64,
                },
            ],
            cells: vec![
                sweep::registry::CellDigest {
                    variable: "OMP_SCHEDULE".to_string(),
                    value: "static".to_string(),
                    samples: 160,
                    virt_ns: (1_800_000.0 * scale) as u64,
                    energy_uj: (3_600_000.0 * energy_scale) as u64,
                },
                sweep::registry::CellDigest {
                    variable: "OMP_SCHEDULE".to_string(),
                    value: "dynamic,16".to_string(),
                    samples: 160,
                    virt_ns: (1_200_000.0 * scale) as u64,
                    energy_uj: (2_400_000.0 * energy_scale) as u64,
                },
            ],
        }
    }

    fn synth_record_scaled(seq: u64, perturb: Option<(&str, f64, f64)>) -> RunRecord {
        let spec = sweep::SweepSpec::default();
        let mut core = CollectCore::new(&spec);
        for arch in ["a64fx", "skylake"] {
            let (scale, energy_scale) = match perturb {
                Some((p, f, e)) if p == arch => (f, e),
                _ => (1.0, 1.0),
            };
            core.arches.push(synth_arch(arch, scale, energy_scale));
        }
        let rc = RunCore::Collect(core);
        RunRecord {
            seq,
            ts_unix: 1_000 + seq,
            git_rev: format!("rev{seq}"),
            record_hash: rc.hash(),
            core: rc,
            info: RunInfo::default(),
        }
    }

    fn synth_record(seq: u64, perturb: Option<(&str, f64)>) -> RunRecord {
        synth_record_scaled(seq, perturb.map(|(p, f)| (p, f, f)))
    }

    #[test]
    fn identical_history_is_clean() {
        let records: Vec<RunRecord> = (0..3).map(|i| synth_record(i, None)).collect();
        let h = sentinel(&records, 0.05);
        assert_eq!(h.runs.len(), 3);
        assert_eq!(h.steps.len(), 2);
        assert!(h.steps.iter().all(|s| s.identical), "{}", h.render());
        assert!(!h.change);
        assert_eq!(h.family, 0, "identical steps run no tests");
        assert!(h.render().contains("VERDICT: OK"));
    }

    #[test]
    fn perturbed_run_is_a_change_point_and_blame_names_the_arch() {
        let mut records: Vec<RunRecord> = (0..3).map(|i| synth_record(i, None)).collect();
        records.push(synth_record(3, Some(("skylake", 1.10))));
        let h = sentinel(&records, 0.05);
        assert!(h.change, "{}", h.render());
        assert_eq!(h.change_points, vec![2], "only the last step changes");
        let step = &h.steps[2];
        assert!(step
            .rows
            .iter()
            .any(|r| r.change && r.series.starts_with("skylake/virt/")));
        assert!(
            step.rows
                .iter()
                .filter(|r| r.series.starts_with("a64fx/"))
                .all(|r| r.identical),
            "untouched arch stays identical"
        );

        let (from, to) = h.default_bracket().unwrap();
        assert_eq!((from, to), (2, 3));
        let b = blame(&records, from, to).unwrap();
        let top = b.top.as_ref().expect("top slice named");
        assert_eq!(top.arch, "skylake");
        assert_eq!(top.app, "cg");
        assert_eq!(top.variable, "OMP_SCHEDULE");
        assert_eq!(top.value, "static");
        assert!((top.delta_rel - 0.10).abs() < 1e-9, "{}", b.render());
        assert!(b.render().contains("skylake/cg OMP_SCHEDULE=static"));
        // The untouched arch reports ~0 delta.
        let a64fx = b.arches.iter().find(|a| a.name == "a64fx").unwrap();
        assert!(a64fx.delta_rel.abs() < 1e-12);
    }

    #[test]
    fn energy_only_shift_is_a_change_point() {
        // Same virtual time, different joules: the wait-policy-swap
        // shape. Only the energy series may flag; the virt rows must
        // stay identical, and blame names the arch on the energy axis.
        let mut records: Vec<RunRecord> = (0..3).map(|i| synth_record(i, None)).collect();
        records.push(synth_record_scaled(3, Some(("a64fx", 1.0, 1.25))));
        let h = sentinel(&records, 0.05);
        assert!(h.change, "{}", h.render());
        let step = &h.steps[2];
        assert!(step
            .rows
            .iter()
            .any(|r| r.change && r.series.starts_with("a64fx/energy/")));
        assert!(
            step.rows
                .iter()
                .filter(|r| r.series.contains("/virt/"))
                .all(|r| r.identical),
            "virtual time did not move"
        );
        let b = blame(&records, 2, 3).unwrap();
        let top_e = b.energy.first().expect("energy deltas present");
        assert_eq!(top_e.name, "a64fx");
        assert!((top_e.delta_rel - 0.25).abs() < 1e-9, "{}", b.render());
        assert!(b.render().contains("modeled energy"));
    }

    #[test]
    fn pre_energy_baseline_never_flags_energy() {
        // Step from a v1-era record (no energy words) to an energy
        // record: the sentinel must not test — let alone flag — the
        // energy series, and blame reports no energy deltas.
        let mut old = synth_record(0, None);
        if let RunCore::Collect(c) = &mut old.core {
            for a in &mut c.arches {
                a.energy.clear();
                for app in &mut a.apps {
                    app.energy_uj = 0;
                }
                for cell in &mut a.cells {
                    cell.energy_uj = 0;
                }
            }
        }
        old.record_hash = old.core.hash();
        let records = vec![old, synth_record(1, None)];
        let h = sentinel(&records, 0.05);
        assert!(!h.change, "{}", h.render());
        let step = &h.steps[0];
        assert!(
            step.rows.iter().all(|r| !r.series.contains("/energy/")),
            "energy rows must be skipped against a pre-energy baseline"
        );
        let b = blame(&records, 0, 1).unwrap();
        assert!(b.energy.is_empty(), "{}", b.render());
    }

    #[test]
    fn single_run_history_has_no_verdict() {
        let records = vec![synth_record(0, None)];
        let h = sentinel(&records, 0.05);
        assert!(!h.change);
        assert!(h.note.contains("need at least 2"));
    }

    #[test]
    fn bench_records_do_not_enter_the_trail() {
        let mut records: Vec<RunRecord> = (0..2).map(|i| synth_record(i, None)).collect();
        let bc = sweep::BenchCore::from_bench_json("sweep", r#"{"warm_s":0.005}"#).unwrap();
        let rc = RunCore::Bench(bc);
        records.push(RunRecord {
            seq: 2,
            ts_unix: 0,
            git_rev: "r".to_string(),
            record_hash: rc.hash(),
            core: rc,
            info: RunInfo::default(),
        });
        let h = sentinel(&records, 0.05);
        assert_eq!(h.runs.len(), 2);
        assert!(h.note.contains("2 comparable runs out of 3 records"));
    }

    #[test]
    fn scope_strings_round_trip() {
        for scope in [
            sweep::Scope::Full,
            sweep::Scope::PaperSized,
            sweep::Scope::Pruned,
            sweep::Scope::Strided(400),
        ] {
            assert_eq!(parse_scope(&format!("{scope:?}")), Some(scope));
        }
        assert_eq!(parse_scope("Strided(x)"), None);
    }
}
