//! Property-based tests of the discrete-event substrate: event ordering
//! under arbitrary insertion patterns, topology partition exactness, and
//! noise-model invariants.

use archsim::{CorePool, EventQueue, MachineDesc, NoiseModel, Topology};
use proptest::prelude::*;

fn machine_strategy() -> impl Strategy<Value = MachineDesc> {
    prop_oneof![
        Just(MachineDesc::a64fx()),
        Just(MachineDesc::skylake()),
        Just(MachineDesc::milan()),
    ]
}

proptest! {
    /// Events always pop in non-decreasing time order, and equal-time
    /// events in insertion order, for any insertion sequence.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in prop::collection::vec(0u64..1000, 1..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut popped = Vec::new();
        while let Some((t, id)) = q.pop() {
            popped.push((t, id));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "stability violated");
            }
        }
    }

    /// CorePool work conservation: total busy time equals the sum of
    /// submitted durations; makespan is within [total/n, total] for work
    /// submitted at time 0.
    #[test]
    fn core_pool_conserves_work(
        durations in prop::collection::vec(1u64..1000, 1..200),
        cores in 1usize..8,
    ) {
        let mut pool = CorePool::new(cores);
        for (i, &d) in durations.iter().enumerate() {
            // Greedy earliest-free placement.
            let core = pool.earliest_free_of(0..cores).unwrap_or(i % cores);
            pool.run(core, 0, d);
        }
        let total: u64 = durations.iter().sum();
        let busy: u64 = (0..cores).map(|c| pool.busy_ns(c)).sum();
        prop_assert_eq!(busy, total);
        prop_assert!(pool.makespan() <= total);
        prop_assert!(pool.makespan() >= total / cores as u64);
        prop_assert!(pool.utilization() <= 1.0 + 1e-12);
    }

    /// Place partitioning is an exact cover for every divisor place
    /// count, and place_of is its inverse.
    #[test]
    fn places_exactly_cover_cores(machine in machine_strategy(), denom_idx in 0usize..4) {
        let topo = Topology::new(machine.clone());
        let counts = [machine.cores, machine.sockets, machine.numa_nodes, machine.ll_caches];
        let n = counts[denom_idx];
        let places = topo.places(n);
        let mut covered = vec![false; machine.cores];
        for (pi, range) in places.iter().enumerate() {
            for c in range.clone() {
                prop_assert!(!covered[c]);
                covered[c] = true;
                prop_assert_eq!(topo.place_of(c, n), pi);
            }
        }
        prop_assert!(covered.iter().all(|x| *x));
    }

    /// Topology distance is symmetric and consistent with attribution.
    #[test]
    fn distance_symmetry(machine in machine_strategy(), a in 0usize..96, b in 0usize..96) {
        let a = a % machine.cores;
        let b = b % machine.cores;
        let topo = Topology::new(machine);
        prop_assert_eq!(topo.distance(a, b), topo.distance(b, a));
        if a == b {
            prop_assert_eq!(topo.distance(a, b), archsim::Distance::SameCore);
        }
    }

    /// Noise factors are positive, finite, and deterministic for every
    /// machine and identity.
    #[test]
    fn noise_factor_sane(seed in any::<u64>(), stream in any::<u64>(), rep in 0u32..8) {
        for m in [NoiseModel::a64fx(), NoiseModel::skylake(), NoiseModel::milan()] {
            let f = m.factor(seed, stream, rep);
            prop_assert!(f.is_finite() && f > 0.0);
            prop_assert_eq!(f, m.factor(seed, stream, rep));
            // Bounded: drift <= 25%, scatter tails < 10 sigma.
            prop_assert!(f < 1.3 * (1.0 + 10.0 * m.sigma));
        }
    }
}
