//! # archsim — machine models and a deterministic virtual-time engine
//!
//! The paper evaluated on three multicore CPUs (Fujitsu A64FX, Intel
//! Skylake 6148, AMD Milan 7643). This crate substitutes for that hardware
//! with parameterized machine descriptions and a deterministic
//! discrete-event core, so that the full 240k-sample sweep can run on any
//! host in virtual time:
//!
//! - [`machine`] — Table I encoded as [`machine::MachineDesc`] presets,
//!   including memory-system and wake-latency parameters,
//! - [`topology`] — NUMA/LLC/socket attribution, place partitioning,
//!   inter-core distance classes,
//! - [`engine`] — a deterministic event queue and the per-core
//!   availability tracker used for chunk-level execution,
//! - [`noise`] — the architecture-dependent measurement-noise model that
//!   reproduces the paper's Wilcoxon consistency findings (quiet A64FX,
//!   noisy x86 cluster nodes),
//! - [`power`] — the per-architecture power model ([`power::PowerDesc`])
//!   behind the `ompwatt` energy objective.

pub mod engine;
pub mod machine;
pub mod noise;
pub mod power;
pub mod topology;

pub use engine::{ns, CorePool, EventQueue, VTime};
pub use machine::{MachineDesc, MemoryDesc};
pub use noise::NoiseModel;
pub use power::PowerDesc;
pub use topology::{Distance, Topology};
