//! Deterministic discrete-event simulation engine.
//!
//! Virtual time is `u64` nanoseconds. The engine is a priority queue of
//! `(time, payload)` events with strict determinism: equal-time events pop
//! in insertion order (a monotone sequence number breaks ties), so a
//! simulation is a pure function of its inputs — a property the 240k-run
//! sweep and the resumable tests rely on.
//!
//! [`CorePool`] complements the queue for the chunk-level runtime
//! simulation: it tracks when each simulated core becomes free and serves
//! "run this for d ns on core c, starting no earlier than t" requests.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual time in nanoseconds.
pub type VTime = u64;

/// Convert fractional nanoseconds to the integer clock, rounding up so
/// that zero-cost work still advances time when it must.
pub fn ns(t: f64) -> VTime {
    debug_assert!(
        t >= 0.0 && t.is_finite(),
        "negative or non-finite time: {t}"
    );
    t.ceil() as VTime
}

#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct Entry(VTime, u64);

/// A deterministic event queue carrying payloads of type `T`.
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<(Entry, usize)>>,
    payloads: Vec<Option<T>>,
    seq: u64,
    now: VTime,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Create an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            payloads: Vec::new(),
            seq: 0,
            now: 0,
        }
    }

    /// Current virtual time: the timestamp of the last popped event.
    pub fn now(&self) -> VTime {
        self.now
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics when scheduling into the past — that is always a simulation
    /// bug, and catching it eagerly keeps causality honest.
    pub fn schedule(&mut self, at: VTime, payload: T) {
        assert!(
            at >= self.now,
            "scheduling into the past: {} < {}",
            at,
            self.now
        );
        let idx = self.payloads.len();
        self.payloads.push(Some(payload));
        self.heap.push(Reverse((Entry(at, self.seq), idx)));
        self.seq += 1;
    }

    /// Schedule `payload` `delay` ns after the current time.
    pub fn schedule_in(&mut self, delay: VTime, payload: T) {
        self.schedule(self.now + delay, payload);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(VTime, T)> {
        let Reverse((Entry(at, _), idx)) = self.heap.pop()?;
        self.now = at;
        let payload = self.payloads[idx].take().expect("payload popped twice");
        Some((at, payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Per-core availability tracking for chunk-level execution.
///
/// Each core has a `next_free` time; work placed on a core starts at
/// `max(requested_start, next_free)` and pushes `next_free` forward.
/// Oversubscription (more threads than cores on a place) therefore
/// serializes naturally — the mechanism behind the paper's worst-trend
/// (`master` binding at high thread counts).
#[derive(Debug, Clone, PartialEq)]
pub struct CorePool {
    next_free: Vec<VTime>,
    busy_ns: Vec<VTime>,
}

impl CorePool {
    /// A pool of `n` idle cores at time zero.
    pub fn new(n: usize) -> CorePool {
        assert!(n > 0, "need at least one core");
        CorePool {
            next_free: vec![0; n],
            busy_ns: vec![0; n],
        }
    }

    /// Number of cores.
    pub fn len(&self) -> usize {
        self.next_free.len()
    }

    /// Always false; pools have at least one core.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Run `duration` ns of work on `core`, starting no earlier than
    /// `earliest`. Returns `(start, end)`.
    pub fn run(&mut self, core: usize, earliest: VTime, duration: VTime) -> (VTime, VTime) {
        let start = self.next_free[core].max(earliest);
        let end = start + duration;
        self.next_free[core] = end;
        self.busy_ns[core] += duration;
        (start, end)
    }

    /// When `core` next becomes free.
    pub fn free_at(&self, core: usize) -> VTime {
        self.next_free[core]
    }

    /// Among `cores`, the one that frees up first (ties go to the lowest
    /// index, deterministically).
    pub fn earliest_free_of(&self, cores: impl IntoIterator<Item = usize>) -> Option<usize> {
        let mut best: Option<(VTime, usize)> = None;
        for c in cores {
            let t = self.next_free[c];
            if best.is_none_or(|(bt, bc)| t < bt || (t == bt && c < bc)) {
                best = Some((t, c));
            }
        }
        best.map(|(_, c)| c)
    }

    /// Total busy nanoseconds accumulated on `core`.
    pub fn busy_ns(&self, core: usize) -> VTime {
        self.busy_ns[core]
    }

    /// The time by which every core is free — the pool-wide makespan.
    pub fn makespan(&self) -> VTime {
        self.next_free.iter().copied().max().unwrap_or(0)
    }

    /// Aggregate utilization in `[0, 1]` relative to the makespan.
    pub fn utilization(&self) -> f64 {
        let span = self.makespan();
        if span == 0 {
            return 0.0;
        }
        let busy: u128 = self.busy_ns.iter().map(|b| *b as u128).sum();
        busy as f64 / (span as u128 * self.next_free.len() as u128) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.now(), 20);
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_time_events_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.pop();
        q.schedule(5, ());
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(10, 1);
        q.pop();
        q.schedule_in(7, 2);
        assert_eq!(q.pop(), Some((17, 2)));
    }

    #[test]
    fn core_pool_serializes_on_one_core() {
        let mut p = CorePool::new(2);
        let (s1, e1) = p.run(0, 0, 100);
        let (s2, e2) = p.run(0, 0, 50);
        assert_eq!((s1, e1), (0, 100));
        assert_eq!((s2, e2), (100, 150)); // waits for the first chunk
        let (s3, e3) = p.run(1, 0, 30);
        assert_eq!((s3, e3), (0, 30)); // other core is free
        assert_eq!(p.makespan(), 150);
    }

    #[test]
    fn earliest_free_prefers_lowest_index_on_tie() {
        let mut p = CorePool::new(4);
        p.run(0, 0, 10);
        p.run(2, 0, 5);
        assert_eq!(p.earliest_free_of([0, 1, 2, 3]), Some(1)); // 1 and 3 free at 0
        assert_eq!(p.earliest_free_of([0, 2]), Some(2));
        assert_eq!(p.earliest_free_of(std::iter::empty()), None);
    }

    #[test]
    fn utilization_bounds() {
        let mut p = CorePool::new(2);
        p.run(0, 0, 100);
        p.run(1, 0, 100);
        assert!((p.utilization() - 1.0).abs() < 1e-12);
        let mut p = CorePool::new(2);
        p.run(0, 0, 100);
        assert!((p.utilization() - 0.5).abs() < 1e-12);
        assert_eq!(CorePool::new(3).utilization(), 0.0);
    }

    #[test]
    fn ns_rounds_up() {
        assert_eq!(ns(0.0), 0);
        assert_eq!(ns(0.1), 1);
        assert_eq!(ns(5.0), 5);
    }
}
