//! Machine descriptions for the studied CPUs (paper Table I).
//!
//! A [`MachineDesc`] captures exactly the architectural facts the tuning
//! effects depend on: core/socket/NUMA/LLC topology, clock, cache-line
//! size, memory technology (bandwidth and latency, local vs. remote), and
//! the OS-level thread wake-up latency. The three presets encode Table I
//! plus public microarchitectural figures (HBM2 vs. DDR4 bandwidths,
//! typical futex wake latencies).

use serde::{Deserialize, Serialize};

/// Memory-system parameters of one machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryDesc {
    /// Peak bandwidth *per NUMA node* in GiB/s.
    pub node_bw_gibs: f64,
    /// Load-to-use latency for node-local accesses, nanoseconds.
    pub local_latency_ns: f64,
    /// Latency multiplier for accesses to a remote NUMA node.
    pub remote_factor: f64,
}

/// A complete machine description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineDesc {
    /// Identifier, e.g. `"a64fx"`.
    pub name: String,
    pub cores: usize,
    pub sockets: usize,
    pub numa_nodes: usize,
    /// Number of last-level-cache groups.
    pub ll_caches: usize,
    pub clock_ghz: f64,
    /// Cache-line size in bytes.
    pub cacheline: u32,
    pub mem: MemoryDesc,
    /// Latency to wake a sleeping (parked) thread, nanoseconds. Paid when
    /// a parallel region starts after workers exhausted their blocktime.
    pub wake_latency_ns: f64,
    /// Latency to resume a spinning thread, nanoseconds.
    pub spin_wake_ns: f64,
}

impl MachineDesc {
    /// Fujitsu A64FX (Ookami): 48 cores in 4 CMGs, HBM2, 256 B lines.
    pub fn a64fx() -> MachineDesc {
        MachineDesc {
            name: "a64fx".into(),
            cores: 48,
            sockets: 1,
            numa_nodes: 4,
            ll_caches: 4,
            clock_ghz: 1.8,
            cacheline: 256,
            mem: MemoryDesc {
                // 1 TiB/s aggregate HBM2 over 4 CMGs.
                node_bw_gibs: 256.0,
                local_latency_ns: 130.0,
                remote_factor: 1.9,
            },
            wake_latency_ns: 10_500.0,
            spin_wake_ns: 220.0,
        }
    }

    /// Intel Xeon Gold 6148 (Skylake): 2 × 20 cores, 6-channel DDR4-2666.
    pub fn skylake() -> MachineDesc {
        MachineDesc {
            name: "skylake".into(),
            cores: 40,
            sockets: 2,
            numa_nodes: 2,
            ll_caches: 2,
            clock_ghz: 2.4,
            cacheline: 64,
            mem: MemoryDesc {
                // ~128 GB/s per socket (6 ch × DDR4-2666).
                node_bw_gibs: 119.0,
                local_latency_ns: 89.0,
                remote_factor: 1.7,
            },
            wake_latency_ns: 5_000.0,
            spin_wake_ns: 120.0,
        }
    }

    /// AMD EPYC 7643 (Milan): 2 × 48 cores, NPS4 → 8 NUMA nodes, 12 CCXs.
    pub fn milan() -> MachineDesc {
        MachineDesc {
            name: "milan".into(),
            cores: 96,
            sockets: 2,
            numa_nodes: 8,
            ll_caches: 12,
            clock_ghz: 2.3,
            cacheline: 64,
            mem: MemoryDesc {
                // 8-channel DDR4-3200 per socket split over 4 NPS domains.
                node_bw_gibs: 51.0,
                local_latency_ns: 96.0,
                remote_factor: 2.2,
            },
            wake_latency_ns: 3_000.0,
            spin_wake_ns: 140.0,
        }
    }

    /// Look up a preset by its dataset identifier.
    pub fn by_name(name: &str) -> Option<MachineDesc> {
        match name {
            "a64fx" => Some(MachineDesc::a64fx()),
            "skylake" => Some(MachineDesc::skylake()),
            "milan" => Some(MachineDesc::milan()),
            _ => None,
        }
    }

    /// Cores per NUMA node.
    pub fn cores_per_numa(&self) -> usize {
        self.cores / self.numa_nodes
    }

    /// Cores per LLC group.
    pub fn cores_per_llc(&self) -> usize {
        self.cores / self.ll_caches
    }

    /// Cores per socket.
    pub fn cores_per_socket(&self) -> usize {
        self.cores / self.sockets
    }

    /// Cycles → virtual nanoseconds at this machine's clock.
    pub fn cycles_to_ns(&self, cycles: f64) -> f64 {
        cycles / self.clock_ghz
    }

    /// Validate internal consistency (topology divides evenly, positive
    /// rates). Used by property tests and on deserialized descriptions.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err("zero cores".into());
        }
        for (what, n) in [
            ("sockets", self.sockets),
            ("numa_nodes", self.numa_nodes),
            ("ll_caches", self.ll_caches),
        ] {
            if n == 0 {
                return Err(format!("zero {what}"));
            }
            if !self.cores.is_multiple_of(n) {
                return Err(format!("cores not divisible by {what}"));
            }
        }
        if self.clock_ghz <= 0.0 || self.mem.node_bw_gibs <= 0.0 {
            return Err("non-positive rate".into());
        }
        if self.mem.remote_factor < 1.0 {
            return Err("remote access cannot be cheaper than local".into());
        }
        if !self.cacheline.is_power_of_two() {
            return Err("cache line must be a power of two".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table1() {
        let a = MachineDesc::a64fx();
        assert_eq!((a.cores, a.numa_nodes, a.cacheline), (48, 4, 256));
        assert_eq!(a.clock_ghz, 1.8);
        let s = MachineDesc::skylake();
        assert_eq!((s.cores, s.sockets, s.cacheline), (40, 2, 64));
        let m = MachineDesc::milan();
        assert_eq!((m.cores, m.numa_nodes, m.cacheline), (96, 8, 64));
    }

    #[test]
    fn presets_validate() {
        for name in ["a64fx", "skylake", "milan"] {
            MachineDesc::by_name(name).unwrap().validate().unwrap();
        }
        assert!(MachineDesc::by_name("power9").is_none());
    }

    #[test]
    fn a64fx_has_highest_per_node_bandwidth() {
        // HBM vs DDR4: the memory-bound tuning effects depend on this order.
        assert!(MachineDesc::a64fx().mem.node_bw_gibs > MachineDesc::skylake().mem.node_bw_gibs);
        assert!(MachineDesc::skylake().mem.node_bw_gibs > MachineDesc::milan().mem.node_bw_gibs);
    }

    #[test]
    fn topology_division() {
        let m = MachineDesc::milan();
        assert_eq!(m.cores_per_numa(), 12);
        assert_eq!(m.cores_per_llc(), 8);
        assert_eq!(m.cores_per_socket(), 48);
    }

    #[test]
    fn cycles_conversion() {
        let m = MachineDesc::skylake();
        assert!((m.cycles_to_ns(2.4e9) - 1e9).abs() < 1.0);
    }

    #[test]
    fn validate_rejects_bad_descriptions() {
        let mut m = MachineDesc::milan();
        m.cores = 97; // not divisible by anything
        assert!(m.validate().is_err());
        let mut m = MachineDesc::milan();
        m.mem.remote_factor = 0.5;
        assert!(m.validate().is_err());
        let mut m = MachineDesc::milan();
        m.cacheline = 96;
        assert!(m.validate().is_err());
    }
}
