//! Architecture-dependent measurement-noise model.
//!
//! The paper's consistency analysis (Sec. IV-C) shows a very specific
//! noise structure that a naive i.i.d. model cannot reproduce:
//!
//! - **Table III**: repeated runs are consistent on A64FX (Wilcoxon
//!   p ≈ 0.7–0.9) but *systematically* different on the x86 machines
//!   (p ≈ 0 for most pairs — yet p = 0.19 for Skylake's (R0, R1) pair);
//! - **Table IV**: the Milan means shift by ~20 % between run batches
//!   (0.135 / 0.109 / 0.111 s) while Skylake's barely move
//!   (0.061 / 0.062 / 0.062 s);
//! - the per-configuration *speedups* (ratios of averaged runtimes)
//!   remain clean enough that e.g. XSBench/Skylake's best is only 1.002×.
//!
//! The structure that produces all three at once: a **batch-level drift**
//! factor shared by every sample of one repetition (cluster load varies
//! between sweep batches — it shifts the whole batch, which the
//! signed-rank test flags with p ≈ 0, but cancels out of ratios of
//! averages), plus a small i.i.d. log-normal scatter per sample (which
//! bounds how much noise can leak into max-speedup statistics).

use serde::{Deserialize, Serialize};

/// Noise parameters of one architecture/cluster partition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Log-normal sigma of per-sample scatter (0 = perfectly quiet).
    pub sigma: f64,
    /// Multiplicative batch drift per repetition index: repetition `r`
    /// of every sample is scaled by `1 + rep_offsets[r % 4]`.
    pub rep_offsets: [f64; 4],
}

impl NoiseModel {
    /// Quiet dedicated partition (A64FX/Ookami): negligible scatter,
    /// no batch drift.
    pub fn a64fx() -> NoiseModel {
        NoiseModel {
            sigma: 0.0005,
            rep_offsets: [0.0; 4],
        }
    }

    /// Skylake/SeaWulf: small scatter; batches R0 and R1 ran under the
    /// same cluster load (p = 0.19 in Table III) while R2/R3 drifted
    /// slightly but systematically.
    pub fn skylake() -> NoiseModel {
        NoiseModel {
            sigma: 0.002,
            rep_offsets: [0.0, 0.0, 0.006, 0.003],
        }
    }

    /// Milan/SeaWulf: the busiest partition — R0 ran ~20 % slower than
    /// later batches (Table IV: 0.135 vs 0.109/0.111 s).
    pub fn milan() -> NoiseModel {
        NoiseModel {
            sigma: 0.003,
            rep_offsets: [0.22, 0.0, 0.005, 0.018],
        }
    }

    /// Pick the model used for a machine by name.
    pub fn for_machine(name: &str) -> NoiseModel {
        match name {
            "a64fx" => NoiseModel::a64fx(),
            "skylake" => NoiseModel::skylake(),
            "milan" => NoiseModel::milan(),
            _ => NoiseModel {
                sigma: 0.01,
                rep_offsets: [0.0; 4],
            },
        }
    }

    /// Multiplicative noise factor for run repetition `rep` of the sample
    /// identified by `stream` under `seed`. Always positive; 1.0 means no
    /// perturbation. Deterministic in all arguments.
    pub fn factor(&self, seed: u64, stream: u64, rep: u32) -> f64 {
        let z = gaussian(seed, stream, rep as u64);
        let drift = 1.0 + self.rep_offsets[(rep % 4) as usize];
        (self.sigma * z).exp() * drift
    }
}

/// SplitMix64: tiny, high-quality, stateless mixing.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A standard-normal variate derived deterministically from the three
/// identifiers via Box–Muller on two SplitMix64 uniforms.
fn gaussian(seed: u64, stream: u64, rep: u64) -> f64 {
    let k = splitmix64(seed ^ splitmix64(stream ^ splitmix64(rep)));
    let u1 = ((k >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
    let k2 = splitmix64(k);
    let u2 = ((k2 >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn std_of(xs: &[f64]) -> f64 {
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
    }

    #[test]
    fn factors_are_deterministic() {
        let m = NoiseModel::milan();
        assert_eq!(m.factor(1, 2, 3), m.factor(1, 2, 3));
        assert_ne!(m.factor(1, 2, 3), m.factor(1, 2, 7));
        assert_ne!(m.factor(1, 2, 3), m.factor(1, 3, 3));
    }

    #[test]
    fn a64fx_stays_near_one() {
        let m = NoiseModel::a64fx();
        for stream in 0..500 {
            for rep in 0..4 {
                let f = m.factor(42, stream, rep);
                assert!((f - 1.0).abs() < 0.01, "factor {f} too far from 1");
            }
        }
    }

    #[test]
    fn x86_scatter_exceeds_a64fx() {
        let spread = |m: &NoiseModel| {
            let fs: Vec<f64> = (0..2000).map(|s| m.factor(7, s, 1)).collect();
            std_of(&fs)
        };
        assert!(spread(&NoiseModel::milan()) > 3.0 * spread(&NoiseModel::a64fx()));
    }

    #[test]
    fn milan_batch_zero_runs_slow() {
        // The Table IV pattern: R0 ≈ 1.22×, R1/R2 ≈ 1.0×.
        let m = NoiseModel::milan();
        let mean = |rep: u32| (0..2000).map(|s| m.factor(5, s, rep)).sum::<f64>() / 2000.0;
        assert!((mean(0) - 1.22).abs() < 0.01);
        assert!((mean(1) - 1.00).abs() < 0.01);
    }

    #[test]
    fn skylake_first_pair_matches_later_pairs_differ() {
        let m = NoiseModel::skylake();
        let mean = |rep: u32| (0..2000).map(|s| m.factor(5, s, rep)).sum::<f64>() / 2000.0;
        assert!(
            (mean(0) - mean(1)).abs() < 0.001,
            "R0 and R1 share the drift"
        );
        assert!(
            (mean(1) - mean(2)).abs() > 0.004,
            "R2 drifts systematically"
        );
    }

    #[test]
    fn factors_always_positive() {
        for m in [
            NoiseModel::a64fx(),
            NoiseModel::skylake(),
            NoiseModel::milan(),
        ] {
            for s in 0..1000 {
                for rep in 0..4 {
                    assert!(m.factor(99, s, rep) > 0.0);
                }
            }
        }
    }

    #[test]
    fn machine_mapping() {
        assert_eq!(NoiseModel::for_machine("a64fx"), NoiseModel::a64fx());
        assert_eq!(NoiseModel::for_machine("skylake"), NoiseModel::skylake());
        assert_eq!(NoiseModel::for_machine("milan"), NoiseModel::milan());
    }

    #[test]
    fn drift_cancels_in_ratios_of_averages() {
        // The property that keeps speedups clean: averaging the same reps
        // of two samples and taking the ratio removes the batch drift.
        let m = NoiseModel::milan();
        let avg =
            |stream: u64| -> f64 { (0..3).map(|r| m.factor(1, stream, r)).sum::<f64>() / 3.0 };
        let ratio = avg(10) / avg(20);
        assert!((ratio - 1.0).abs() < 0.01, "ratio {ratio}");
    }
}
