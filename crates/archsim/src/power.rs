//! Per-architecture power models for the studied CPUs.
//!
//! A [`PowerDesc`] captures the electrical side of Table I: what one
//! core draws while computing, stalling on memory, spinning, yielding,
//! or sitting idle, the DVFS boost a lone serial thread enjoys, the
//! package base (uncore) draw, and the per-byte energy of the memory
//! technology. The presets encode public TDP and access-energy figures
//! for the three machines (HBM2 vs. DDR4), calibrated — like the time
//! model — for *shape*: which wait policy burns more power, which
//! machine pays most for memory traffic, not vendor-exact wattage.
//!
//! The model is deliberately a pure function of the machine description
//! and a virtual-time breakdown: no clocks, no randomness, so priced
//! energy is bit-identically reproducible at any worker count.

use serde::{Deserialize, Serialize};

/// Electrical parameters of one machine. All `*_w` fields are watts per
/// core (except `boost_w` and `uncore_w`, see their docs);
/// `dram_pj_per_byte` is picojoules per byte moved to/from DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerDesc {
    /// Draw of a core running compute at nominal clock.
    pub core_active_w: f64,
    /// Draw of a core stalled on memory (execution units gated).
    pub core_memstall_w: f64,
    /// Draw of a core hard-spinning on a flag (`turnaround` waits).
    pub core_spin_w: f64,
    /// Draw of a core in a yielding spin loop (`throughput` waits).
    pub core_yield_w: f64,
    /// Draw of a core parked in a sleep state (blocktime expired).
    pub core_idle_w: f64,
    /// Extra draw of the *one* active core in a serial section: with
    /// the rest of the package quiet, DVFS boosts its clock and voltage.
    pub boost_w: f64,
    /// Package base draw (uncore, interconnect, caches), whole machine.
    pub uncore_w: f64,
    /// Energy per byte of DRAM traffic, picojoules.
    pub dram_pj_per_byte: f64,
}

impl PowerDesc {
    /// Fujitsu A64FX: ~160 W TDP over 48 cores, HBM2 (cheap bytes),
    /// conservative clocking — little serial boost headroom.
    pub fn a64fx() -> PowerDesc {
        PowerDesc {
            core_active_w: 2.2,
            core_memstall_w: 1.5,
            core_spin_w: 1.9,
            core_yield_w: 1.1,
            core_idle_w: 0.25,
            boost_w: 0.5,
            uncore_w: 40.0,
            dram_pj_per_byte: 35.0,
        }
    }

    /// Intel Xeon Gold 6148 (Skylake): 2 × 150 W TDP over 40 cores,
    /// DDR4-2666 (expensive bytes), aggressive single-core turbo.
    pub fn skylake() -> PowerDesc {
        PowerDesc {
            core_active_w: 3.6,
            core_memstall_w: 2.4,
            core_spin_w: 3.2,
            core_yield_w: 1.8,
            core_idle_w: 0.5,
            boost_w: 1.6,
            uncore_w: 55.0,
            dram_pj_per_byte: 100.0,
        }
    }

    /// AMD EPYC 7643 (Milan): 2 × 225 W TDP over 96 cores, DDR4-3200,
    /// moderate boost, big IO-die uncore.
    pub fn milan() -> PowerDesc {
        PowerDesc {
            core_active_w: 2.9,
            core_memstall_w: 2.0,
            core_spin_w: 2.6,
            core_yield_w: 1.5,
            core_idle_w: 0.35,
            boost_w: 2.0,
            uncore_w: 90.0,
            dram_pj_per_byte: 100.0,
        }
    }

    /// Look up a preset by its dataset identifier (same names as
    /// [`crate::MachineDesc::by_name`]).
    pub fn by_name(name: &str) -> Option<PowerDesc> {
        match name {
            "a64fx" => Some(PowerDesc::a64fx()),
            "skylake" => Some(PowerDesc::skylake()),
            "milan" => Some(PowerDesc::milan()),
            _ => None,
        }
    }

    /// Validate internal consistency: positive draws, and the wait-state
    /// ordering every energy conclusion rests on — a parked core draws
    /// less than a yielding one, which draws less than a hard spinner,
    /// which draws no more than full compute.
    pub fn validate(&self) -> Result<(), String> {
        for (what, w) in [
            ("core_active_w", self.core_active_w),
            ("core_memstall_w", self.core_memstall_w),
            ("core_spin_w", self.core_spin_w),
            ("core_yield_w", self.core_yield_w),
            ("core_idle_w", self.core_idle_w),
            ("uncore_w", self.uncore_w),
            ("dram_pj_per_byte", self.dram_pj_per_byte),
        ] {
            if !(w > 0.0 && w.is_finite()) {
                return Err(format!("non-positive {what}"));
            }
        }
        if !(self.boost_w >= 0.0 && self.boost_w.is_finite()) {
            return Err("negative boost_w".into());
        }
        if self.core_idle_w >= self.core_yield_w {
            return Err("idle must draw less than a yielding spin".into());
        }
        if self.core_yield_w >= self.core_spin_w {
            return Err("yielding spin must draw less than a hard spin".into());
        }
        if self.core_spin_w > self.core_active_w {
            return Err("a spinning core cannot out-draw full compute".into());
        }
        if self.core_memstall_w > self.core_active_w {
            return Err("a stalled core cannot out-draw full compute".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for name in ["a64fx", "skylake", "milan"] {
            PowerDesc::by_name(name).unwrap().validate().unwrap();
        }
        assert!(PowerDesc::by_name("power9").is_none());
    }

    #[test]
    fn wait_state_ordering_holds_on_every_preset() {
        for p in [PowerDesc::a64fx(), PowerDesc::skylake(), PowerDesc::milan()] {
            assert!(p.core_idle_w < p.core_yield_w);
            assert!(p.core_yield_w < p.core_spin_w);
            assert!(p.core_spin_w <= p.core_active_w);
        }
    }

    #[test]
    fn hbm_bytes_are_cheaper_than_ddr4() {
        assert!(PowerDesc::a64fx().dram_pj_per_byte < PowerDesc::skylake().dram_pj_per_byte);
        assert!(PowerDesc::a64fx().dram_pj_per_byte < PowerDesc::milan().dram_pj_per_byte);
    }

    #[test]
    fn validate_rejects_bad_descriptions() {
        let mut p = PowerDesc::milan();
        p.core_idle_w = p.core_yield_w + 1.0;
        assert!(p.validate().is_err());
        let mut p = PowerDesc::milan();
        p.core_spin_w = p.core_active_w * 2.0;
        assert!(p.validate().is_err());
        let mut p = PowerDesc::milan();
        p.uncore_w = 0.0;
        assert!(p.validate().is_err());
    }
}
