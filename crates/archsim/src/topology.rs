//! Core topology: which NUMA node / LLC group / socket a core belongs to,
//! place partitioning, and inter-core distances.
//!
//! Cores are numbered contiguously: core `i` lives in socket
//! `i / cores_per_socket`, NUMA node `i / cores_per_numa`, LLC group
//! `i / cores_per_llc` — the standard linear enumeration `hwloc` reports
//! on these machines.

use crate::machine::MachineDesc;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Topological distance between two cores, ordered from cheapest to most
/// expensive communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Distance {
    /// The same core.
    SameCore,
    /// Same last-level-cache group (data moves through the shared cache).
    SameLlc,
    /// Same NUMA node but different LLC group.
    SameNuma,
    /// Same socket, different NUMA node (e.g. Milan NPS4 domains).
    SameSocket,
    /// Different sockets (cross-interconnect).
    CrossSocket,
}

/// Topology queries over a machine description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    machine: MachineDesc,
}

impl Topology {
    /// Build a topology for `machine`.
    ///
    /// # Panics
    /// Panics if the machine fails validation; topologies over inconsistent
    /// machines would silently misattribute cores.
    pub fn new(machine: MachineDesc) -> Topology {
        machine.validate().expect("invalid machine description");
        Topology { machine }
    }

    /// The underlying machine.
    pub fn machine(&self) -> &MachineDesc {
        &self.machine
    }

    /// NUMA node of a core.
    pub fn numa_of(&self, core: usize) -> usize {
        debug_assert!(core < self.machine.cores);
        core / self.machine.cores_per_numa()
    }

    /// LLC group of a core.
    pub fn llc_of(&self, core: usize) -> usize {
        debug_assert!(core < self.machine.cores);
        core / self.machine.cores_per_llc()
    }

    /// Socket of a core.
    pub fn socket_of(&self, core: usize) -> usize {
        debug_assert!(core < self.machine.cores);
        core / self.machine.cores_per_socket()
    }

    /// Distance class between two cores.
    pub fn distance(&self, a: usize, b: usize) -> Distance {
        if a == b {
            Distance::SameCore
        } else if self.llc_of(a) == self.llc_of(b) {
            Distance::SameLlc
        } else if self.numa_of(a) == self.numa_of(b) {
            Distance::SameNuma
        } else if self.socket_of(a) == self.socket_of(b) {
            Distance::SameSocket
        } else {
            Distance::CrossSocket
        }
    }

    /// Partition the cores into `n_places` equal contiguous places.
    /// This is how `OMP_PLACES=cores|ll_caches|sockets` maps onto the
    /// linear core enumeration.
    ///
    /// # Panics
    /// Panics when `n_places` does not divide the core count or is zero.
    pub fn places(&self, n_places: usize) -> Vec<Range<usize>> {
        assert!(n_places > 0, "need at least one place");
        assert_eq!(
            self.machine.cores % n_places,
            0,
            "places must evenly partition the cores"
        );
        let per = self.machine.cores / n_places;
        (0..n_places).map(|p| p * per..(p + 1) * per).collect()
    }

    /// The place index (of `n_places` contiguous places) containing `core`.
    pub fn place_of(&self, core: usize, n_places: usize) -> usize {
        let per = self.machine.cores / n_places;
        core / per
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineDesc;

    #[test]
    fn milan_core_attribution() {
        let t = Topology::new(MachineDesc::milan());
        // 12 cores per NUMA node, 8 per LLC (CCX), 48 per socket.
        assert_eq!(t.numa_of(0), 0);
        assert_eq!(t.numa_of(11), 0);
        assert_eq!(t.numa_of(12), 1);
        assert_eq!(t.llc_of(7), 0);
        assert_eq!(t.llc_of(8), 1);
        assert_eq!(t.socket_of(47), 0);
        assert_eq!(t.socket_of(48), 1);
    }

    #[test]
    fn distance_ordering() {
        let t = Topology::new(MachineDesc::milan());
        assert_eq!(t.distance(0, 0), Distance::SameCore);
        assert_eq!(t.distance(0, 7), Distance::SameLlc);
        assert_eq!(t.distance(0, 8), Distance::SameNuma); // same NUMA, next CCX
        assert_eq!(t.distance(0, 12), Distance::SameSocket); // next NPS domain
        assert_eq!(t.distance(0, 48), Distance::CrossSocket);
        // Distance is symmetric.
        assert_eq!(t.distance(48, 0), Distance::CrossSocket);
    }

    #[test]
    fn a64fx_llc_equals_numa() {
        // On A64FX, CMG = NUMA node = L2 group.
        let t = Topology::new(MachineDesc::a64fx());
        for core in 0..48 {
            assert_eq!(t.numa_of(core), t.llc_of(core));
        }
        assert_eq!(t.socket_of(47), 0);
    }

    #[test]
    fn places_partition_exactly() {
        let t = Topology::new(MachineDesc::skylake());
        for n in [1, 2, 40] {
            let places = t.places(n);
            assert_eq!(places.len(), n);
            let covered: usize = places.iter().map(|r| r.len()).sum();
            assert_eq!(covered, 40);
            // Contiguous and disjoint.
            for w in places.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            for (i, p) in places.iter().enumerate() {
                for c in p.clone() {
                    assert_eq!(t.place_of(c, n), i);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "evenly partition")]
    fn uneven_places_rejected() {
        let t = Topology::new(MachineDesc::skylake());
        let _ = t.places(3); // 40 % 3 != 0
    }
}
