//! # ompprof — the explanation layer over the omptune telemetry stack
//!
//! The sweep harness can say *which* configuration won; `ompprof` says
//! *why*. Three pieces:
//!
//! - [`attrib`] — fold every sample's sink [`omptel::Breakdown`] into
//!   exact, mergeable per-(variable, value) marginal-cost profiles.
//!   Accumulation is integer (2^16 fixed point), so shard-and-merge is
//!   byte-identical to whole-sweep folding — the property the paper's
//!   months-long, multi-cluster collection workflow needs to combine
//!   partial profiles safely.
//! - [`flame`] — differential profiler: render two configurations'
//!   [`simrt::explain`] phase trees as folded stacks and dependency-free
//!   SVG flame graphs, including a signed red/blue diff view that turns
//!   a best-vs-worst runtime gap into a picture of where the time goes.
//! - the `ompprof` binary — `attribute` and `diff` subcommands wiring
//!   both onto live sweeps or exported `raw_batches.json`, with a
//!   `--check` mode that cross-validates the attribution ranking against
//!   the logistic-regression influence ranking (paper Figs. 2–4).
//!
//! Exit codes follow the repo convention (omplint/ompfuzz/ompmon):
//! 0 = clean, 4 = findings (ranking disagreement), 2 = usage error,
//! 1 = internal error.

pub mod attrib;
pub mod flame;

pub use attrib::{sink_key, value_index, value_labels, Attribution, Cell, SliceMeta, FP_SCALE};
pub use flame::{diff_svg, energy_diff_svg, explanation_tree, folded, svg, Frame};
