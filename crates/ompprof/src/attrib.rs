//! Sweep-wide cost attribution: fold every sample's sink breakdown —
//! and its modeled energy — into per-(variable, value) marginal-cost
//! cells, so each tuning value carries both a mean-time and a
//! mean-joules column.
//!
//! The accumulator is *exact*: every nanosecond figure is rounded once
//! into 2^16 fixed point and summed in `i128`, so accumulation is
//! associative and commutative — folding per-worker shards and merging
//! them is byte-identical to folding the whole sweep in one pass, at any
//! shard boundary. That is the property the `merge_props` suite pins
//! down and the property that lets profiles from separate collection
//! runs be combined without re-reading raw samples.
//!
//! The sum-to-total invariant of [`omptel::Breakdown`] survives folding:
//! each cell's seven sink sums add up to its total (all are sums of
//! per-sample figures that already closed against their totals, rounded
//! with the same rule).

use omptune_core::{Feature, KmpAlignAlloc, TuningConfig};
use sweep::{RawSample, SettingData};

/// Fixed-point scale: 2^16 fractional bits. A sample's f64 nanosecond
/// figure is rounded once on entry; sums are exact from then on.
pub const FP_SCALE: f64 = 65536.0;

/// Round one nanosecond figure into fixed point. Non-finite figures
/// (failed reps never produce them in telemetry, but be total) fold as
/// zero so a corrupt sample cannot poison a whole profile.
fn to_fp(ns: f64) -> i128 {
    if ns.is_finite() {
        (ns * FP_SCALE).round() as i128
    } else {
        0
    }
}

/// Fixed point back to (approximate) nanoseconds for presentation.
fn from_fp(fp: i128) -> f64 {
    fp as f64 / FP_SCALE
}

/// The union value domain of one tuning variable: stable labels, stable
/// order, identical on every architecture (architectures that do not
/// sweep a value simply leave its cell empty).
pub fn value_labels(feature: Feature) -> Vec<String> {
    use omptune_core::{
        KmpBlocktime, KmpForceReduction, KmpLibrary, OmpPlaces, OmpProcBind, OmpSchedule,
    };
    let unset = |v: Option<&str>| v.unwrap_or("unset").to_string();
    match feature {
        Feature::Places => OmpPlaces::ALL
            .iter()
            .map(|v| unset(v.env_value()))
            .collect(),
        Feature::ProcBind => OmpProcBind::ALL
            .iter()
            .map(|v| unset(v.env_value()))
            .collect(),
        Feature::Schedule => OmpSchedule::ALL
            .iter()
            .map(|v| v.env_value().to_string())
            .collect(),
        Feature::Library => KmpLibrary::ALL
            .iter()
            .map(|v| v.env_value().to_string())
            .collect(),
        Feature::Blocktime => KmpBlocktime::ALL
            .iter()
            .map(|v| v.env_value().to_string())
            .collect(),
        Feature::ForceReduction => KmpForceReduction::ALL
            .iter()
            .map(|v| unset(v.env_value()))
            .collect(),
        Feature::AlignAlloc => ALIGN_UNION.iter().map(|b| b.to_string()).collect(),
        other => panic!("{other:?} is not an attributable tuning variable"),
    }
}

/// Union alignment domain across architectures (A64FX sweeps only the
/// upper two; its lower cells stay empty).
const ALIGN_UNION: [u32; 4] = [64, 128, 256, 512];

/// Index of a configuration's value within [`value_labels`] order.
pub fn value_index(config: &TuningConfig, feature: Feature) -> usize {
    use omptune_core::{
        KmpBlocktime, KmpForceReduction, KmpLibrary, OmpPlaces, OmpProcBind, OmpSchedule,
    };
    match feature {
        Feature::Places => OmpPlaces::ALL
            .iter()
            .position(|v| *v == config.places)
            .expect("places in domain"),
        Feature::ProcBind => OmpProcBind::ALL
            .iter()
            .position(|v| *v == config.proc_bind)
            .expect("bind in domain"),
        Feature::Schedule => OmpSchedule::ALL
            .iter()
            .position(|v| *v == config.schedule)
            .expect("schedule in domain"),
        Feature::Library => KmpLibrary::ALL
            .iter()
            .position(|v| *v == config.library)
            .expect("library in domain"),
        Feature::Blocktime => KmpBlocktime::ALL
            .iter()
            .position(|v| *v == config.blocktime)
            .expect("blocktime in domain"),
        Feature::ForceReduction => KmpForceReduction::ALL
            .iter()
            .position(|v| *v == config.force_reduction)
            .expect("reduction in domain"),
        Feature::AlignAlloc => ALIGN_UNION
            .iter()
            .position(|b| KmpAlignAlloc(*b) == config.align_alloc)
            .expect("alignment in union domain"),
        other => panic!("{other:?} is not an attributable tuning variable"),
    }
}

/// One (variable, value) accumulator: exact integer state only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cell {
    /// Samples folded into this cell.
    pub samples: u64,
    /// Failure-injected (NaN) repetitions among those samples.
    pub failed_reps: u64,
    /// Sum of sample virtual totals, 2^16 fixed point.
    pub total_fp: i128,
    /// Per-sink sums in [`omptel::Sink::ALL`] order, 2^16 fixed point.
    pub sinks_fp: [i128; 7],
    /// Sum of sample modeled energy, microjoules in 2^16 fixed point
    /// (µJ rather than J so the fixed point keeps sub-µJ resolution).
    pub energy_ufp: i128,
    /// Sum of sample energy-delay products, microjoule-seconds in
    /// 2^16 fixed point.
    pub edp_ufp: i128,
}

impl Cell {
    fn fold(&mut self, sample: &RawSample) {
        self.samples += 1;
        self.failed_reps += sample.runtimes.iter().filter(|t| !t.is_finite()).count() as u64;
        self.total_fp += to_fp(sample.telemetry.virtual_ns);
        for (slot, sink) in self.sinks_fp.iter_mut().zip(omptel::Sink::ALL) {
            *slot += to_fp(sample.telemetry.breakdown.get(sink));
        }
        let e = &sample.telemetry.energy;
        self.energy_ufp += to_fp(e.total_j * 1e6);
        self.edp_ufp += to_fp(e.edp_js(sample.telemetry.virtual_ns) * 1e6);
    }

    fn merge(&mut self, other: &Cell) {
        self.samples += other.samples;
        self.failed_reps += other.failed_reps;
        self.total_fp += other.total_fp;
        for (slot, v) in self.sinks_fp.iter_mut().zip(other.sinks_fp) {
            *slot += v;
        }
        self.energy_ufp += other.energy_ufp;
        self.edp_ufp += other.edp_ufp;
    }

    /// Mean virtual total per sample in nanoseconds (0 when empty).
    pub fn mean_total_ns(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            from_fp(self.total_fp) / self.samples as f64
        }
    }

    /// Mean modeled energy per sample in joules (0 when empty).
    pub fn mean_energy_j(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            from_fp(self.energy_ufp) / 1e6 / self.samples as f64
        }
    }

    /// Mean energy-delay product per sample in joule-seconds.
    pub fn mean_edp_js(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            from_fp(self.edp_ufp) / 1e6 / self.samples as f64
        }
    }
}

/// A marginal-cost profile over a sweep slice: one cell per
/// (variable, value) plus a grand-total cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribution {
    /// `cells[var][value]`, `var` indexing [`Feature::ENV_FEATURES`],
    /// `value` indexing [`value_labels`] of that variable.
    pub cells: Vec<Vec<Cell>>,
    /// Every folded sample once.
    pub grand: Cell,
}

impl Default for Attribution {
    fn default() -> Self {
        Attribution::new()
    }
}

impl Attribution {
    pub fn new() -> Attribution {
        Attribution {
            cells: Feature::ENV_FEATURES
                .iter()
                .map(|f| vec![Cell::default(); value_labels(*f).len()])
                .collect(),
            grand: Cell::default(),
        }
    }

    /// Fold one sample: its total and sinks are charged to the cell of
    /// each variable's value in the sample's configuration.
    pub fn fold_sample(&mut self, sample: &RawSample) {
        self.grand.fold(sample);
        for (vi, feature) in Feature::ENV_FEATURES.iter().enumerate() {
            self.cells[vi][value_index(&sample.config, *feature)].fold(sample);
        }
    }

    /// Fold every sampled configuration of a batch (the default rows
    /// carry no configuration axis and are not part of the profile).
    pub fn fold_batch(&mut self, batch: &SettingData) {
        for sample in &batch.samples {
            self.fold_sample(sample);
        }
    }

    /// Fold a whole slice.
    pub fn fold_slice(&mut self, batches: &[SettingData]) {
        for b in batches {
            self.fold_batch(b);
        }
    }

    /// Exact merge: integer addition cell by cell. `merge(a, b)` equals
    /// folding the concatenated slices in either order.
    pub fn merge(&mut self, other: &Attribution) {
        self.grand.merge(&other.grand);
        for (mine, theirs) in self.cells.iter_mut().zip(&other.cells) {
            for (m, t) in mine.iter_mut().zip(theirs) {
                m.merge(t);
            }
        }
    }

    /// Samples folded so far.
    pub fn samples(&self) -> u64 {
        self.grand.samples
    }

    /// Marginal spread per variable: the gap in mean virtual total
    /// between its cheapest and most expensive value (populated cells
    /// only). The variable whose setting moves mean cost the most ranks
    /// first — the attribution counterpart of logistic-influence.
    pub fn spread_ns(&self, var_index: usize) -> f64 {
        let populated: Vec<f64> = self.cells[var_index]
            .iter()
            .filter(|c| c.samples > 0)
            .map(Cell::mean_total_ns)
            .collect();
        if populated.len() < 2 {
            return 0.0;
        }
        let max = populated.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = populated.iter().copied().fold(f64::INFINITY, f64::min);
        max - min
    }

    /// Marginal energy spread per variable: the gap in mean modeled
    /// joules between its cheapest and most expensive value. The energy
    /// counterpart of [`spread_ns`](Attribution::spread_ns) — the two
    /// rankings disagree exactly where time- and energy-tuning pull in
    /// different directions.
    pub fn spread_energy_j(&self, var_index: usize) -> f64 {
        let populated: Vec<f64> = self.cells[var_index]
            .iter()
            .filter(|c| c.samples > 0)
            .map(Cell::mean_energy_j)
            .collect();
        if populated.len() < 2 {
            return 0.0;
        }
        let max = populated.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = populated.iter().copied().fold(f64::INFINITY, f64::min);
        max - min
    }

    /// Variables ranked by [`spread_ns`](Attribution::spread_ns),
    /// descending; ties keep `ENV_FEATURES` order.
    pub fn ranked_variables(&self) -> Vec<(Feature, f64)> {
        let mut ranked: Vec<(Feature, f64)> = Feature::ENV_FEATURES
            .iter()
            .enumerate()
            .map(|(i, f)| (*f, self.spread_ns(i)))
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        ranked
    }

    /// Variables ranked by
    /// [`spread_energy_j`](Attribution::spread_energy_j), descending;
    /// ties keep `ENV_FEATURES` order.
    pub fn ranked_variables_energy(&self) -> Vec<(Feature, f64)> {
        let mut ranked: Vec<(Feature, f64)> = Feature::ENV_FEATURES
            .iter()
            .enumerate()
            .map(|(i, f)| (*f, self.spread_energy_j(i)))
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        ranked
    }

    /// The top-ranked variable (`None` on an empty profile).
    pub fn top_variable(&self) -> Option<Feature> {
        if self.samples() == 0 {
            return None;
        }
        self.ranked_variables().first().map(|(f, _)| *f)
    }

    /// Render the profile as deterministic JSON. Integer sums are
    /// decimal strings (exact — `i128` exceeds JSON number range);
    /// derived means/spreads are fixed-precision decimals computed from
    /// the integer state, so equal states render byte-identically.
    pub fn to_json(&self, meta: &SliceMeta) -> String {
        let mut out = String::with_capacity(8192);
        out.push_str("{\n  \"schema\": \"ompprof-attribution-v2\",\n");
        out.push_str(&format!(
            "  \"slice\": {{\"arch\": \"{}\", \"app\": \"{}\", \"scope\": \"{}\", \"seed\": {}, \"fingerprint\": \"{:016x}\"}},\n",
            json_escape(&meta.arch),
            json_escape(&meta.app),
            json_escape(&meta.scope),
            meta.seed,
            meta.fingerprint
        ));
        out.push_str(&format!("  \"fixed_point_scale\": {},\n", FP_SCALE as u64));
        out.push_str(&format!(
            "  \"samples\": {},\n  \"failed_reps\": {},\n",
            self.grand.samples, self.grand.failed_reps
        ));
        out.push_str(&format!("  \"grand\": {},\n", cell_json(&self.grand)));
        out.push_str("  \"variables\": [\n");
        for (vi, feature) in Feature::ENV_FEATURES.iter().enumerate() {
            let labels = value_labels(*feature);
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"spread_ns\": {}, \"spread_j\": {}, \"values\": [\n",
                feature.name(),
                fmt_ns(self.spread_ns(vi)),
                fmt_j(self.spread_energy_j(vi))
            ));
            for (ci, cell) in self.cells[vi].iter().enumerate() {
                out.push_str(&format!(
                    "      {{\"label\": \"{}\", \"cell\": {}}}{}\n",
                    json_escape(&labels[ci]),
                    cell_json(cell),
                    if ci + 1 < self.cells[vi].len() {
                        ","
                    } else {
                        ""
                    }
                ));
            }
            out.push_str(&format!(
                "    ]}}{}\n",
                if vi + 1 < Feature::ENV_FEATURES.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ],\n  \"ranking\": [\n");
        let ranked = self.ranked_variables();
        for (i, (f, spread)) in ranked.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"spread_ns\": {}}}{}\n",
                f.name(),
                fmt_ns(*spread),
                if i + 1 < ranked.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"energy_ranking\": [\n");
        let ranked_e = self.ranked_variables_energy();
        for (i, (f, spread)) in ranked_e.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"spread_j\": {}}}{}\n",
                f.name(),
                fmt_j(*spread),
                if i + 1 < ranked_e.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Identity of the slice a profile was folded from, stamped into the
/// JSON so a profile can be matched to its provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceMeta {
    pub arch: String,
    pub app: String,
    pub scope: String,
    pub seed: u64,
    /// [`sweep::slice_fingerprint`] of the folded batches.
    pub fingerprint: u64,
}

/// Deterministic fixed-precision nanosecond figure (3 decimals).
fn fmt_ns(ns: f64) -> String {
    format!("{ns:.3}")
}

/// Deterministic fixed-precision joule figure (9 decimals = nJ).
fn fmt_j(j: f64) -> String {
    format!("{j:.9}")
}

fn cell_json(cell: &Cell) -> String {
    let mut sinks = String::new();
    for (i, sink) in omptel::Sink::ALL.iter().enumerate() {
        if i > 0 {
            sinks.push_str(", ");
        }
        sinks.push_str(&format!(
            "\"{}\": \"{}\"",
            sink_key(*sink),
            cell.sinks_fp[i]
        ));
    }
    format!(
        "{{\"samples\": {}, \"failed_reps\": {}, \"total_fp\": \"{}\", \"mean_ns\": {}, \
         \"energy_ufp\": \"{}\", \"edp_ufp\": \"{}\", \"mean_j\": {}, \"sinks_fp\": {{{}}}}}",
        cell.samples,
        cell.failed_reps,
        cell.total_fp,
        fmt_ns(cell.mean_total_ns()),
        cell.energy_ufp,
        cell.edp_ufp,
        fmt_j(cell.mean_energy_j()),
        sinks
    )
}

/// Short stable JSON key per sink.
pub fn sink_key(sink: omptel::Sink) -> &'static str {
    match sink {
        omptel::Sink::Compute => "compute",
        omptel::Sink::Memory => "memory",
        omptel::Sink::Sync => "sync",
        omptel::Sink::Wake => "wake",
        omptel::Sink::Dispatch => "dispatch",
        omptel::Sink::Serial => "serial",
        omptel::Sink::Imbalance => "imbalance",
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use omptune_core::Arch;
    use sweep::{Scope, SweepSpec};
    use workloads::Setting;

    fn slice() -> Vec<SettingData> {
        let spec = SweepSpec {
            scope: Scope::Strided(700),
            reps: 2,
            seed: 29,
            failure_rate: 0.08,
            ..SweepSpec::default()
        };
        let app = workloads::app("cg").unwrap();
        let setting = Setting {
            input_code: 0,
            num_threads: 96,
        };
        vec![sweep::sweep_setting(Arch::Milan, app, setting, 0, &spec)]
    }

    #[test]
    fn sinks_sum_to_total_in_every_cell() {
        let batches = slice();
        let mut a = Attribution::new();
        a.fold_slice(&batches);
        assert!(a.samples() > 0);
        let check = |c: &Cell| {
            let sum: i128 = c.sinks_fp.iter().sum();
            // Each addend was rounded independently, so allow one
            // half-ULP of fixed point per sink per sample.
            let slack = (7 * c.samples) as i128;
            assert!(
                (sum - c.total_fp).abs() <= slack,
                "sinks {sum} vs total {} over {} samples",
                c.total_fp,
                c.samples
            );
        };
        check(&a.grand);
        for var in &a.cells {
            for cell in var {
                check(cell);
            }
        }
    }

    #[test]
    fn every_variable_partitions_the_samples() {
        let batches = slice();
        let mut a = Attribution::new();
        a.fold_slice(&batches);
        for (vi, cells) in a.cells.iter().enumerate() {
            let n: u64 = cells.iter().map(|c| c.samples).sum();
            assert_eq!(n, a.grand.samples, "variable {vi} lost samples");
            let total: i128 = cells.iter().map(|c| c.total_fp).sum();
            assert_eq!(total, a.grand.total_fp, "variable {vi} lost time");
        }
    }

    #[test]
    fn energy_partitions_exactly_like_time() {
        let batches = slice();
        let mut a = Attribution::new();
        a.fold_slice(&batches);
        assert!(a.grand.energy_ufp > 0, "slice must carry modeled energy");
        assert!(a.grand.edp_ufp > 0);
        for (vi, cells) in a.cells.iter().enumerate() {
            let e: i128 = cells.iter().map(|c| c.energy_ufp).sum();
            assert_eq!(e, a.grand.energy_ufp, "variable {vi} lost energy");
            let d: i128 = cells.iter().map(|c| c.edp_ufp).sum();
            assert_eq!(d, a.grand.edp_ufp, "variable {vi} lost EDP");
        }
        // The energy ranking is complete and deterministic, like the
        // time ranking.
        let r = a.ranked_variables_energy();
        assert_eq!(r.len(), Feature::ENV_FEATURES.len());
        assert!(r[0].1 >= r[r.len() - 1].1);
        assert!(r[0].1 > 0.0, "some variable must move modeled energy");
    }

    #[test]
    fn merge_equals_whole_fold_bytewise() {
        let batches = slice();
        let mut whole = Attribution::new();
        whole.fold_slice(&batches);
        // Shard at every sample boundary of the first batch.
        let samples = &batches[0].samples;
        for split in [1, samples.len() / 3, samples.len() / 2, samples.len() - 1] {
            let mut left = Attribution::new();
            let mut right = Attribution::new();
            for s in &samples[..split] {
                left.fold_sample(s);
            }
            for s in &samples[split..] {
                right.fold_sample(s);
            }
            left.merge(&right);
            assert_eq!(left, whole, "split at {split} diverged");
            let meta = SliceMeta {
                arch: "milan".into(),
                app: "cg".into(),
                scope: "test".into(),
                seed: 29,
                fingerprint: sweep::slice_fingerprint(&batches),
            };
            assert_eq!(left.to_json(&meta), whole.to_json(&meta));
        }
    }

    #[test]
    fn failed_reps_are_counted_not_folded() {
        let batches = slice();
        let mut a = Attribution::new();
        a.fold_slice(&batches);
        let nan_reps: u64 = batches[0]
            .samples
            .iter()
            .flat_map(|s| &s.runtimes)
            .filter(|t| !t.is_finite())
            .count() as u64;
        assert!(nan_reps > 0, "fixture must inject failures");
        assert_eq!(a.grand.failed_reps, nan_reps);
        // Totals stay finite (integers) regardless.
        assert!(a.grand.total_fp > 0);
    }

    #[test]
    fn ranking_is_deterministic_and_complete() {
        let batches = slice();
        let mut a = Attribution::new();
        a.fold_slice(&batches);
        let r1 = a.ranked_variables();
        let r2 = a.ranked_variables();
        assert_eq!(r1, r2);
        assert_eq!(r1.len(), Feature::ENV_FEATURES.len());
        assert!(r1[0].1 >= r1[r1.len() - 1].1);
        assert!(a.top_variable().is_some());
    }

    #[test]
    fn empty_profile_is_well_formed() {
        let a = Attribution::new();
        assert_eq!(a.samples(), 0);
        assert_eq!(a.top_variable(), None);
        let meta = SliceMeta {
            arch: "milan".into(),
            app: "none".into(),
            scope: "empty".into(),
            seed: 0,
            fingerprint: 0,
        };
        let doc = a.to_json(&meta);
        assert!(doc.contains("\"samples\": 0"));
    }
}
