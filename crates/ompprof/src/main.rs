//! `ompprof` — sweep-wide cost attribution and differential flame
//! graphs.
//!
//! Subcommands:
//!
//! - `ompprof attribute [ARCH] [APP] [--scope N] [--workers N]
//!   [--out PATH] [--data DIR] [--check]` — sweep a strided slice of
//!   one setting (or fold an exported `raw_batches.json` via `--data`),
//!   fold every sample's sink breakdown into the per-(variable, value)
//!   attribution profile, write it as JSON, and print the marginal-cost
//!   ranking. `--check` cross-validates the top-ranked variable against
//!   the logistic-regression influence ranking.
//! - `ompprof diff [ARCH] [APP] [--out-dir DIR]` — sweep the same slice
//!   the telemetry report uses, pick the best and worst configurations
//!   by mean runtime, and render their phase trees as folded stacks and
//!   flame-graph SVGs plus a signed red/blue diff view.
//!
//! Exit codes (shared omplint/ompfuzz/ompmon convention):
//! 0 = clean, 4 = findings (ranking disagreement), 2 = usage error,
//! 1 = internal error.

use ompprof::{Attribution, SliceMeta};
use omptune_core::{Arch, Feature, GroupBy, TuningConfig};
use std::process::ExitCode;
use sweep::{Scope, SettingData, SweepSpec};

const EXIT_FINDINGS: u8 = 4;
const EXIT_USAGE: u8 = 2;
const EXIT_INTERNAL: u8 = 1;

fn usage() -> String {
    "usage: ompprof attribute [ARCH] [APP] [--scope N] [--workers N] [--out PATH] [--data DIR] [--check]\n\
     \x20      ompprof diff [ARCH] [APP] [--out-dir DIR]"
        .to_string()
}

fn parse_arch(s: &str) -> Option<Arch> {
    Arch::ALL.iter().copied().find(|a| a.id() == s)
}

struct CommonArgs {
    arch: Arch,
    app: String,
    scope: usize,
    workers: usize,
    out: String,
    out_dir: String,
    data: Option<String>,
    check: bool,
}

fn parse_args(args: &[String]) -> Result<CommonArgs, String> {
    let mut parsed = CommonArgs {
        arch: Arch::Milan,
        app: "cg".to_string(),
        scope: 400,
        workers: 4,
        out: "profile.json".to_string(),
        out_dir: "ompprof-out".to_string(),
        data: None,
        check: false,
    };
    let mut positional = 0usize;
    let mut rest = args.iter();
    while let Some(a) = rest.next() {
        match a.as_str() {
            "--check" => parsed.check = true,
            "--scope" | "--workers" | "--out" | "--out-dir" | "--data" => {
                let v = rest
                    .next()
                    .ok_or_else(|| format!("{a} needs a value"))?
                    .clone();
                match a.as_str() {
                    "--scope" => {
                        parsed.scope = v.parse().map_err(|_| format!("bad --scope {v:?}"))?;
                        if parsed.scope == 0 {
                            return Err("--scope must be positive".into());
                        }
                    }
                    "--workers" => {
                        parsed.workers = v.parse().map_err(|_| format!("bad --workers {v:?}"))?;
                        if parsed.workers == 0 {
                            return Err("--workers must be positive".into());
                        }
                    }
                    "--out" => parsed.out = v,
                    "--out-dir" => parsed.out_dir = v,
                    "--data" => parsed.data = Some(v),
                    _ => unreachable!(),
                }
            }
            s if s.starts_with("--") => return Err(format!("unknown flag {s}")),
            s => {
                match positional {
                    0 => {
                        parsed.arch = parse_arch(s).ok_or_else(|| {
                            format!("unknown arch {s:?} (expected a64fx, skylake, or milan)")
                        })?
                    }
                    1 => parsed.app = s.to_string(),
                    _ => return Err(format!("unexpected argument {s:?}")),
                }
                positional += 1;
            }
        }
    }
    Ok(parsed)
}

/// Sweep the strided slice `attribute`/`diff` profile: one setting (the
/// largest) of `app` on `arch`, in catalog position 0, default seed.
fn sweep_slice(
    arch: Arch,
    app_name: &str,
    scope: usize,
    workers: usize,
) -> Result<(Vec<SettingData>, SweepSpec), String> {
    let app = workloads::app(app_name).ok_or_else(|| format!("unknown app {app_name:?}"))?;
    if !workloads::available_on(app_name, arch) {
        return Err(format!("{app_name} is not available on {}", arch.id()));
    }
    let spec = SweepSpec {
        scope: Scope::Strided(scope),
        ..SweepSpec::default()
    };
    let setting = workloads::settings_for(app, arch)
        .last()
        .copied()
        .ok_or_else(|| format!("{app_name} has no settings on {}", arch.id()))?;
    let (data, _stats) = sweep::sweep_setting_scheduled(
        arch,
        app,
        setting,
        0,
        &spec,
        &sweep::SweepOptions::new(workers),
    );
    Ok((vec![data], spec))
}

/// Top environment variable of the logistic-influence ranking for the
/// `{arch}/{app}` group (paper Figs. 2–4 measure).
fn logreg_top(batches: &[SettingData], arch: Arch, app: &str) -> Result<Feature, String> {
    let records = sweep::Dataset::build(batches).records;
    let hm = omptune_core::influence_analysis(&records, GroupBy::ArchApplication)
        .map_err(|e| format!("influence analysis failed: {e:?}"))?;
    let group = format!("{}/{}", arch.id(), app);
    let row = hm
        .row(&group)
        .ok_or_else(|| format!("no influence row for {group}"))?;
    let mut best: Option<(Feature, f64)> = None;
    for (f, v) in hm.features.iter().zip(&row.influence) {
        if !Feature::ENV_FEATURES.contains(f) {
            continue;
        }
        if best.map(|(_, bv)| *v > bv).unwrap_or(true) {
            best = Some((*f, *v));
        }
    }
    best.map(|(f, _)| f)
        .ok_or_else(|| "no env features in influence row".to_string())
}

fn cmd_attribute(args: CommonArgs) -> Result<u8, String> {
    let (batches, seed, scope_label) = match &args.data {
        Some(dir) => {
            let path = format!("{dir}/raw_batches.json");
            let bytes = std::fs::read(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let batches =
                sweep::export::read_raw_json(&bytes).map_err(|e| format!("{path}: {e}"))?;
            (batches, SweepSpec::default().seed, format!("data:{dir}"))
        }
        None => {
            let (batches, spec) = sweep_slice(args.arch, &args.app, args.scope, args.workers)?;
            (batches, spec.seed, format!("strided({})", args.scope))
        }
    };
    if batches.iter().all(|b| b.samples.is_empty()) {
        return Err("slice contains no samples".into());
    }

    let mut profile = Attribution::new();
    profile.fold_slice(&batches);
    let meta = SliceMeta {
        arch: args.arch.id().to_string(),
        app: args.app.clone(),
        scope: scope_label,
        seed,
        fingerprint: sweep::slice_fingerprint(&batches),
    };
    if let Some(parent) = std::path::Path::new(&args.out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    std::fs::write(&args.out, profile.to_json(&meta))
        .map_err(|e| format!("cannot write {}: {e}", args.out))?;

    println!(
        "ompprof attribute: {} samples ({} failed reps) over {}/{}",
        profile.samples(),
        profile.grand.failed_reps,
        meta.arch,
        meta.app
    );
    for (i, (f, spread)) in profile.ranked_variables().iter().take(3).enumerate() {
        println!(
            "  #{} {:<20} spread {:.3} ms",
            i + 1,
            f.name(),
            spread * 1e-6
        );
    }
    for (i, (f, spread)) in profile.ranked_variables_energy().iter().take(3).enumerate() {
        println!(
            "  E#{} {:<19} spread {:.3} mJ",
            i + 1,
            f.name(),
            spread * 1e3
        );
    }
    println!("wrote {}", args.out);

    if args.check {
        let attributed = profile
            .top_variable()
            .ok_or_else(|| "empty profile has no top variable".to_string())?;
        let influence = logreg_top(&batches, args.arch, &args.app)?;
        if attributed == influence {
            println!(
                "check: attribution and logreg influence agree on {}",
                attributed.name()
            );
        } else {
            println!(
                "check: DISAGREE — attribution says {}, logreg influence says {}",
                attributed.name(),
                influence.name()
            );
            return Ok(EXIT_FINDINGS);
        }
    }
    Ok(0)
}

/// Region-level summary of one configuration under an exclusive
/// telemetry session (same recipe as `omptel-report`, whose recorded
/// best-vs-worst gap this subcommand must reproduce).
fn summarize(
    arch: Arch,
    config: &TuningConfig,
    model: &simrt::Model,
    seed: u64,
) -> Result<omptel::Summary, String> {
    let session = omptel::session().map_err(|e| format!("telemetry session: {e}"))?;
    simrt::simulate(arch, config, model, seed);
    Ok(session.finish().summary())
}

fn cmd_diff(args: CommonArgs) -> Result<u8, String> {
    // The exact slice omtel-report's best_vs_worst uses, so the gap
    // printed here is the recorded one.
    let (batches, spec) = sweep_slice(args.arch, &args.app, 50, 4)?;
    let data = &batches[0];
    let best = data
        .samples
        .iter()
        .min_by(|a, b| a.mean_runtime().total_cmp(&b.mean_runtime()))
        .ok_or("empty sweep")?;
    let worst = data
        .samples
        .iter()
        .max_by(|a, b| a.mean_runtime().total_cmp(&b.mean_runtime()))
        .ok_or("empty sweep")?;

    let app = workloads::app(&args.app).expect("validated in sweep_slice");
    let setting = workloads::settings_for(app, args.arch)
        .last()
        .copied()
        .expect("validated in sweep_slice");
    let model = (app.model)(args.arch, setting);

    let best_sum = summarize(args.arch, &best.config, &model, spec.seed)?;
    let worst_sum = summarize(args.arch, &worst.config, &model, spec.seed)?;
    let gap = worst_sum.total_ns as f64 / best_sum.total_ns as f64;

    let best_ex = simrt::explain(args.arch, &best.config, &model, spec.seed);
    let worst_ex = simrt::explain(args.arch, &worst.config, &model, spec.seed);
    let best_tree = ompprof::explanation_tree(&args.app, args.arch, &best.config, &best_ex);
    let worst_tree = ompprof::explanation_tree(&args.app, args.arch, &worst.config, &worst_ex);
    let energy_gap = worst_tree.energy_j / best_tree.energy_j.max(1e-12);

    // Attribution over the same slice names the variable the flame
    // graph subtitle blames.
    let mut profile = Attribution::new();
    profile.fold_slice(&batches);
    let top = profile
        .top_variable()
        .map(|f| f.name().to_string())
        .unwrap_or_else(|| "n/a".to_string());

    let dir = std::path::Path::new(&args.out_dir);
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", args.out_dir))?;
    let write = |name: &str, text: String| -> Result<(), String> {
        std::fs::write(dir.join(name), text)
            .map_err(|e| format!("cannot write {}/{name}: {e}", args.out_dir))
    };
    let slug = format!("{}/{} t={}", args.arch.id(), args.app, setting.num_threads);
    write("best.folded", ompprof::folded(&best_tree))?;
    write("worst.folded", ompprof::folded(&worst_tree))?;
    write(
        "flame_best.svg",
        ompprof::svg(
            &best_tree,
            &format!("best {slug}"),
            &format!("speedup {:.2}x | top variable {top}", data.speedup(best)),
        ),
    )?;
    write(
        "flame_worst.svg",
        ompprof::svg(
            &worst_tree,
            &format!("worst {slug}"),
            &format!("speedup {:.2}x | top variable {top}", data.speedup(worst)),
        ),
    )?;
    write(
        "flame_diff.svg",
        ompprof::diff_svg(
            &best_tree,
            &worst_tree,
            &format!("worst vs best {slug}"),
            &format!("best-vs-worst {gap:.2}x region-time gap | top variable {top}"),
        ),
    )?;
    write(
        "flame_energy_diff.svg",
        ompprof::energy_diff_svg(
            &best_tree,
            &worst_tree,
            &format!("worst vs best {slug} (energy)"),
            &format!(
                "best-vs-worst {energy_gap:.2}x modeled-energy gap | time layout, joule colors"
            ),
        ),
    )?;

    println!(
        "ompprof diff {slug}: best-vs-worst: {gap:.2}x region-time gap, \
         {energy_gap:.2}x modeled-energy gap (top variable {top})"
    );
    println!(
        "wrote {}/{{best,worst}}.folded, flame_{{best,worst,diff}}.svg, and flame_energy_diff.svg",
        args.out_dir
    );
    Ok(0)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::from(EXIT_USAGE);
    };
    let parsed = match parse_args(&args[1..]) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("ompprof: {e}\n{}", usage());
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let result = match cmd.as_str() {
        "attribute" => cmd_attribute(parsed),
        "diff" => cmd_diff(parsed),
        other => {
            eprintln!("ompprof: unknown subcommand {other:?}\n{}", usage());
            return ExitCode::from(EXIT_USAGE);
        }
    };
    match result {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("ompprof: {e}");
            ExitCode::from(EXIT_INTERNAL)
        }
    }
}
