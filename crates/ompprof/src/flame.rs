//! Differential flame graphs without dependencies: fold a
//! [`simrt::Explanation`] into a frame tree, emit Brendan-Gregg folded
//! stacks, and render self-contained SVG — including a signed diff view
//! that paints where a worst configuration's time goes relative to the
//! best one, and an energy-colored variant that keeps the time layout
//! but paints each frame by its modeled-joules delta instead.

use omptune_core::{Arch, TuningConfig};
use simrt::Explanation;

/// One frame of a flame graph: a named span whose children partition
/// (at most) its value.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    pub name: String,
    /// Inclusive virtual nanoseconds.
    pub value_ns: f64,
    /// Inclusive modeled energy in joules (0 when the tree was built
    /// without pricing — the plain-SVG paths ignore it).
    pub energy_j: f64,
    pub children: Vec<Frame>,
}

impl Frame {
    fn leaf(name: String, value_ns: f64, energy_j: f64) -> Frame {
        Frame {
            name,
            value_ns,
            energy_j,
            children: Vec::new(),
        }
    }
}

/// Fold an explanation into `app -> phase -> sink` frames. Phase spans
/// come from the differential warm-timestep attribution; sink leaves
/// are each phase's closed breakdown, so every level sums to its
/// parent. Each phase is priced through the deterministic power model
/// and its joules are spread over the sink leaves proportionally to
/// their time share, so energy also sums to its parent.
pub fn explanation_tree(app: &str, arch: Arch, config: &TuningConfig, e: &Explanation) -> Frame {
    let phases: Vec<Frame> = e
        .phases
        .iter()
        .map(|p| {
            let phase_j = simrt::price_energy(arch, config, &p.sinks, p.ns, 1).total_j;
            let sinks: Vec<Frame> = omptel::Sink::ALL
                .iter()
                .map(|s| {
                    let ns = p.sinks.get(*s);
                    let j = if p.ns > 0.0 { phase_j * ns / p.ns } else { 0.0 };
                    Frame::leaf(crate::attrib::sink_key(*s).to_string(), ns, j)
                })
                .filter(|f| f.value_ns > 0.0)
                .collect();
            Frame {
                name: format!("p{} [{}]", p.index, p.kind),
                value_ns: p.ns,
                energy_j: phase_j,
                children: sinks,
            }
        })
        .collect();
    Frame {
        name: app.to_string(),
        value_ns: phases.iter().map(|p| p.value_ns).sum(),
        energy_j: phases.iter().map(|p| p.energy_j).sum(),
        children: phases,
    }
}

/// Folded-stack export: one `a;b;c value` line per frame's *self* time
/// (value minus children), integer nanoseconds, depth-first order —
/// the interchange format every flame-graph tool parses.
pub fn folded(root: &Frame) -> String {
    let mut out = String::new();
    let mut stack = Vec::new();
    fold_into(root, &mut stack, &mut out);
    out
}

fn fold_into(frame: &Frame, stack: &mut Vec<String>, out: &mut String) {
    stack.push(frame.name.clone());
    let child_sum: f64 = frame.children.iter().map(|c| c.value_ns).sum();
    let self_ns = (frame.value_ns - child_sum).max(0.0).round() as u64;
    if self_ns > 0 || frame.children.is_empty() {
        out.push_str(&stack.join(";"));
        out.push(' ');
        out.push_str(&self_ns.to_string());
        out.push('\n');
    }
    for c in &frame.children {
        fold_into(c, stack, out);
    }
    stack.pop();
}

const WIDTH: f64 = 1200.0;
const ROW: f64 = 18.0;
const PAD_TOP: f64 = 44.0;

fn depth_of(frame: &Frame) -> usize {
    1 + frame
        .children
        .iter()
        .map(depth_of)
        .max()
        .unwrap_or_default()
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Deterministic warm palette keyed by frame name.
fn flame_color(name: &str) -> String {
    let mut h: u32 = 2166136261;
    for b in name.bytes() {
        h ^= b as u32;
        h = h.wrapping_mul(16777619);
    }
    let r = 205 + (h % 50);
    let g = 60 + ((h >> 8) % 120);
    let b = (h >> 16) % 50;
    format!("rgb({r},{g},{b})")
}

/// Signed-diff palette: red for time gained (regression), blue for time
/// lost, intensity by relative magnitude.
fn diff_color(rel: f64) -> String {
    let k = rel.abs().min(1.0);
    if rel > 0.0 {
        let gb = (235.0 - 175.0 * k) as u32;
        format!("rgb(250,{gb},{gb})")
    } else if rel < 0.0 {
        let rg = (235.0 - 175.0 * k) as u32;
        format!("rgb({rg},{rg},250)")
    } else {
        "rgb(221,221,221)".to_string()
    }
}

struct SvgBuilder {
    body: String,
}

impl SvgBuilder {
    fn rect(&mut self, x: f64, y: f64, w: f64, text: &str, fill: &str, tooltip: &str) {
        if w < 0.3 {
            return;
        }
        self.body.push_str(&format!(
            "<g><title>{}</title><rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{w:.2}\" height=\"{:.2}\" fill=\"{fill}\" stroke=\"white\" stroke-width=\"0.5\"/>",
            xml_escape(tooltip),
            ROW - 1.0,
        ));
        // ~6.2 px per glyph at 11px monospace; clip to the box.
        let max_chars = (w / 6.2) as usize;
        if max_chars >= 3 {
            let label: String = text.chars().take(max_chars).collect();
            self.body.push_str(&format!(
                "<text x=\"{:.2}\" y=\"{:.2}\" font-size=\"11\" font-family=\"monospace\" fill=\"#111\">{}</text>",
                x + 3.0,
                y + ROW - 5.5,
                xml_escape(&label)
            ));
        }
        self.body.push_str("</g>\n");
    }

    fn finish(self, height: f64, title: &str, subtitle: &str) -> String {
        format!(
            "<?xml version=\"1.0\" standalone=\"no\"?>\n\
             <svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{height}\" viewBox=\"0 0 {WIDTH} {height}\">\n\
             <rect x=\"0\" y=\"0\" width=\"{WIDTH}\" height=\"{height}\" fill=\"#f8f8f8\"/>\n\
             <text x=\"{:.1}\" y=\"17\" text-anchor=\"middle\" font-size=\"14\" font-family=\"monospace\" font-weight=\"bold\">{}</text>\n\
             <text x=\"{:.1}\" y=\"34\" text-anchor=\"middle\" font-size=\"11\" font-family=\"monospace\" fill=\"#444\">{}</text>\n\
             {}</svg>\n",
            WIDTH / 2.0,
            xml_escape(title),
            WIDTH / 2.0,
            xml_escape(subtitle),
            self.body
        )
    }
}

/// Render one tree as an icicle-layout flame graph (root on top).
pub fn svg(root: &Frame, title: &str, subtitle: &str) -> String {
    let mut b = SvgBuilder {
        body: String::new(),
    };
    let total = root.value_ns.max(1.0);
    draw_plain(&mut b, root, 0.0, 0, total);
    let height = PAD_TOP + depth_of(root) as f64 * ROW + 8.0;
    b.finish(height, title, subtitle)
}

fn draw_plain(b: &mut SvgBuilder, frame: &Frame, x_ns: f64, depth: usize, total: f64) {
    let x = x_ns / total * WIDTH;
    let w = frame.value_ns / total * WIDTH;
    let y = PAD_TOP + depth as f64 * ROW;
    let tooltip = format!(
        "{} — {:.3} ms ({:.1}%)",
        frame.name,
        frame.value_ns * 1e-6,
        100.0 * frame.value_ns / total
    );
    b.rect(x, y, w, &frame.name, &flame_color(&frame.name), &tooltip);
    let mut child_x = x_ns;
    for c in &frame.children {
        draw_plain(b, c, child_x, depth + 1, total);
        child_x += c.value_ns;
    }
}

/// Render a signed diff: layout and widths follow `worst`, each frame
/// colored by how much more (red) or less (blue) time it takes than the
/// same-path frame in `best`. The picture of *where* a gap lives.
pub fn diff_svg(best: &Frame, worst: &Frame, title: &str, subtitle: &str) -> String {
    let mut b = SvgBuilder {
        body: String::new(),
    };
    let total = worst.value_ns.max(1.0);
    draw_diff(&mut b, worst, Some(best), 0.0, 0, total);
    let height = PAD_TOP + depth_of(worst) as f64 * ROW + 8.0;
    b.finish(height, title, subtitle)
}

fn draw_diff(
    b: &mut SvgBuilder,
    frame: &Frame,
    counterpart: Option<&Frame>,
    x_ns: f64,
    depth: usize,
    total: f64,
) {
    let x = x_ns / total * WIDTH;
    let w = frame.value_ns / total * WIDTH;
    let y = PAD_TOP + depth as f64 * ROW;
    let best_ns = counterpart.map(|c| c.value_ns).unwrap_or(0.0);
    let delta = frame.value_ns - best_ns;
    let rel = delta / frame.value_ns.max(best_ns).max(1.0);
    let tooltip = format!(
        "{} — worst {:.3} ms, best {:.3} ms, delta {:+.3} ms",
        frame.name,
        frame.value_ns * 1e-6,
        best_ns * 1e-6,
        delta * 1e-6
    );
    b.rect(x, y, w, &frame.name, &diff_color(rel), &tooltip);
    let mut child_x = x_ns;
    for c in &frame.children {
        let twin = counterpart.and_then(|p| p.children.iter().find(|t| t.name == c.name));
        draw_diff(b, c, twin, child_x, depth + 1, total);
        child_x += c.value_ns;
    }
}

/// Energy-colored diff: layout and widths still follow `worst`'s *time*
/// (so the picture is comparable to the time diff side by side), but
/// each frame is painted by its signed modeled-*joules* delta against
/// the same-path frame in `best`. Where the two views disagree — a
/// frame red here and blue in the time diff — is exactly where tuning
/// for time and tuning for energy pull apart.
pub fn energy_diff_svg(best: &Frame, worst: &Frame, title: &str, subtitle: &str) -> String {
    let mut b = SvgBuilder {
        body: String::new(),
    };
    let total = worst.value_ns.max(1.0);
    draw_energy_diff(&mut b, worst, Some(best), 0.0, 0, total);
    let height = PAD_TOP + depth_of(worst) as f64 * ROW + 8.0;
    b.finish(height, title, subtitle)
}

fn draw_energy_diff(
    b: &mut SvgBuilder,
    frame: &Frame,
    counterpart: Option<&Frame>,
    x_ns: f64,
    depth: usize,
    total: f64,
) {
    let x = x_ns / total * WIDTH;
    let w = frame.value_ns / total * WIDTH;
    let y = PAD_TOP + depth as f64 * ROW;
    let best_j = counterpart.map(|c| c.energy_j).unwrap_or(0.0);
    let delta_j = frame.energy_j - best_j;
    let rel = delta_j / frame.energy_j.max(best_j).max(1e-12);
    let tooltip = format!(
        "{} — worst {:.3} mJ, best {:.3} mJ, delta {:+.3} mJ (span {:.3} ms)",
        frame.name,
        frame.energy_j * 1e3,
        best_j * 1e3,
        delta_j * 1e3,
        frame.value_ns * 1e-6
    );
    b.rect(x, y, w, &frame.name, &diff_color(rel), &tooltip);
    let mut child_x = x_ns;
    for c in &frame.children {
        let twin = counterpart.and_then(|p| p.children.iter().find(|t| t.name == c.name));
        draw_energy_diff(b, c, twin, child_x, depth + 1, total);
        child_x += c.value_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omptune_core::{Arch, TuningConfig};
    use workloads::Setting;

    fn tree() -> Frame {
        let app = workloads::app("cg").unwrap();
        let setting = Setting {
            input_code: 0,
            num_threads: 96,
        };
        let model = (app.model)(Arch::Milan, setting);
        let cfg = TuningConfig::default_for(Arch::Milan, 96);
        let e = simrt::explain(Arch::Milan, &cfg, &model, 7);
        explanation_tree("cg", Arch::Milan, &cfg, &e)
    }

    #[test]
    fn tree_levels_sum_to_parents() {
        let root = tree();
        assert!(root.value_ns > 0.0);
        assert!(!root.children.is_empty());
        let phase_sum: f64 = root.children.iter().map(|c| c.value_ns).sum();
        assert!((phase_sum - root.value_ns).abs() < 1e-6 * root.value_ns);
        for phase in &root.children {
            let sink_sum: f64 = phase.children.iter().map(|c| c.value_ns).sum();
            assert!(
                (sink_sum - phase.value_ns).abs() <= 1e-6 * phase.value_ns.max(1.0),
                "{}: {} vs {}",
                phase.name,
                sink_sum,
                phase.value_ns
            );
        }
    }

    #[test]
    fn folded_output_parses_as_stack_space_value() {
        let text = folded(&tree());
        assert!(!text.is_empty());
        for line in text.lines() {
            let (stack, value) = line.rsplit_once(' ').expect("stack SP value");
            assert!(!stack.is_empty());
            assert!(stack.starts_with("cg"), "{line}");
            value.parse::<u64>().expect("integer value");
        }
        // At least one full three-level stack.
        assert!(
            text.lines().any(|l| l.matches(';').count() == 2),
            "no sink-depth stacks:\n{text}"
        );
    }

    #[test]
    fn svg_is_well_formed_and_deterministic() {
        let root = tree();
        let a = svg(&root, "cg on milan", "test render");
        let b = svg(&root, "cg on milan", "test render");
        assert_eq!(a, b);
        assert!(a.starts_with("<?xml"));
        assert!(a.trim_end().ends_with("</svg>"));
        assert_eq!(a.matches("<svg").count(), 1);
        assert!(a.contains("cg on milan"));
        // Every opened group closes.
        assert_eq!(a.matches("<g>").count(), a.matches("</g>").count());
    }

    #[test]
    fn diff_svg_marks_regressions_red() {
        let worst = tree();
        let mut best = worst.clone();
        // Make the first phase twice as fast in "best".
        best.children[0].value_ns /= 2.0;
        for c in &mut best.children[0].children {
            c.value_ns /= 2.0;
        }
        best.value_ns = best.children.iter().map(|c| c.value_ns).sum();
        let doc = diff_svg(&best, &worst, "diff", "sub");
        assert!(doc.starts_with("<?xml"));
        assert!(doc.contains("rgb(250,"), "no red regression cells");
        assert!(doc.contains("delta +"), "no positive delta tooltip");
    }

    #[test]
    fn energy_tree_sums_and_diff_colors() {
        let root = tree();
        assert!(root.energy_j > 0.0, "priced tree must carry joules");
        let phase_sum: f64 = root.children.iter().map(|c| c.energy_j).sum();
        assert!((phase_sum - root.energy_j).abs() < 1e-9 * root.energy_j);
        for phase in &root.children {
            let sink_sum: f64 = phase.children.iter().map(|c| c.energy_j).sum();
            assert!(
                (sink_sum - phase.energy_j).abs() <= 1e-9 * phase.energy_j.max(1e-12),
                "{}: {} vs {}",
                phase.name,
                sink_sum,
                phase.energy_j
            );
        }
        // A best that uses half the energy on the first phase paints
        // that phase red in the energy diff.
        let worst = root;
        let mut best = worst.clone();
        best.children[0].energy_j /= 2.0;
        for c in &mut best.children[0].children {
            c.energy_j /= 2.0;
        }
        best.energy_j = best.children.iter().map(|c| c.energy_j).sum();
        let doc = energy_diff_svg(&best, &worst, "energy diff", "sub");
        assert!(doc.starts_with("<?xml"));
        assert!(doc.contains("rgb(250,"), "no red energy-regression cells");
        assert!(doc.contains("delta +"), "no positive joule delta tooltip");
        assert!(doc.contains("mJ"), "tooltips must carry joule figures");
    }

    #[test]
    fn escaping_keeps_svg_valid() {
        let root = Frame {
            name: "a<b>&\"c\"".into(),
            value_ns: 100.0,
            energy_j: 0.0,
            children: vec![],
        };
        let doc = svg(&root, "t<&>", "s\"q\"");
        assert!(!doc.contains("a<b>"));
        assert!(doc.contains("a&lt;b&gt;&amp;&quot;c&quot;"));
    }
}
