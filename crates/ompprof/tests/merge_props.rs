//! Attribution merge laws as properties: folding per-worker shards then
//! merging must be byte-identical to folding the whole sweep — at any
//! shard boundary, in any merge order, including slices with
//! failure-injected NaN samples, and regardless of the worker count
//! that produced the slice.

use ompprof::{Attribution, SliceMeta};
use omptune_core::Arch;
use proptest::prelude::*;
use std::sync::OnceLock;
use sweep::{RawSample, Scope, SettingData, SweepSpec};

/// One shared fixture slice: a strided CG/Milan sweep with failures
/// injected, computed once (sweeps are deterministic, tests are not
/// about the sweep itself).
fn fixture() -> &'static Vec<SettingData> {
    static SLICE: OnceLock<Vec<SettingData>> = OnceLock::new();
    SLICE.get_or_init(|| {
        let spec = SweepSpec {
            scope: Scope::Strided(500),
            reps: 3,
            seed: 41,
            failure_rate: 0.1,
            ..SweepSpec::default()
        };
        let app = workloads::app("cg").expect("cg registered");
        let setting = workloads::Setting {
            input_code: 0,
            num_threads: 96,
        };
        vec![sweep::sweep_setting(Arch::Milan, app, setting, 0, &spec)]
    })
}

fn all_samples() -> Vec<&'static RawSample> {
    fixture().iter().flat_map(|b| b.samples.iter()).collect()
}

fn whole() -> Attribution {
    let mut a = Attribution::new();
    a.fold_slice(fixture());
    a
}

fn meta() -> SliceMeta {
    SliceMeta {
        arch: "milan".into(),
        app: "cg".into(),
        scope: "strided(500)".into(),
        seed: 41,
        fingerprint: sweep::slice_fingerprint(fixture()),
    }
}

proptest! {
    /// Sharding at arbitrary boundaries and merging in order equals the
    /// whole-sweep fold, byte for byte.
    #[test]
    fn shard_then_merge_is_identity(cuts in prop::collection::vec(0usize..1000, 1..6)) {
        let samples = all_samples();
        prop_assume!(!samples.is_empty());
        let mut bounds: Vec<usize> = cuts.iter().map(|c| c % (samples.len() + 1)).collect();
        bounds.push(0);
        bounds.push(samples.len());
        bounds.sort_unstable();
        bounds.dedup();

        let mut merged = Attribution::new();
        for w in bounds.windows(2) {
            let mut shard = Attribution::new();
            for s in &samples[w[0]..w[1]] {
                shard.fold_sample(s);
            }
            merged.merge(&shard);
        }
        let whole = whole();
        prop_assert_eq!(&merged, &whole);
        prop_assert_eq!(merged.to_json(&meta()), whole.to_json(&meta()));
    }

    /// Merge is commutative: reversing the shard merge order changes
    /// nothing (integer accumulation has no order sensitivity).
    #[test]
    fn merge_order_is_irrelevant(split in 1usize..1000) {
        let samples = all_samples();
        prop_assume!(samples.len() >= 2);
        let at = 1 + split % (samples.len() - 1);
        let mut left = Attribution::new();
        let mut right = Attribution::new();
        for s in &samples[..at] {
            left.fold_sample(s);
        }
        for s in &samples[at..] {
            right.fold_sample(s);
        }
        let mut ab = left.clone();
        ab.merge(&right);
        let mut ba = right.clone();
        ba.merge(&left);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.to_json(&meta()), ba.to_json(&meta()));
    }
}

/// The fixture really contains failure-injected NaN repetitions — the
/// merge-law properties above cover the NaN path, not just clean data.
#[test]
fn fixture_contains_nan_failures() {
    let nan_reps: u64 = all_samples()
        .iter()
        .flat_map(|s| &s.runtimes)
        .filter(|t| !t.is_finite())
        .count() as u64;
    assert!(nan_reps > 0, "fixture must inject failures");
    assert_eq!(whole().grand.failed_reps, nan_reps);
}

/// The attribution of a scheduler-produced slice is identical at any
/// worker count (the scheduler is deterministic; folding preserves it).
#[test]
fn worker_count_does_not_change_the_profile() {
    let spec = SweepSpec {
        scope: Scope::Strided(800),
        reps: 2,
        seed: 23,
        failure_rate: 0.05,
        ..SweepSpec::default()
    };
    let app = workloads::app("cg").expect("cg registered");
    let setting = workloads::Setting {
        input_code: 0,
        num_threads: 96,
    };
    let mut profiles = Vec::new();
    for workers in [1usize, 2, 4] {
        let (data, _) = sweep::sweep_setting_scheduled(
            Arch::Milan,
            app,
            setting,
            0,
            &spec,
            &sweep::SweepOptions::new(workers),
        );
        let mut a = Attribution::new();
        a.fold_batch(&data);
        profiles.push(a);
    }
    let m = SliceMeta {
        arch: "milan".into(),
        app: "cg".into(),
        scope: "strided(800)".into(),
        seed: 23,
        fingerprint: 0,
    };
    assert_eq!(profiles[0], profiles[1]);
    assert_eq!(profiles[1], profiles[2]);
    assert_eq!(profiles[0].to_json(&m), profiles[2].to_json(&m));
}
