//! Cost-attribution scenario: explain where a configuration's time goes,
//! phase by phase and category by category, before and after tuning.
//!
//! Run with: `cargo run --release --example explain -- [app] [arch]`
//! (defaults: mg on a64fx — the wake-up-dominated case)

use omptune::core::{Arch, KmpBlocktime, KmpLibrary, TuningConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let app_name = args.first().map(String::as_str).unwrap_or("mg");
    let arch = args
        .get(1)
        .and_then(|s| Arch::from_id(s))
        .unwrap_or(Arch::A64fx);
    let app = omptune::apps::app(app_name).expect("known app");
    let setting = omptune::apps::Setting {
        input_code: 0,
        num_threads: arch.cores(),
    };
    let model = (app.model)(arch, setting);

    let default = TuningConfig::default_for(arch, arch.cores());
    println!("=== {app_name} on {arch}, default configuration ===");
    println!(
        "{}",
        omptune::sim::explain(arch, &default, &model, 0).render()
    );

    let tuned = TuningConfig {
        library: KmpLibrary::Turnaround,
        blocktime: KmpBlocktime::Infinite,
        places: omptune::core::OmpPlaces::Cores,
        ..default
    };
    println!("=== {app_name} on {arch}, turnaround + bound ===");
    let e = omptune::sim::explain(arch, &tuned, &model, 0);
    println!("{}", e.render());

    let base = omptune::sim::simulate(arch, &default, &model, 0).seconds();
    println!("speedup: {:.3}x", base / e.result.seconds());
}
