//! Domain scenario: Monte Carlo neutron-transport cross-section lookups
//! (the paper's XSBench/RSBench motif), run for real on the executing
//! runtime and compared against the simulator's placement story.
//!
//! Run with: `cargo run --release --example neutron_transport`

use omptune::core::{Arch, OmpSchedule, TuningConfig};
use omptune::rt::ThreadPool;
use std::time::Instant;

fn main() {
    // --- Real lookups on the executing runtime. ------------------------
    let grid = omptune::apps::proxy::xsbench::real::Grid::new(4096, 32);
    let lookups = 300_000;
    for threads in [1usize, 2, 4] {
        let pool = ThreadPool::with_defaults(threads);
        for schedule in [
            OmpSchedule::Static,
            OmpSchedule::Dynamic,
            OmpSchedule::Guided,
        ] {
            let t0 = Instant::now();
            let checksum =
                omptune::apps::proxy::xsbench::real::run(&pool, schedule, &grid, lookups);
            println!(
                "real xsbench: {threads} threads {schedule:?}: checksum {checksum:.3} in {:?}",
                t0.elapsed()
            );
        }
    }

    // --- The multipole variant (RSBench). ------------------------------
    let table = omptune::apps::proxy::rsbench::real::pole_table(64, 16);
    let pool = ThreadPool::with_defaults(4);
    let checksum =
        omptune::apps::proxy::rsbench::real::run(&pool, OmpSchedule::Guided, &table, 16, 100_000);
    println!("real rsbench: checksum {checksum:.3}");

    // --- The paper's placement finding, on the simulated machines. -----
    println!("\nsimulated binding speedups for xsbench (paper Table V):");
    let app = omptune::apps::app("xsbench").expect("registered");
    for arch in Arch::ALL {
        let setting = omptune::apps::Setting {
            input_code: 1,
            num_threads: arch.cores(),
        };
        let model = (app.model)(arch, setting);
        let default = TuningConfig::default_for(arch, arch.cores());
        let base = omptune::sim::simulate(arch, &default, &model, 0).seconds();
        let mut best = (1.0f64, default);
        for config in omptune::core::ConfigSpace::new(arch, arch.cores())
            .iter()
            .step_by(7)
        {
            let t = omptune::sim::simulate(arch, &config, &model, 0).seconds();
            if base / t > best.0 {
                best = (base / t, config);
            }
        }
        println!(
            "  {:<8} best {:.3}x via {}   (paper: a64fx <=1.015, milan up to 2.602, skylake <=1.002)",
            arch.id(),
            best.0,
            best.1.describe()
        );
    }
}
