//! Autotuning scenario (the paper's Sec. VI proposal): use the influence
//! analysis as a search-space pruning device for a hill-climbing tuner,
//! and compare evaluations-to-near-optimal against random search and an
//! unguided variable order.
//!
//! Run with: `cargo run --release --example autotune -- [app] [arch]`
//! (defaults: cg on milan)

use omptune::core::{
    hill_climb, influence_analysis, influence_order, random_search, Arch, ConfigSpace, GroupBy,
    TuningConfig, Variable,
};
use omptune::data::{Dataset, Scope, SweepSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let app_name = args.first().map(String::as_str).unwrap_or("cg");
    let arch = args
        .get(1)
        .and_then(|s| Arch::from_id(s))
        .unwrap_or(Arch::Milan);
    let app = omptune::apps::app(app_name).expect("known app");
    assert!(
        omptune::apps::available_on(app.name, arch),
        "{app_name} not run on {arch}"
    );

    let setting = omptune::apps::Setting {
        input_code: 1,
        num_threads: arch.cores(),
    };
    let model = (app.model)(arch, setting);
    let objective = |c: &TuningConfig| omptune::sim::simulate(arch, c, &model, 0).total_ns;

    // Ground truth: exhaustive search (what the paper paid 240k runs for).
    println!("exhaustive ground truth for {app_name}/{arch} ...");
    let space = ConfigSpace::new(arch, arch.cores());
    let mut optimum = f64::INFINITY;
    for c in space.iter() {
        optimum = optimum.min(objective(&c));
    }
    let default_t = objective(&TuningConfig::default_for(arch, arch.cores()));
    println!(
        "space {} configs; default {:.4}s; optimum {:.4}s (speedup {:.3}x)\n",
        space.len(),
        default_t * 1e-9,
        optimum * 1e-9,
        default_t / optimum
    );

    // Influence-guided variable order from a small pilot sweep.
    println!("pilot sweep for influence ordering ...");
    let spec = SweepSpec {
        scope: Scope::Strided(64),
        reps: 1,
        seed: 13,
        ..SweepSpec::default()
    };
    let mut batches = vec![omptune::data::sweep_setting(arch, app, setting, 0, &spec)];
    omptune::data::clean(&mut batches[0], 1);
    let ds = Dataset::build(&batches);
    let hm = influence_analysis(&ds.records, GroupBy::ArchApplication).expect("fits");
    let row = &hm.rows[0];
    let guided = influence_order(row, &hm.features);
    println!("guided order: {guided:?}\n");

    let start = TuningConfig::default_for(arch, arch.cores());
    let budget = 120;
    let runs = [
        (
            "hill-climb (influence-guided)",
            hill_climb(arch, start, &guided, budget, objective),
        ),
        (
            "hill-climb (declaration order)",
            hill_climb(arch, start, &Variable::ALL, budget, objective),
        ),
        (
            "random search",
            random_search(arch, arch.cores(), 7, budget, objective),
        ),
    ];
    println!(
        "{:<32} {:>8} {:>12} {:>18}",
        "strategy", "evals", "best (s)", "evals to <=1.02*opt"
    );
    for (name, r) in &runs {
        let to_opt = omptune::core::tuner::evals_to_within(&r.trajectory, optimum, 1.02)
            .map(|e| e.to_string())
            .unwrap_or_else(|| "never".into());
        println!(
            "{:<32} {:>8} {:>12.4} {:>18}",
            name,
            r.evaluations,
            r.best_value * 1e-9,
            to_opt
        );
    }
    println!(
        "\npilot sweep cost: {} evaluations; exhaustive would cost {}.",
        ds.records.len(),
        space.len()
    );
}
