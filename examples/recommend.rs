//! Recommendation pipeline end-to-end: sweep → dataset → influence
//! analysis → architecture-aware advice, the paper's Sec. V deliverable.
//!
//! Run with: `cargo run --release --example recommend -- [arch]`
//! (default: milan)

use omptune::core::{influence_analysis, recommend_for, worst_trends, Arch, Feature, GroupBy};
use omptune::data::{Dataset, Scope, SweepSpec};

fn main() {
    let arch = std::env::args()
        .nth(1)
        .and_then(|s| Arch::from_id(&s))
        .unwrap_or(Arch::Milan);

    println!("collecting data for {} ...", arch.display_name());
    let spec = SweepSpec {
        scope: Scope::Strided(16),
        reps: 3,
        seed: 3,
        ..SweepSpec::default()
    };
    let mut batches = omptune::data::sweep_arch(arch, &spec);
    for b in &mut batches {
        omptune::data::clean(b, spec.reps as usize);
    }
    let dataset = Dataset::build(&batches);
    println!("{} samples collected\n", dataset.records.len());

    // Which variables matter on this architecture?
    let hm =
        influence_analysis(&dataset.records, GroupBy::Architecture).expect("analysis succeeds");
    let row = hm.row(arch.id()).expect("arch present");
    println!("feature influence on {}:", arch.id());
    let mut ranked: Vec<(Feature, f64)> = hm
        .features
        .iter()
        .copied()
        .zip(row.influence.iter().copied())
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite influence"));
    for (f, v) in &ranked {
        println!(
            "  {:<20} {:.3} {}",
            f.name(),
            v,
            "#".repeat((v * 40.0) as usize)
        );
    }
    println!(
        "(model accuracy {:.2}, optimal fraction {:.2})\n",
        row.accuracy, row.optimal_fraction
    );

    // Per-application advice.
    println!("per-application recommendations on {}:", arch.id());
    for app in omptune::apps::apps_on(arch) {
        if let Some(report) = recommend_for(&dataset.records, app.name, arch, 24, 0.7) {
            let advice = if report.recommendations.is_empty() {
                "keep the defaults".to_string()
            } else {
                report
                    .recommendations
                    .iter()
                    .take(3)
                    .map(|r| format!("{}={}", r.variable, r.value))
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            println!(
                "  {:<10} best {:.3}x  ->  {}",
                app.name, report.best_speedup, advice
            );
        }
    }

    // And what to avoid.
    println!("\npatterns to avoid (worst 1% of samples):");
    for t in worst_trends(&dataset.records, dataset.records.len() / 100) {
        if t.lift() > 1.5 {
            println!("  {:<55} lift {:.1}x", t.pattern, t.lift());
        }
    }
}
