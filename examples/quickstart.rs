//! Quickstart: the library in five minutes.
//!
//! 1. Parse a tuning configuration from (explicit) environment variables.
//! 2. Run a real parallel kernel on the executing runtime under it.
//! 3. Simulate the same configuration on the three paper machines.
//! 4. Ask the recommender what to change.
//!
//! Run with: `cargo run --release --example quickstart`

use omptune::core::{Arch, ConfigSpace, TuningConfig};
use omptune::rt::{parallel_reduce_sum, RuntimeConfig};
use std::collections::BTreeMap;

fn main() {
    // --- 1. A configuration, as a job script would set it. -------------
    let env: BTreeMap<String, String> = [
        ("OMP_NUM_THREADS", "4"),
        ("OMP_SCHEDULE", "guided"),
        ("OMP_PLACES", "cores"),
        ("KMP_LIBRARY", "turnaround"),
        ("KMP_BLOCKTIME", "infinite"),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), v.to_string()))
    .collect();

    let rc = RuntimeConfig::from_map(&env, Arch::Milan, 4).expect("valid environment");
    println!("configuration : {}", rc.config.describe());
    println!("wait policy   : {:?}", rc.config.wait_policy());
    println!("effective bind: {:?}", rc.config.effective_bind());
    println!("reduction     : {:?}", rc.config.reduction_method());

    // --- 2. Execute a real reduction kernel under that configuration. --
    let pool = rc.build_pool();
    let n = 4_000_000;
    let pi = parallel_reduce_sum(
        &pool,
        rc.config.schedule,
        rc.config.reduction_method(),
        n,
        |i| {
            let x = (i as f64 + 0.5) / n as f64;
            4.0 / (1.0 + x * x)
        },
    ) / n as f64;
    println!(
        "\nreal runtime  : pi ~= {pi:.9} on {} threads",
        pool.num_threads()
    );

    // --- 3. Simulate a benchmark under default vs. tuned config. -------
    let app = omptune::apps::app("xsbench").expect("registered");
    for arch in Arch::ALL {
        let setting = omptune::apps::Setting {
            input_code: 1,
            num_threads: arch.cores(),
        };
        let model = (app.model)(arch, setting);
        let default = TuningConfig::default_for(arch, arch.cores());
        let tuned = TuningConfig {
            places: omptune::core::OmpPlaces::Cores,
            ..default
        };
        let t_default = omptune::sim::simulate(arch, &default, &model, 0).seconds();
        let t_tuned = omptune::sim::simulate(arch, &tuned, &model, 0).seconds();
        println!(
            "xsbench on {:<8} default {:.3}s  OMP_PLACES=cores {:.3}s  speedup {:.3}x",
            arch.id(),
            t_default,
            t_tuned,
            t_default / t_tuned
        );
    }

    // --- 4. The space a full per-setting sweep would explore. ----------
    println!(
        "\nfull sweep would try {} configs per setting on x86, {} on A64FX",
        ConfigSpace::new(Arch::Milan, 96).len(),
        ConfigSpace::new(Arch::A64fx, 48).len()
    );
}
