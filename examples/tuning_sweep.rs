//! Tuning-sweep scenario: explore the configuration space of one
//! application on one architecture, exactly as one batch of the paper's
//! data collection, then report what mattered.
//!
//! Run with: `cargo run --release --example tuning_sweep -- [app] [arch]`
//! (defaults: nqueens on a64fx)

use omptune::core::{influence_analysis, recommend_for, Arch, GroupBy};
use omptune::data::{Dataset, Scope, SweepSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let app_name = args.first().map(String::as_str).unwrap_or("nqueens");
    let arch = args
        .get(1)
        .and_then(|s| Arch::from_id(s))
        .unwrap_or(Arch::A64fx);

    let app = omptune::apps::app(app_name).unwrap_or_else(|| {
        eprintln!(
            "unknown app {app_name}; available: {:?}",
            omptune::apps::apps()
                .iter()
                .map(|a| a.name)
                .collect::<Vec<_>>()
        );
        std::process::exit(1);
    });
    if !omptune::apps::available_on(app.name, arch) {
        eprintln!("{app_name} was not executed on {arch} in the study");
        std::process::exit(1);
    }

    // Sweep every 8th configuration of each setting (fast but dense).
    let spec = SweepSpec {
        scope: Scope::Strided(8),
        reps: 3,
        seed: 1,
        ..SweepSpec::default()
    };
    println!("sweeping {app_name} on {arch} ...");
    let mut batches = Vec::new();
    for (idx, setting) in omptune::apps::settings_for(app, arch)
        .into_iter()
        .enumerate()
    {
        let batch = omptune::data::sweep_setting(arch, app, setting, idx, &spec);
        println!(
            "  setting input={} threads={}: {} samples, default {:.4}s",
            setting.input_code,
            setting.num_threads,
            batch.samples.len(),
            batch.default_mean()
        );
        batches.push(batch);
    }
    let dataset = Dataset::build(&batches);

    // Distribution summary per setting.
    for (i, batch) in batches.iter().enumerate() {
        let speedups: Vec<f64> = batch.samples.iter().map(|s| batch.speedup(s)).collect();
        let summary = omptune::stats::Summary::of(&speedups).expect("non-empty");
        println!(
            "setting {i}: speedup min {:.3} median {:.3} max {:.3}",
            summary.min, summary.median, summary.max
        );
    }

    // Which variables separate optimal from sub-optimal configs here?
    match influence_analysis(&dataset.records, GroupBy::ArchApplication) {
        Ok(hm) => {
            println!("\ninfluence ({arch}/{app_name}):");
            print!("{}", hm.render_text());
        }
        Err(e) => println!("\ninfluence analysis unavailable: {e}"),
    }

    // Actionable recommendation.
    if let Some(report) = recommend_for(&dataset.records, app_name, arch, 32, 0.6) {
        println!("\nbest observed speedup: {:.3}x", report.best_speedup);
        println!("best config: {}", report.best_config.describe());
        if report.recommendations.is_empty() {
            println!("recommendation: the defaults are already near-optimal");
        } else {
            for r in &report.recommendations {
                println!(
                    "recommend {}={} (shared by {:.0}% of top configs)",
                    r.variable,
                    r.value,
                    r.support * 100.0
                );
            }
        }
    }
}
