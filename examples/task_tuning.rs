//! Domain scenario: task-parallel workloads (the BOTS motif) and the
//! `KMP_LIBRARY` effect — the paper's biggest tuning win (NQueens,
//! 2.3–4.9× from `turnaround`).
//!
//! Runs the real task kernels on the work-stealing runtime, then shows
//! the simulated wait-policy effect per architecture.
//!
//! Run with: `cargo run --release --example task_tuning`

use omptune::core::{Arch, KmpBlocktime, KmpLibrary, TuningConfig, WaitPolicy};
use omptune::rt::ThreadPool;
use std::time::Instant;

fn main() {
    // --- Real task kernels under different wait policies. --------------
    for (label, policy) in [
        (
            "throughput/200ms (default)",
            WaitPolicy::SpinThenSleep {
                millis: 200,
                yielding: true,
            },
        ),
        (
            "turnaround/infinite",
            WaitPolicy::Active { yielding: false },
        ),
        ("blocktime 0 (passive)", WaitPolicy::Passive),
    ] {
        let pool = ThreadPool::new(4, policy);
        let t0 = Instant::now();
        let solutions = omptune::apps::bots::nqueens::real::run(&pool, 11);
        let nq = t0.elapsed();
        let t0 = Instant::now();
        let mut data = omptune::apps::bots::sort::real::input(400_000, 7);
        omptune::apps::bots::sort::real::run(&pool, &mut data);
        let sort = t0.elapsed();
        println!("{label:<28} nqueens(11)={solutions} in {nq:?}; sort(400k) in {sort:?}");
        assert_eq!(solutions, 2680);
        assert!(data.windows(2).all(|w| w[0] <= w[1]));
    }

    // --- Health simulation: deterministic across pools. ----------------
    let pool = ThreadPool::with_defaults(4);
    let totals = omptune::apps::bots::health::real::run(&pool, 3, 4, 60);
    println!("\nhealth simulation: {totals:?}");

    // --- The paper's library effect, simulated per architecture. -------
    println!("\nsimulated KMP_LIBRARY=turnaround speedup for nqueens (paper Table VII):");
    let app = omptune::apps::app("nqueens").expect("registered");
    for arch in Arch::ALL {
        let setting = omptune::apps::Setting {
            input_code: 1,
            num_threads: arch.cores(),
        };
        let model = (app.model)(arch, setting);
        let default = TuningConfig::default_for(arch, arch.cores());
        let tuned = TuningConfig {
            library: KmpLibrary::Turnaround,
            blocktime: KmpBlocktime::Infinite,
            ..default
        };
        let t_default = omptune::sim::simulate(arch, &default, &model, 0).seconds();
        let t_tuned = omptune::sim::simulate(arch, &tuned, &model, 0).seconds();
        println!(
            "  {:<8} {:.3}s -> {:.3}s  speedup {:.2}x  (paper range 2.342 - 4.851)",
            arch.id(),
            t_default,
            t_tuned,
            t_default / t_tuned
        );
    }
}
