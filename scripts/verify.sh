#!/usr/bin/env bash
# Repository verification gate: build, tests, formatting, lints.
#
# Usage: scripts/verify.sh
#
# Run from anywhere; the script cd's to the repo root. Fails fast on the
# first broken step so CI output points at the culprit.

set -euo pipefail
cd "$(dirname "$0")/.."

step() {
    echo
    echo "==> $*"
    "$@"
}

step cargo build --release --workspace
step cargo test --workspace -q
step cargo fmt --all --check
step cargo clippy --workspace --all-targets -- -D warnings
step cargo bench -p bench-harness --bench telemetry_overhead
step cargo run --release -p sweep --bin omptel-report -- --self-check

# Cache coherence: a cold sweep and a warm replay from the sample cache
# must produce byte-identical provenance, even at different worker counts.
echo
echo "==> sweep cache coherence (cold vs warm provenance)"
coherence_dir="$(mktemp -d)"
trap 'rm -rf "$coherence_dir"' EXIT
cargo run --release -p sweep --bin collect -- tiny "$coherence_dir/cold" \
    --workers 4 --cache-dir "$coherence_dir/cache" 2>/dev/null
cargo run --release -p sweep --bin collect -- tiny "$coherence_dir/warm" \
    --workers 2 --cache-dir "$coherence_dir/cache" 2>/dev/null
cmp "$coherence_dir/cold/provenance.jsonl" "$coherence_dir/warm/provenance.jsonl" || {
    echo "verify: warm sweep provenance diverged from cold sweep" >&2
    exit 1
}
echo "cold and warm provenance byte-identical"

# Trace validation: a live traced collect run must (a) leave the
# provenance byte-identical to the untraced runs above, and (b) export a
# structurally valid trace — spans well-nested per thread, every
# cross-worker flow resolved, drop count reported by trace-check.
echo
echo "==> flight-recorder trace validation (live traced collect)"
cargo run --release -p sweep --bin collect -- tiny "$coherence_dir/traced" \
    --workers 4 --cache-dir "$coherence_dir/trace-cache" \
    --trace "$coherence_dir/traced/trace.json" 2>/dev/null
cmp "$coherence_dir/cold/provenance.jsonl" "$coherence_dir/traced/provenance.jsonl" || {
    echo "verify: traced sweep provenance diverged from untraced sweep" >&2
    exit 1
}
echo "traced and untraced provenance byte-identical"
step cargo run --release -p sweep --bin trace-check -- \
    "$coherence_dir/traced/trace.json"

# Bench regression gate: fresh sweep_warmcold numbers must stay within
# the noise band of the committed baseline.
echo
echo "==> bench regression gate (sweep_warmcold vs committed baseline)"
BENCH_OUT="$coherence_dir/bench_sweep.json" \
    cargo bench -p bench-harness --bench sweep_warmcold
step cargo run --release -p bench-harness --bin bench-diff -- \
    --baseline BENCH_sweep.json "$coherence_dir/bench_sweep.json" --band 2.0

echo
echo "verify: all gates passed"
