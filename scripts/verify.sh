#!/usr/bin/env bash
# Repository verification gate: build, tests, formatting, lints.
#
# Usage: scripts/verify.sh
#
# Run from anywhere; the script cd's to the repo root. Fails fast on the
# first broken step so CI output points at the culprit.

set -euo pipefail
cd "$(dirname "$0")/.."

step() {
    echo
    echo "==> $*"
    "$@"
}

step cargo build --release --workspace
step cargo test --workspace -q
step cargo fmt --all --check
step cargo clippy --workspace --all-targets -- -D warnings
step cargo bench -p bench-harness --bench telemetry_overhead
step cargo run --release -p sweep --bin omptel-report -- --self-check

echo
echo "verify: all gates passed"
