#!/usr/bin/env bash
# Repository verification gate: build, tests, formatting, lints.
#
# Usage: scripts/verify.sh
#
# Run from anywhere; the script cd's to the repo root. Fails fast on the
# first broken step so CI output points at the culprit.

set -euo pipefail
cd "$(dirname "$0")/.."

step() {
    echo
    echo "==> $*"
    "$@"
}

step cargo build --release --workspace
step cargo test --workspace -q
step cargo fmt --all --check
step cargo clippy --workspace --all-targets -- -D warnings
step cargo bench -p bench-harness --bench telemetry_overhead
step cargo run --release -p sweep --bin omptel-report -- --self-check

# Cache coherence: a cold sweep and a warm replay from the sample cache
# must produce byte-identical provenance, even at different worker counts.
echo
echo "==> sweep cache coherence (cold vs warm provenance)"
coherence_dir="$(mktemp -d)"
collect_pid=""
cleanup() {
    [ -n "$collect_pid" ] && kill "$collect_pid" 2>/dev/null || true
    rm -rf "$coherence_dir"
}
trap cleanup EXIT
cargo run --release -p sweep --bin collect -- tiny "$coherence_dir/cold" \
    --workers 4 --cache-dir "$coherence_dir/cache" 2>/dev/null
cargo run --release -p sweep --bin collect -- tiny "$coherence_dir/warm" \
    --workers 2 --cache-dir "$coherence_dir/cache" 2>/dev/null
cmp "$coherence_dir/cold/provenance.jsonl" "$coherence_dir/warm/provenance.jsonl" || {
    echo "verify: warm sweep provenance diverged from cold sweep" >&2
    exit 1
}
# The byte-identity above must include the modeled joules: every
# provenance record carries its closed energy breakdown, so the cmp
# gates energy reproducibility too — but only if the fields are there.
grep -q '"total_j"' "$coherence_dir/cold/provenance.jsonl" || {
    echo "verify: provenance records carry no energy breakdown (total_j missing)" >&2
    exit 1
}
echo "cold and warm provenance byte-identical (modeled joules included)"

# Migration gate: a legacy JSONL-only cache upgraded in place by
# cache-migrate must warm-answer byte-identically to the sweep-written
# binary cache. Strip the hot .bin files (leaving the archival JSONL —
# exactly what a pre-binary cache directory looks like), convert, then
# warm-sweep at a third worker count.
echo
echo "==> cache migration gate (JSONL-only -> cache-migrate -> warm sweep)"
find "$coherence_dir/cache" -name '*.bin' -delete
migrate_out="$(cargo run --release -p sweep --bin cache-migrate -- "$coherence_dir/cache")"
echo "$migrate_out"
grep -qE '^cache-migrate: [1-9][0-9]* file\(s\) converted' <<<"$migrate_out" || {
    echo "verify: cache-migrate converted no files" >&2
    exit 1
}
cargo run --release -p sweep --bin collect -- tiny "$coherence_dir/migrated" \
    --workers 1 --cache-dir "$coherence_dir/cache" 2>/dev/null
cmp "$coherence_dir/cold/provenance.jsonl" "$coherence_dir/migrated/provenance.jsonl" || {
    echo "verify: warm sweep over a migrated cache diverged from the cold sweep" >&2
    exit 1
}
echo "migrated cache answers byte-identically (workers 4, 2, 1 all agree)"

# Trace validation: a live traced collect run must (a) leave the
# provenance byte-identical to the untraced runs above, and (b) export a
# structurally valid trace — spans well-nested per thread, every
# cross-worker flow resolved, drop count reported by trace-check.
echo
echo "==> flight-recorder trace validation (live traced collect)"
cargo run --release -p sweep --bin collect -- tiny "$coherence_dir/traced" \
    --workers 4 --cache-dir "$coherence_dir/trace-cache" \
    --trace "$coherence_dir/traced/trace.json" 2>/dev/null
cmp "$coherence_dir/cold/provenance.jsonl" "$coherence_dir/traced/provenance.jsonl" || {
    echo "verify: traced sweep provenance diverged from untraced sweep" >&2
    exit 1
}
echo "traced and untraced provenance byte-identical"
step cargo run --release -p sweep --bin trace-check -- \
    "$coherence_dir/traced/trace.json"

# Live monitor: a monitored collect run must serve valid Prometheus
# /metrics, /healthz, the /sweep JSON (including the ring-buffer and
# watchdog telemetry counters), and the streaming /influence ranking
# while the sweep is running, and still produce byte-identical
# provenance to the unmonitored runs.
echo
echo "==> live monitor gate (/metrics, /healthz, /sweep, /influence, /energy while sweeping)"
http_get() { # http_get HOST:PORT PATH — plain HTTP/1.0 over /dev/tcp
    local host="${1%:*}" port="${1##*:}"
    exec 3<>"/dev/tcp/$host/$port"
    printf 'GET %s HTTP/1.0\r\n\r\n' "$2" >&3
    cat <&3
    exec 3<&- 3>&-
}
cargo run --release -p sweep --bin collect -- tiny "$coherence_dir/monitored" \
    --workers 2 --cache-dir "$coherence_dir/mon-cache" \
    --monitor 127.0.0.1:0 2>/dev/null &
collect_pid=$!
addr=""
for _ in $(seq 1 100); do
    if [ -s "$coherence_dir/monitored/monitor.addr" ]; then
        # First line is the address; later lines are sidecar context
        # (the registry directory), so no whole-file parse here.
        addr="$(head -n1 "$coherence_dir/monitored/monitor.addr" | tr -d '[:space:]')"
        break
    fi
    sleep 0.1
done
[ -n "$addr" ] || { echo "verify: monitor.addr never appeared" >&2; exit 1; }
metrics="$(http_get "$addr" /metrics)"
grep -q '^# TYPE omptel_regions_total counter' <<<"$metrics" || {
    echo "verify: /metrics is not valid Prometheus exposition" >&2
    exit 1
}
grep -q '^omptel_sweep_total ' <<<"$metrics" || {
    echo "verify: /metrics is missing the sweep progress gauges" >&2
    exit 1
}
grep -q '^omptel_sweep_energy_joules ' <<<"$metrics" || {
    echo "verify: /metrics is missing the modeled-energy gauges" >&2
    exit 1
}
http_get "$addr" /healthz | grep -q '^ok$' || {
    echo "verify: /healthz did not answer ok" >&2
    exit 1
}
sweep_json="$(http_get "$addr" /sweep)"
grep -q '"scope"' <<<"$sweep_json" || {
    echo "verify: /sweep JSON is missing the scope field" >&2
    exit 1
}
grep -q '"omptel_ring_dropped_total"' <<<"$sweep_json" || {
    echo "verify: /sweep JSON is missing the ring drop counter" >&2
    exit 1
}
grep -q '"watchdog"' <<<"$sweep_json" || {
    echo "verify: /sweep JSON is missing the watchdog counters" >&2
    exit 1
}
grep -q '"priced_batches"' <<<"$sweep_json" || {
    echo "verify: /sweep JSON is missing the warm-engine counters" >&2
    exit 1
}
runs_json="$(http_get "$addr" /runs)"
grep -q '"records"' <<<"$runs_json" || {
    echo "verify: /runs is not serving the run-registry listing" >&2
    exit 1
}
influence_json="$(http_get "$addr" /influence)"
grep -q '"influence"' <<<"$influence_json" || {
    echo "verify: /influence is not serving the streaming ranking" >&2
    exit 1
}
grep -q '"OMP_PROC_BIND"' <<<"$influence_json" || {
    echo "verify: /influence ranking is missing the env features" >&2
    exit 1
}
energy_json="$(http_get "$addr" /energy)"
# Per-arch joules only appear as architectures complete, so mid-run we
# only require the document shape; the ring-series check below gates
# the recorded values after the run finishes.
grep -q '"schema":"ompwatt-energy-v1"' <<<"$energy_json" || {
    echo "verify: /energy is not serving the energy exposition" >&2
    exit 1
}
grep -q '"arches":\[' <<<"$energy_json" || {
    echo "verify: /energy document is missing the arches array" >&2
    exit 1
}
echo "live /metrics, /healthz, /sweep, /influence, /energy, /runs all answered mid-run"
wait "$collect_pid"
collect_pid=""
grep -q '^registry ' "$coherence_dir/monitored/monitor.addr" || {
    echo "verify: monitor.addr sidecar is missing the registry line" >&2
    exit 1
}
cmp "$coherence_dir/cold/provenance.jsonl" "$coherence_dir/monitored/provenance.jsonl" || {
    echo "verify: monitored sweep provenance diverged from unmonitored sweep" >&2
    exit 1
}
echo "monitored and unmonitored provenance byte-identical"
# The completed run must have recorded joules ring series alongside the
# virtual-time ones (one stratified series per arch, plus the per-arch
# totals the observatory trends).
ls "$coherence_dir/monitored/tsdb/"*@energy@*.omts >/dev/null 2>&1 || {
    echo "verify: collect wrote no energy ring series to tsdb/" >&2
    exit 1
}
echo "energy ring series recorded in tsdb/ alongside virtual time"

# Drift sentinel self-comparison: the cold and warm runs above share a
# seed, so their per-stratum virtual-time series must be statistically
# indistinguishable — ompmon has to say OK (exit 0; 4 would mean drift).
step cargo run --release -p ompmon --bin ompmon -- \
    drift "$coherence_dir/cold" "$coherence_dir/warm"

# Longitudinal observatory gate: the five collect runs above all share
# one registry ($coherence_dir/.ompobs, the out-dir sibling default).
# Same tree + same seed means every record must carry the same content
# address regardless of worker count, the change-point sentinel must
# say OK over that history, and a deliberately perturbed sixth run
# (+10% virtual time on one architecture) must flip the sentinel to
# exit 4 with blame naming the perturbed slice.
echo
echo "==> longitudinal observatory gate (registry, sentinel, blame, report)"
obs_dir="$coherence_dir/.ompobs"
list_out="$(cargo run --release -q -p ompobs -- list --dir "$obs_dir")"
echo "$list_out"
collect_rows="$(awk '$3 == "collect"' <<<"$list_out" | wc -l)"
[ "$collect_rows" -ge 5 ] || {
    echo "verify: registry holds only $collect_rows collect record(s), expected the 5 runs above" >&2
    exit 1
}
unique_hashes="$(awk '$3 == "collect" { print $5 }' <<<"$list_out" | sort -u | wc -l)"
[ "$unique_hashes" -eq 1 ] || {
    echo "verify: identical sweeps produced $unique_hashes distinct content addresses (workers 4/2/1 must agree byte-for-byte)" >&2
    exit 1
}
echo "content addresses identical across workers 4, 2, 1 (and traced/monitored)"
if cargo run --release -q -p ompobs -- sentinel --dir "$obs_dir"; then
    :
else
    echo "verify: sentinel flagged the identical-run history (or failed)" >&2
    exit 1
fi
[ -s "$obs_dir/history.json" ] || {
    echo "verify: sentinel did not write history.json" >&2
    exit 1
}
cargo run --release -p sweep --bin collect -- tiny "$coherence_dir/perturbed" \
    --workers 2 --cache-dir "$coherence_dir/cache" \
    --perturb skylake:1.10 2>/dev/null
if cargo run --release -q -p ompobs -- sentinel --dir "$obs_dir"; then
    echo "verify: sentinel missed the +10% skylake perturbation" >&2
    exit 1
else
    rc=$?
    [ "$rc" -eq 4 ] || {
        echo "verify: sentinel failed (exit $rc) instead of detecting the change-point (exit 4)" >&2
        exit 1
    }
fi
blame_out="$(cargo run --release -q -p ompobs -- blame --dir "$obs_dir")"
echo "$blame_out"
grep -q 'top regressed slice: skylake/' <<<"$blame_out" || {
    echo "verify: blame did not name the perturbed skylake slice" >&2
    exit 1
}
cargo run --release -q -p ompobs -- report --dir "$obs_dir"
head -1 "$obs_dir/report.html" | grep -q '<!DOCTYPE html>' || {
    echo "verify: report.html is missing the HTML prologue" >&2
    exit 1
}
tail -1 "$obs_dir/report.html" | grep -q '</html>' || {
    echo "verify: report.html is truncated" >&2
    exit 1
}
grep -q 'CHANGE-POINT' "$obs_dir/report.html" || {
    echo "verify: report.html lost the change-point verdict" >&2
    exit 1
}
echo "sentinel clean on identical history, change-point + blame on the perturbed run, dashboard well-formed"

# Bench regression gate: fresh sweep_warmcold numbers must stay within
# the noise band of the committed baseline.
echo
echo "==> bench regression gate (sweep_warmcold vs committed baseline)"
BENCH_OUT="$coherence_dir/bench_sweep.json" OMPOBS_DIR="$obs_dir" \
    cargo bench -p bench-harness --bench sweep_warmcold
step cargo run --release -p bench-harness --bin bench-diff -- \
    --baseline BENCH_sweep.json "$coherence_dir/bench_sweep.json" --band 2.0

# ompprof smoke: attribute a strided CG/Milan sweep and cross-check the
# top attributed variable against the logistic-regression influence
# ranking (exit 4 would mean they disagree); then render the
# best-vs-worst differential flame graphs and confirm the paper's
# 143.57x CG/Milan gap survives, the folded stacks parse (every line
# ends in an integer sample count), and the SVGs are well-formed.
echo
echo "==> ompprof smoke (attribution vs logreg, 143.57x gap, flame graphs)"
step cargo run --release -p ompprof -- attribute milan cg --check \
    --out "$coherence_dir/profile.json"
grep -q '"schema": "ompprof-attribution-v2"' "$coherence_dir/profile.json" || {
    echo "verify: profile.json is missing the attribution schema marker" >&2
    exit 1
}
grep -q '"energy_ranking"' "$coherence_dir/profile.json" || {
    echo "verify: profile.json is missing the energy-spread ranking" >&2
    exit 1
}
diff_out="$(cargo run --release -q -p ompprof -- diff milan cg \
    --out-dir "$coherence_dir/flame")"
echo "$diff_out"
grep -q '143\.57x' <<<"$diff_out" || {
    echo "verify: ompprof diff lost the paper's 143.57x CG/Milan gap" >&2
    exit 1
}
for f in best worst; do
    awk 'NF < 2 || $NF !~ /^[0-9]+$/ { bad = 1 } END { exit bad }' \
        "$coherence_dir/flame/$f.folded" || {
        echo "verify: flame/$f.folded is not valid folded-stack format" >&2
        exit 1
    }
done
for svg in flame_best flame_worst flame_diff flame_energy_diff; do
    head -1 "$coherence_dir/flame/$svg.svg" | grep -q '^<?xml' || {
        echo "verify: flame/$svg.svg is missing the XML prologue" >&2
        exit 1
    }
    tail -1 "$coherence_dir/flame/$svg.svg" | grep -q '</svg>' || {
        echo "verify: flame/$svg.svg is truncated" >&2
        exit 1
    }
done
echo "attribution agrees with logreg; folded stacks and flame SVGs well-formed"

# Energy disagreement gate: the headline ompwatt claim — at least one
# architecture's energy-optimal configuration differs from its
# time-optimal one — must hold (exit 4 from --check means it vanished),
# and the artifacts EXPERIMENTS.md and CI reference must be well-formed.
echo
echo "==> energy disagreement gate (ompwatt report --check)"
step cargo run --release -p ompwatt -- report cg --scope 200 --workers 4 \
    --out-dir "$coherence_dir/ompwatt" --check
grep -q 'DISAGREE' "$coherence_dir/ompwatt/disagreement.md" || {
    echo "verify: disagreement.md lists no disagreeing architecture" >&2
    exit 1
}
head -1 "$coherence_dir/ompwatt/energy_heatmap.svg" | grep -q '^<?xml' || {
    echo "verify: energy_heatmap.svg is missing the XML prologue" >&2
    exit 1
}
tail -1 "$coherence_dir/ompwatt/energy_heatmap.svg" | grep -q '</svg>' || {
    echo "verify: energy_heatmap.svg is truncated" >&2
    exit 1
}
grep -q '"schema": "ompwatt-report-v1"' "$coherence_dir/ompwatt/ompwatt.json" || {
    echo "verify: ompwatt.json is missing the report schema marker" >&2
    exit 1
}
echo "energy-vs-time disagreement holds; ompwatt artifacts well-formed"

# Schedule-space certification smoke: 25 generated programs x 64
# perturbed schedules (1600 pairs), every trace through the
# happens-before checker and the differential harness. Exit 4 means the
# campaign found a real schedule violation; any other failure is an
# internal error — both block, with distinct diagnostics.
echo
echo "==> schedule-space certification smoke (ompfuzz certify, 25x64)"
if cargo run --release -q -p ompfuzz -- certify --seeds 25 --schedules 64 \
    --budget-s 300 --out "$coherence_dir/certification.json"; then
    :
else
    rc=$?
    if [ "$rc" -eq 4 ]; then
        echo "verify: certification campaign found schedule violations (exit 4)" >&2
    else
        echo "verify: ompfuzz certify failed internally (exit $rc)" >&2
    fi
    exit 1
fi
pairs="$(grep -o '"pairs": *[0-9]*' "$coherence_dir/certification.json" | grep -o '[0-9]*')"
[ "${pairs:-0}" -ge 1000 ] || {
    echo "verify: certification covered only ${pairs:-0} (program, schedule) pairs (< 1000)" >&2
    exit 1
}
echo "certification clean over $pairs (program, schedule) pairs"

# Generator determinism must also hold under release codegen (the CI
# smoke above runs release): same seed, byte-identical artifacts.
step cargo test -p ompfuzz --release --test determinism -q

# Checker throughput gate: trace replay rate through check_trace must
# stay within the noise band of the committed baseline — the campaign
# above is checker-bound, so a replay regression shrinks CI coverage.
echo
echo "==> checker throughput gate (checker_throughput vs committed baseline)"
BENCH_OUT="$coherence_dir/bench_checker.json" OMPOBS_DIR="$obs_dir" \
    cargo bench -p bench-harness --bench checker_throughput
step cargo run --release -p bench-harness --bin bench-diff -- \
    --baseline BENCH_checker.json "$coherence_dir/bench_checker.json" --band 2.0

# Attribution throughput gate: folding speed and the live-influence
# sweep overhead (<= 1.05x, asserted inside the bench) must stay within
# the noise band of the committed baseline.
echo
echo "==> attribution throughput gate (attribution_throughput vs committed baseline)"
BENCH_OUT="$coherence_dir/bench_profile.json" OMPOBS_DIR="$obs_dir" \
    cargo bench -p bench-harness --bench attribution_throughput
step cargo run --release -p bench-harness --bin bench-diff -- \
    --baseline BENCH_profile.json "$coherence_dir/bench_profile.json" --band 2.0

echo
echo "verify: all gates passed"
