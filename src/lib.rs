//! # omptune — evaluating tuning opportunities of an OpenMP-style runtime
//!
//! A comprehensive Rust reproduction of *"Evaluating Tuning Opportunities
//! of the LLVM/OpenMP Runtime"* (SC 2024). The paper sweeps seven
//! environment variables of the LLVM/OpenMP CPU runtime across 15
//! benchmarks on three HPC architectures (240k+ samples), then mines the
//! data with linear models for per-feature influence and tuning
//! recommendations.
//!
//! This facade crate re-exports the whole system:
//!
//! - [`core`] (`omptune-core`) — environment-variable model, ICV default
//!   derivation, configuration space, influence analysis, recommendations;
//! - [`rt`] (`omprt`) — a real executing mini OpenMP-style runtime
//!   (thread pool, schedules, barriers, reductions, work-stealing tasks);
//! - [`arch`] (`archsim`) — machine models of the three studied CPUs and
//!   the deterministic virtual-time substrate;
//! - [`sim`] (`simrt`) — the simulated runtime that executes workload
//!   models under a tuning configuration in virtual time;
//! - [`apps`] (`workloads`) — the paper's 15 benchmarks, as calibrated
//!   simulation models *and* verified real kernels;
//! - [`data`] (`sweep`) — the 240k-sample data-collection harness;
//! - [`stats`] (`mlstats`) — Wilcoxon, violins, linear & logistic
//!   regression;
//! - [`tel`] (`omptel`) — OMPT-style telemetry: runtime counters, region
//!   profiles, JSON-lines and Chrome-trace exporters, and the
//!   `omptel-report` "why was this slow" analysis.
//!
//! ## Quickstart
//!
//! ```
//! use omptune::core::{Arch, ConfigSpace, TuningConfig};
//!
//! // The exact search space the paper sweeps per setting:
//! assert_eq!(ConfigSpace::new(Arch::Skylake, 40).len(), 9216);
//! assert_eq!(ConfigSpace::new(Arch::A64fx, 48).len(), 4608);
//!
//! // Simulate one benchmark under the default configuration:
//! let app = omptune::apps::app("cg").unwrap();
//! let setting = omptune::apps::Setting { input_code: 0, num_threads: 96 };
//! let model = (app.model)(Arch::Milan, setting);
//! let cfg = TuningConfig::default_for(Arch::Milan, 96);
//! let result = omptune::sim::simulate(Arch::Milan, &cfg, &model, 0);
//! assert!(result.seconds() > 0.0);
//! ```
//!
//! See `examples/` for runnable scenarios and the `repro-tables` /
//! `repro-figures` binaries for the full paper reproduction.

pub use archsim as arch;
pub use mlstats as stats;
pub use omprt as rt;
pub use omptel as tel;
pub use omptune_core as core;
pub use simrt as sim;
pub use sweep as data;
pub use workloads as apps;
