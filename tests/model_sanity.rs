//! Broad sanity net over every (application × architecture × setting)
//! cell of the study: the calibrated models must produce physically
//! sensible, deterministic results under every class of configuration.

use omptune::core::{Arch, ConfigSpace, TuningConfig};

#[test]
fn every_cell_simulates_sanely() {
    for arch in Arch::ALL {
        for app in omptune::apps::apps_on(arch) {
            for setting in omptune::apps::settings_for(app, arch) {
                let model = (app.model)(arch, setting);
                let space = ConfigSpace::new(arch, setting.num_threads);
                let default = TuningConfig::default_for(arch, setting.num_threads);
                let base = omptune::sim::simulate(arch, &default, &model, 0).seconds();
                assert!(
                    base > 1e-6 && base < 100.0,
                    "{}/{}/{:?}: default runtime {base}s out of range",
                    arch.id(),
                    app.name,
                    setting
                );
                // A strided slice of the space: all speedups within
                // physical bounds (master-bind can be ~100x slower on
                // Milan, with memory multipliers on top; nothing should be
                // more than 6x faster).
                for config in space.iter().step_by(97) {
                    let t = omptune::sim::simulate(arch, &config, &model, 0).seconds();
                    let speedup = base / t;
                    assert!(
                        (1.0 / 500.0..=6.0).contains(&speedup),
                        "{}/{}/{:?}: speedup {speedup} for {}",
                        arch.id(),
                        app.name,
                        setting,
                        config.describe()
                    );
                }
            }
        }
    }
}

#[test]
fn input_size_scales_runtime_monotonically() {
    // Bigger input classes must take longer under the default config.
    for arch in Arch::ALL {
        for app in omptune::apps::apps_on(arch) {
            let settings = omptune::apps::settings_for(app, arch);
            let default = |s: omptune::apps::Setting| {
                let model = (app.model)(arch, s);
                let cfg = TuningConfig::default_for(arch, s.num_threads);
                omptune::sim::simulate(arch, &cfg, &model, 0).seconds()
            };
            // Input-varied apps: later settings are larger classes.
            // Thread-varied apps: later settings have more threads →
            // same-or-less time; skip those.
            if settings
                .iter()
                .all(|s| s.num_threads == settings[0].num_threads)
            {
                let times: Vec<f64> = settings.iter().map(|s| default(*s)).collect();
                for w in times.windows(2) {
                    assert!(
                        w[1] > w[0],
                        "{}/{}: class scaling broken: {times:?}",
                        arch.id(),
                        app.name
                    );
                }
            }
        }
    }
}

#[test]
fn more_threads_never_slow_down_defaults() {
    // For the thread-varied proxies, the default (unbound) config must
    // scale: full-machine runs no slower than quarter-machine runs.
    for arch in Arch::ALL {
        for app in omptune::apps::apps_on(arch) {
            let settings = omptune::apps::settings_for(app, arch);
            if settings
                .iter()
                .any(|s| s.num_threads != settings[0].num_threads)
            {
                let times: Vec<f64> = settings
                    .iter()
                    .map(|s| {
                        let model = (app.model)(arch, *s);
                        let cfg = TuningConfig::default_for(arch, s.num_threads);
                        omptune::sim::simulate(arch, &cfg, &model, 0).seconds()
                    })
                    .collect();
                assert!(
                    times.last().unwrap() <= times.first().unwrap(),
                    "{}/{}: thread scaling inverted: {times:?}",
                    arch.id(),
                    app.name
                );
            }
        }
    }
}

#[test]
fn icv_resolution_is_total_over_the_space() {
    // Every configuration resolves to a coherent ICV snapshot.
    for arch in Arch::ALL {
        let space = ConfigSpace::new(arch, arch.cores());
        for config in space.iter().step_by(61) {
            let icv = omptune::core::IcvState::resolve(arch, &config);
            assert_eq!(icv.nthreads, arch.cores());
            assert!(icv.align_alloc.is_power_of_two());
            let text = icv.display_env();
            assert!(text.contains("ENVIRONMENT BEGIN"));
        }
    }
}
