//! Integration tests of the real kernels running on the executing
//! runtime under *every* combination of the tuning knobs that affect
//! execution semantics — the cross-crate correctness net for `omprt` ×
//! `workloads`.

use omptune::core::{Arch, OmpSchedule, ReductionMethod, WaitPolicy};
use omptune::rt::{RuntimeConfig, ThreadPool};
use std::collections::BTreeMap;

const SCHEDULES: [OmpSchedule; 4] = [
    OmpSchedule::Static,
    OmpSchedule::Dynamic,
    OmpSchedule::Guided,
    OmpSchedule::Auto,
];

#[test]
fn cg_converges_under_every_schedule_and_method() {
    let a = omptune::apps::npb::cg::real::Laplacian2D::new(14);
    for threads in [1usize, 3, 4] {
        let pool = ThreadPool::with_defaults(threads);
        for schedule in SCHEDULES {
            for method in [
                ReductionMethod::Tree,
                ReductionMethod::Critical,
                ReductionMethod::Atomic,
            ] {
                let res = omptune::apps::npb::cg::real::run(&pool, schedule, method, &a, 30);
                assert!(
                    res < 1e-9,
                    "{threads}t/{schedule:?}/{method:?}: residual {res}"
                );
            }
        }
    }
}

#[test]
fn fft_roundtrips_under_every_schedule() {
    let pool = ThreadPool::with_defaults(4);
    for schedule in SCHEDULES {
        let original: Vec<(f64, f64)> = (0..16 * 32)
            .map(|k| ((k % 7) as f64, (k % 5) as f64))
            .collect();
        let mut data = original.clone();
        omptune::apps::npb::ft::real::fft_pass(&pool, schedule, &mut data, 16, 32, false);
        omptune::apps::npb::ft::real::fft_pass(&pool, schedule, &mut data, 16, 32, true);
        for (a, b) in data.iter().zip(&original) {
            assert!(
                (a.0 - b.0).abs() < 1e-9 && (a.1 - b.1).abs() < 1e-9,
                "{schedule:?}"
            );
        }
    }
}

#[test]
fn task_kernels_are_wait_policy_invariant() {
    // The wait policy changes *when* workers sleep, never *what* they
    // compute.
    let policies = [
        WaitPolicy::Passive,
        WaitPolicy::SpinThenSleep {
            millis: 1,
            yielding: true,
        },
        WaitPolicy::Active { yielding: false },
    ];
    let mut nq = Vec::new();
    let mut health = Vec::new();
    for policy in policies {
        let pool = ThreadPool::new(4, policy);
        nq.push(omptune::apps::bots::nqueens::real::run(&pool, 9));
        health.push(omptune::apps::bots::health::real::run(&pool, 2, 3, 40));
    }
    assert!(nq.iter().all(|v| *v == 352));
    assert!(health.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn sort_and_strassen_compose_on_one_pool() {
    // BOTS kernels share the pool back to back, as a real program would.
    let pool = ThreadPool::with_defaults(4);
    for round in 0..3 {
        let mut data = omptune::apps::bots::sort::real::input(50_000, round);
        omptune::apps::bots::sort::real::run(&pool, &mut data);
        assert!(data.windows(2).all(|w| w[0] <= w[1]), "round {round}");

        let a = omptune::apps::bots::strassen::real::Mat::deterministic(64, round);
        let b = omptune::apps::bots::strassen::real::Mat::deterministic(64, round + 7);
        let got = omptune::apps::bots::strassen::real::run(&pool, &a, &b);
        let expect = a.matmul_naive(&b);
        for (x, y) in got.data.iter().zip(&expect.data) {
            assert!((x - y).abs() < 1e-6);
        }
    }
}

#[test]
fn environment_driven_execution_matches_direct() {
    // Configure via the env-map path (as a downstream user would) and via
    // direct construction; results must agree.
    let env: BTreeMap<String, String> = [
        ("OMP_NUM_THREADS", "3"),
        ("OMP_SCHEDULE", "dynamic"),
        ("KMP_FORCE_REDUCTION", "atomic"),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), v.to_string()))
    .collect();
    let rc = RuntimeConfig::from_map(&env, Arch::Skylake, 3).expect("parses");
    let pool = rc.build_pool();
    let via_env = omptune::rt::parallel_reduce_sum(
        &pool,
        rc.config.schedule,
        rc.config.reduction_method(),
        10_000,
        |i| i as f64,
    );
    let pool2 = ThreadPool::with_defaults(3);
    let direct = omptune::rt::parallel_reduce_sum(
        &pool2,
        OmpSchedule::Dynamic,
        ReductionMethod::Atomic,
        10_000,
        |i| i as f64,
    );
    assert_eq!(via_env, direct);
    assert_eq!(via_env, 49_995_000.0);
}

#[test]
fn alignment_scores_stable_across_pool_sizes() {
    let score1 = {
        let p = ThreadPool::with_defaults(1);
        omptune::apps::bots::alignment::real::run(&p, 10, 32)
    };
    for threads in [2usize, 4] {
        let p = ThreadPool::with_defaults(threads);
        assert_eq!(
            omptune::apps::bots::alignment::real::run(&p, 10, 32),
            score1
        );
    }
}

#[test]
fn lulesh_physics_is_schedule_invariant_at_scale() {
    let run = |sched: OmpSchedule, threads: usize| {
        let pool = ThreadPool::with_defaults(threads);
        let mut s = omptune::apps::proxy::lulesh::real::State::new(256);
        for _ in 0..40 {
            s.step(&pool, sched, 1e-3);
        }
        (s.x, s.e)
    };
    let reference = run(OmpSchedule::Static, 1);
    for sched in SCHEDULES {
        for threads in [2usize, 4] {
            assert_eq!(run(sched, threads), reference, "{sched:?}/{threads}");
        }
    }
}
