//! End-to-end integration: sweep → dataset → analysis → recommendations,
//! across crate boundaries, verifying the paper's headline findings hold
//! in the reproduction.

use omptune::core::{
    influence_analysis, recommend_for, worst_trends, Arch, EffectiveBind, Feature, GroupBy,
    TuningConfig,
};
use omptune::data::{Dataset, Scope, SweepSpec};

fn small_dataset() -> Dataset {
    let spec = SweepSpec {
        scope: Scope::Strided(32),
        reps: 3,
        seed: 99,
        ..SweepSpec::default()
    };
    let mut batches = omptune::data::sweep_all(&spec);
    for b in &mut batches {
        omptune::data::clean(b, 3);
    }
    Dataset::build(&batches)
}

#[test]
fn pipeline_produces_nonempty_dataset_for_all_archs() {
    let ds = small_dataset();
    for (arch, apps, samples) in ds.table2() {
        assert!(samples > 1000, "{arch}: only {samples} samples");
        let expected_apps = omptune::apps::apps_on(arch).len();
        assert_eq!(apps, expected_apps, "{arch} app count");
    }
}

#[test]
fn nqueens_turnaround_is_the_headline_win() {
    // Paper Table VII: KMP_LIBRARY=turnaround wins NQueens on *all*
    // architectures, with speedups 2.342 - 4.851.
    let ds = small_dataset();
    for arch in Arch::ALL {
        let report =
            recommend_for(&ds.records, "nqueens", arch, 32, 0.6).expect("nqueens swept everywhere");
        assert!(
            report.best_speedup > 2.0 && report.best_speedup < 5.5,
            "{arch}: best {:.3}",
            report.best_speedup
        );
        assert!(
            report
                .recommendations
                .iter()
                .any(|r| r.variable == "KMP_LIBRARY" && r.value == "turnaround"),
            "{arch}: {:?}",
            report.recommendations
        );
    }
}

#[test]
fn xsbench_binding_wins_only_on_milan() {
    // Paper Table V: XSBench improves 2.6x on Milan, ~nothing elsewhere.
    let ds = small_dataset();
    let max_on = |arch: Arch| {
        omptune::core::app_arch_range(&ds.records, "xsbench", arch)
            .expect("xsbench present")
            .hi
    };
    assert!(
        max_on(Arch::Milan) > 2.0,
        "milan {:.3}",
        max_on(Arch::Milan)
    );
    assert!(
        max_on(Arch::A64fx) < 1.1,
        "a64fx {:.3}",
        max_on(Arch::A64fx)
    );
    assert!(
        max_on(Arch::Skylake) < 1.1,
        "skylake {:.3}",
        max_on(Arch::Skylake)
    );
}

#[test]
fn architecture_medians_are_ordered_like_the_paper() {
    // Paper Q1: milan (1.15) > skylake (1.065) > a64fx (1.02).
    let ds = small_dataset();
    let median = |arch: Arch| {
        omptune::core::arch_summary(&ds.records, arch)
            .expect("arch present")
            .median_improvement
    };
    let (fx, skl, mil) = (
        median(Arch::A64fx),
        median(Arch::Skylake),
        median(Arch::Milan),
    );
    assert!(mil > skl, "milan {mil:.3} vs skylake {skl:.3}");
    assert!(mil > fx, "milan {mil:.3} vs a64fx {fx:.3}");
    assert!(fx < 1.12, "a64fx median too high: {fx:.3}");
}

#[test]
fn worst_trend_is_master_binding_at_scale() {
    // Paper Q4.
    let ds = small_dataset();
    let trends = worst_trends(&ds.records, ds.records.len() / 100);
    assert!(
        trends[0].pattern.contains("master binding"),
        "top trend: {}",
        trends[0].pattern
    );
    assert!(trends[0].lift() > 3.0, "lift {:.2}", trends[0].lift());
}

#[test]
fn influence_analysis_ranks_knobs_like_figure3() {
    // Paper Fig. 3: NUM_THREADS / PROC_BIND lead; FORCE_REDUCTION and
    // ALIGN_ALLOC are nearly irrelevant at architecture grouping.
    let ds = small_dataset();
    let hm = influence_analysis(&ds.records, GroupBy::Architecture).expect("fits");
    for arch in Arch::ALL {
        let get = |f: Feature| hm.influence_of(arch.id(), f).expect("feature present");
        let leaders = get(Feature::NumThreads).max(get(Feature::ProcBind));
        assert!(
            leaders > get(Feature::ForceReduction),
            "{arch}: leaders {leaders:.3} vs force_reduction"
        );
        assert!(
            leaders > get(Feature::AlignAlloc),
            "{arch}: leaders {leaders:.3} vs align_alloc"
        );
        assert!(
            get(Feature::AlignAlloc) < 0.08,
            "{arch}: align influence too high"
        );
    }
}

#[test]
fn bots_task_apps_show_low_architecture_reliance() {
    // Paper Fig. 2 / Sec. V Q2: BOTS task applications "show very low
    // reliance on the architecture" — their tuning transfers — while
    // XSBench's optimum is Milan-specific.
    let ds = small_dataset();
    let hm = influence_analysis(&ds.records, GroupBy::Application).expect("fits");
    let arch_influence = |app: &str| {
        hm.influence_of(app, Feature::Architecture)
            .unwrap_or_else(|| panic!("{app} missing"))
    };
    assert!(
        arch_influence("nqueens") < arch_influence("xsbench"),
        "nqueens {:.3} vs xsbench {:.3}",
        arch_influence("nqueens"),
        arch_influence("xsbench")
    );
}

#[test]
fn linear_regression_fits_poorly_motivating_classification() {
    // Paper Sec. IV-D: the speedup distribution defeats OLS ("low
    // confidence scores associated with poor model fitting"), which is
    // why the analysis pivots to the classification surrogate.
    let ds = small_dataset();
    let fits = omptune::core::linear_fit_quality(&ds.records, GroupBy::Architecture).expect("fits");
    for (group, r2) in fits {
        assert!(r2 < 0.6, "{group}: OLS unexpectedly good (r2 = {r2:.3})");
    }
}

#[test]
fn default_configuration_is_rarely_far_from_optimal() {
    // Paper Sec. I: "all our benchmarks show a speedup potential compared
    // to the default configuration, albeit the default performs very well
    // across the board" — i.e. most samples are NOT faster than default.
    let ds = small_dataset();
    let faster = ds.records.iter().filter(|r| r.speedup > 1.01).count();
    let frac = faster as f64 / ds.records.len() as f64;
    assert!(frac < 0.5, "too many configs beat the default: {frac:.2}");
    assert!(frac > 0.02, "tuning potential vanished entirely: {frac:.3}");
}

#[test]
fn real_runtime_and_simulator_agree_on_the_master_bind_trend() {
    // Cross-substrate sanity: the simulator says master-binding at high
    // thread counts is catastrophic; the placement logic that the real
    // runtime exposes must show the oversubscription that causes it.
    let mut config = TuningConfig::default_for(Arch::Milan, 96);
    config.places = omptune::core::OmpPlaces::Cores;
    config.proc_bind = omptune::core::OmpProcBind::Master;
    assert_eq!(config.effective_bind(), EffectiveBind::Master);
    let placement = omptune::core::Placement::compute(Arch::Milan, &config);
    assert_eq!(placement.max_oversubscription(Arch::Milan, 96), 96.0);

    let app = omptune::apps::app("ep").expect("registered");
    let setting = omptune::apps::Setting {
        input_code: 0,
        num_threads: 96,
    };
    let model = (app.model)(Arch::Milan, setting);
    let bad = omptune::sim::simulate(Arch::Milan, &config, &model, 0).seconds();
    let good = omptune::sim::simulate(
        Arch::Milan,
        &TuningConfig::default_for(Arch::Milan, 96),
        &model,
        0,
    )
    .seconds();
    assert!(
        bad > 10.0 * good,
        "master bind must crater: {bad} vs {good}"
    );
}
