//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses:
//! `proptest!` test blocks with `pat in strategy` arguments, integer and
//! float range strategies, `Just`, `prop_oneof!`, `any::<T>()`,
//! `prop::collection::vec`, `prop_assert*!`, `prop_assume!`, and
//! `ProptestConfig::with_cases`.
//!
//! Differences from real proptest: inputs are drawn from a deterministic
//! per-test RNG (seeded from the test's module path and name) and there
//! is no shrinking — a failing case panics with the generated values'
//! Debug output where available via the assertion message.

pub mod test_runner {
    /// Per-test configuration. Only `cases` is honored.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Marker returned by `prop_assume!` rejections.
    #[derive(Debug)]
    pub struct Reject;

    /// Deterministic RNG (splitmix64) seeded from the test identity, so
    /// failures reproduce across runs without a persistence file.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a stable test identifier (FNV-1a of the name).
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h | 1 }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A value generator. Unlike real proptest there is no value tree or
    /// shrinking; `generate` draws one concrete value.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u128;
                    let off = (u128::from(rng.next_u64()) % width) as i128;
                    (self.start as i128 + off) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let width = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (u128::from(rng.next_u64()) % width) as i128;
                    (lo as i128 + off) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for ::std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.next_f64() * (hi - lo)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// Type-erased generator used by [`Union`] (`prop_oneof!`).
    pub type BoxedGen<T> = Box<dyn Fn(&mut TestRng) -> T>;

    /// Box a strategy into a [`BoxedGen`] — helper for `prop_oneof!`.
    pub fn boxed<S>(s: S) -> BoxedGen<S::Value>
    where
        S: Strategy + 'static,
    {
        Box::new(move |rng| s.generate(rng))
    }

    /// Uniformly picks one of several alternatives each draw.
    pub struct Union<T> {
        options: Vec<BoxedGen<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedGen<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            (self.options[idx])(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            // Finite, roughly log-uniform across magnitudes.
            let mag = (rng.next_f64() * 600.0) - 300.0;
            let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
            sign * 10f64.powf(mag / 10.0)
        }
    }

    /// Strategy over a type's full domain.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// `any::<T>()` — the full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count specification for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Generates a `Vec` of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    // `prop::collection::vec(...)` etc. resolve through this alias.
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests. Each function's arguments are drawn from the
/// given strategies `cases` times; `prop_assume!` rejections re-draw.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts = __config.cases.saturating_mul(20).max(1000);
            while __accepted < __config.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __max_attempts,
                    "too many prop_assume! rejections in {}",
                    stringify!($name),
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::Reject> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if __outcome.is_ok() {
                    __accepted += 1;
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Assert within a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Assert equality within a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Assert inequality within a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Reject the current case (it does not count toward `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::Reject);
        }
    };
}

/// Uniformly choose among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -5i32..5, f in 0.5f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn assume_rejects(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn oneof_and_vec(choice in prop_oneof![Just(1u8), Just(2u8)], xs in prop::collection::vec(0u32..10, 1..5)) {
            prop_assert!(choice == 1 || choice == 2);
            prop_assert!(!xs.is_empty() && xs.len() < 5);
            prop_assert!(xs.iter().all(|&v| v < 10));
        }

        #[test]
        fn any_u64_works(x in any::<u64>()) {
            let _ = x;
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
