//! Offline stand-in for `serde`.
//!
//! Real serde is a zero-cost visitor framework; this shim is a small
//! self-describing value model: types serialize into a [`Value`] tree and
//! deserialize back out of one. Formats (see the vendored `serde_json`)
//! convert between `Value` and bytes. That is all this workspace needs —
//! the derive macros and trait names line up with real serde so the
//! dependent code compiles unchanged.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree — the interchange format between typed
/// values and serialized bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` / unit.
    Unit,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Key/value pairs in insertion order (struct fields, maps).
    Map(Vec<(Value, Value)>),
}

impl Value {
    pub fn as_map(&self) -> Option<&[(Value, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric view; integers widen losslessly, `Unit` reads as NaN so
    /// that JSON `null` (how non-finite floats serialize) round-trips.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::I64(x) => Some(*x as f64),
            Value::U64(x) => Some(*x as f64),
            Value::Unit => Some(f64::NAN),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(x) => Some(*x),
            Value::U64(x) => i64::try_from(*x).ok(),
            Value::F64(x) if x.fract() == 0.0 && x.abs() < 9.0e18 => Some(*x as i64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(x) => Some(*x),
            Value::I64(x) => u64::try_from(*x).ok(),
            Value::F64(x) if x.fract() == 0.0 && *x >= 0.0 && *x < 1.9e19 => Some(*x as u64),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }

    pub fn expected(what: &str, ty: &str) -> Error {
        Error(format!("expected {what} while deserializing {ty}"))
    }

    pub fn unknown_variant(variant: &str, ty: &str) -> Error {
        Error(format!("unknown variant `{variant}` for enum {ty}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    fn serialize_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

/// Owned-deserialize alias, matching serde's generic bounds in format
/// crates.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

/// Derive-internal helper: look up and deserialize a named struct field.
pub fn __field<T: Deserialize>(map: &[(Value, Value)], name: &str) -> Result<T, Error> {
    for (k, v) in map {
        if k.as_str() == Some(name) {
            return T::deserialize_value(v);
        }
    }
    Err(Error::custom(format!("missing field `{name}`")))
}

// ---------------------------------------------------------------------------
// Impls for std types
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("bool", "bool"))
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_u64().ok_or_else(|| Error::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(raw).map_err(|_| Error::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_i64().ok_or_else(|| Error::expected("integer", stringify!($t)))?;
                <$t>::try_from(raw).map_err(|_| Error::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| Error::expected("number", "f32"))
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", "String"))
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::expected("string", "char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::expected("single-char string", "char")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            None => Value::Unit,
            Some(x) => x.serialize_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Unit => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let seq = v
            .as_seq()
            .ok_or_else(|| Error::expected("sequence", "Vec"))?;
        seq.iter().map(T::deserialize_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let seq = v
            .as_seq()
            .ok_or_else(|| Error::expected("sequence", "array"))?;
        if seq.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, got {}",
                seq.len()
            )));
        }
        let items: Result<Vec<T>, Error> = seq.iter().map(T::deserialize_value).collect();
        items.map(|v| v.try_into().expect("length checked above"))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let seq = v.as_seq().ok_or_else(|| Error::expected("sequence", "tuple"))?;
                let expect = [$($idx),+].len();
                if seq.len() != expect {
                    return Err(Error::custom(format!(
                        "expected tuple of length {expect}, got {}", seq.len())));
                }
                Ok(($($name::deserialize_value(&seq[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.serialize_value(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let map = v
            .as_map()
            .ok_or_else(|| Error::expected("map", "BTreeMap"))?;
        map.iter()
            .map(|(k, v)| Ok((K::deserialize_value(k)?, V::deserialize_value(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.serialize_value(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + std::hash::Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let map = v
            .as_map()
            .ok_or_else(|| Error::expected("map", "HashMap"))?;
        map.iter()
            .map(|(k, v)| Ok((K::deserialize_value(k)?, V::deserialize_value(v)?)))
            .collect()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        T::deserialize_value(v).map(Box::new)
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
