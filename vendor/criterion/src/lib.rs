//! Offline stand-in for `criterion`.
//!
//! Keeps the `criterion_group!`/`criterion_main!`/`BenchmarkGroup` API
//! surface this workspace's benches use, but replaces the statistical
//! engine with a simple timed loop: each benchmark runs a short warm-up,
//! then `sample_size` timed batches, and prints the per-iteration mean.
//! Under `cargo test` (harness-less bench binaries are executed as
//! tests) every benchmark still runs at least once, so benches act as
//! smoke tests without taking minutes.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export for convenience parity with real criterion.
pub use std::hint::black_box;

#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Settings {
        Settings {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

/// Benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.settings.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.settings.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into_benchmark_id().0, self.settings, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings,
            _parent: self,
        }
    }

    /// No-op; summaries print as benches run.
    pub fn final_summary(&mut self) {}
}

/// A named set of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_bench(&full, self.settings, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_bench(&full, self.settings, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion into a [`BenchmarkId`], so `bench_function` accepts plain
/// strings as well.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Throughput annotation (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples.push(start.elapsed());
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, settings: Settings, f: &mut F) {
    // Warm-up / calibration: run single iterations until the (capped)
    // warm-up budget is spent, to size the timed batches.
    let mut calib = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
    };
    let warm_start = Instant::now();
    let warm_budget = settings.warm_up_time.min(Duration::from_millis(200));
    loop {
        f(&mut calib);
        if warm_start.elapsed() >= warm_budget || calib.samples.len() >= 3 {
            break;
        }
    }
    let once = calib
        .samples
        .first()
        .copied()
        .unwrap_or_else(|| warm_start.elapsed());

    // Pick a per-sample iteration count that fits the measurement budget
    // across all samples, capped to keep `cargo test` runs quick.
    let budget = settings.measurement_time.max(Duration::from_millis(1));
    let per_sample = budget / settings.sample_size as u32;
    let iters = if once.is_zero() {
        1000
    } else {
        (per_sample.as_nanos() / once.as_nanos().max(1)).clamp(1, 100_000) as u64
    };

    let mut b = Bencher {
        iters_per_sample: iters,
        samples: Vec::new(),
    };
    for _ in 0..settings.sample_size {
        f(&mut b);
    }
    let total: Duration = b.samples.iter().sum();
    let total_iters = iters * b.samples.len().max(1) as u64;
    let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    println!("bench: {name:<50} {mean_ns:>14.1} ns/iter ({total_iters} iters)");
}

/// Define a benchmark group. Both the plain and the struct-like form of
/// real criterion are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define the bench binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(2).measurement_time(Duration::from_millis(5));
        g.bench_function(BenchmarkId::new("id", 3), |b| b.iter(|| black_box(3) * 2));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| x + 1)
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(5));
        sample_bench(&mut c);
    }
}
