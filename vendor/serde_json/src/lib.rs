//! Offline stand-in for `serde_json`: serializes the vendored serde's
//! [`Value`] model to JSON text and parses it back.
//!
//! Semantics notes:
//! - Non-finite floats emit `null` (matching real serde_json); the
//!   vendored serde reads `null` back as `NaN` for `f64`, so raw sweep
//!   batches containing failed (`NaN`) repetitions round-trip.
//! - Map keys that are not strings are emitted as their JSON text
//!   wrapped in a string (real serde_json rejects these; none occur in
//!   this workspace's data model).

use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::io::Write;

/// JSON serialization/parse error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error::new(e.to_string())
    }
}

/// Serialize `value` as JSON into `writer`.
pub fn to_writer<W: Write, T: ?Sized + Serialize>(mut writer: W, value: &T) -> Result<(), Error> {
    let text = to_string(value)?;
    writer
        .write_all(text.as_bytes())
        .map_err(|e| Error::new(e.to_string()))
}

/// Serialize `value` to a JSON string.
pub fn to_string<T: ?Sized + Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.serialize_value(), &mut out);
    Ok(out)
}

/// Serialize `value` to a human-indented JSON string.
pub fn to_string_pretty<T: ?Sized + Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit_pretty(&value.serialize_value(), &mut out, 0);
    Ok(out)
}

/// Deserialize a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::new(e.to_string()))?;
    from_str(text)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::deserialize_value(&v)?)
}

// ---------------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------------

fn emit(v: &Value, out: &mut String) {
    match v {
        Value::Unit => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => emit_f64(*x, out),
        Value::Str(s) => emit_str(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit_key(k, out);
                out.push(':');
                emit(val, out);
            }
            out.push('}');
        }
    }
}

fn emit_pretty(v: &Value, out: &mut String, indent: usize) {
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                emit_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                emit_key(k, out);
                out.push_str(": ");
                emit_pretty(val, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => emit(other, out),
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn emit_key(k: &Value, out: &mut String) {
    match k {
        Value::Str(s) => emit_str(s, out),
        other => {
            let mut inner = String::new();
            emit(other, &mut inner);
            emit_str(&inner, out);
        }
    }
}

fn emit_f64(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    let s = if x == x.trunc() && x.abs() < 1.0e15 {
        // Keep a float marker so the value parses back as F64.
        format!("{x:.1}")
    } else {
        format!("{x}")
    };
    out.push_str(&s);
}

fn emit_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Unit),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            entries.push((Value::Str(key), val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our emitter;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                // Multi-byte UTF-8: copy the full sequence through.
                b if b < 0x80 => out.push(b as char),
                _ => {
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let v: u64 = from_str(&to_string(&42u64).unwrap()).unwrap();
        assert_eq!(v, 42);
        let v: f64 = from_str(&to_string(&1.5f64).unwrap()).unwrap();
        assert_eq!(v, 1.5);
        let v: String = from_str(&to_string("he\"llo\n").unwrap()).unwrap();
        assert_eq!(v, "he\"llo\n");
    }

    #[test]
    fn integral_floats_stay_floats() {
        let s = to_string(&3.0f64).unwrap();
        assert_eq!(s, "3.0");
        let v: f64 = from_str(&s).unwrap();
        assert_eq!(v, 3.0);
    }

    #[test]
    fn nan_round_trips_via_null() {
        let s = to_string(&f64::NAN).unwrap();
        assert_eq!(s, "null");
        let v: f64 = from_str(&s).unwrap();
        assert!(v.is_nan());
    }

    #[test]
    fn vec_and_tuple_round_trip() {
        let data: Vec<(usize, f64)> = vec![(1, 0.5), (2, -3.25)];
        let s = to_string(&data).unwrap();
        let back: Vec<(usize, f64)> = from_str(&s).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn whitespace_tolerated() {
        let v: Vec<u32> = from_str(" [ 1 , 2 ,\n3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }
}
