//! Offline stand-in for `serde_derive`.
//!
//! Derives the vendored `serde` crate's value-model traits
//! (`Serialize`/`Deserialize`) for the shapes this workspace actually
//! uses: named-field structs, tuple structs, and enums with unit, tuple,
//! and struct variants. No `syn`/`quote` — the derive input is parsed
//! directly from the `proc_macro` token stream and the impls are emitted
//! as formatted source text.
//!
//! Unsupported shapes (generic types, unions) panic at expansion time
//! with a clear message rather than producing wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    gen_serialize(&shape)
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    gen_deserialize(&shape)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

enum Shape {
    /// `struct S { a: T, b: U }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct S(T, U);` — arity 1 is treated as a transparent newtype.
    TupleStruct { name: String, arity: usize },
    /// `struct S;`
    UnitStruct { name: String },
    /// `enum E { ... }`
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected type name, got {other:?}"),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!(
            "derive: generic types are not supported by the vendored serde_derive (type `{name}`)"
        );
    }

    match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct { name },
            other => panic!("derive: unexpected struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("derive: unexpected enum body for `{name}`: {other:?}"),
        },
        other => panic!("derive: `{other}` is not supported (type `{name}`)"),
    }
}

/// Advance past any `#[...]` attributes and a `pub` / `pub(...)` qualifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Skip a type expression up to (not including) the next top-level comma.
/// Only `<`/`>` need explicit depth tracking: parens/brackets arrive as
/// whole `Group` tokens.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("derive: expected `:` after field name, got {other:?}"),
        }
        skip_type(&tokens, &mut i);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut arity = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        arity += 1;
        skip_type(&tokens, &mut i);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("derive: explicit enum discriminants are not supported");
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

fn str_value(s: &str) -> String {
    format!("::serde::Value::Str(::std::string::String::from(\"{s}\"))")
}

fn gen_serialize(shape: &Shape) -> String {
    let (name, body) = match shape {
        Shape::NamedStruct { name, fields } => {
            let mut entries = String::new();
            for f in fields {
                let _ = write!(
                    entries,
                    "({}, ::serde::Serialize::serialize_value(&self.{f})),",
                    str_value(f)
                );
            }
            (name, format!("::serde::Value::Map(::std::vec![{entries}])"))
        }
        Shape::TupleStruct { name, arity: 1 } => (
            name,
            "::serde::Serialize::serialize_value(&self.0)".to_string(),
        ),
        Shape::TupleStruct { name, arity } => {
            let mut items = String::new();
            for idx in 0..*arity {
                let _ = write!(items, "::serde::Serialize::serialize_value(&self.{idx}),");
            }
            (name, format!("::serde::Value::Seq(::std::vec![{items}])"))
        }
        Shape::UnitStruct { name } => (name, "::serde::Value::Unit".to_string()),
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = write!(arms, "{name}::{vn} => {},", str_value(vn));
                    }
                    VariantKind::Tuple(1) => {
                        let _ = write!(
                            arms,
                            "{name}::{vn}(__f0) => ::serde::Value::Map(::std::vec![({}, \
                             ::serde::Serialize::serialize_value(__f0))]),",
                            str_value(vn)
                        );
                    }
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|k| format!("__f{k}")).collect();
                        let mut items = String::new();
                        for b in &binds {
                            let _ = write!(items, "::serde::Serialize::serialize_value({b}),");
                        }
                        let _ = write!(
                            arms,
                            "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![({}, \
                             ::serde::Value::Seq(::std::vec![{items}]))]),",
                            binds.join(","),
                            str_value(vn)
                        );
                    }
                    VariantKind::Named(fields) => {
                        let mut entries = String::new();
                        for f in fields {
                            let _ = write!(
                                entries,
                                "({}, ::serde::Serialize::serialize_value({f})),",
                                str_value(f)
                            );
                        }
                        let _ = write!(
                            arms,
                            "{name}::{vn} {{ {} }} => ::serde::Value::Map(::std::vec![({}, \
                             ::serde::Value::Map(::std::vec![{entries}]))]),",
                            fields.join(","),
                            str_value(vn)
                        );
                    }
                }
            }
            (name, format!("match self {{ {arms} }}"))
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn serialize_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

fn gen_named_build(path: &str, fields: &[String], map_expr: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        let _ = write!(inits, "{f}: ::serde::__field({map_expr}, \"{f}\")?,");
    }
    format!("::std::result::Result::Ok({path} {{ {inits} }})")
}

fn gen_deserialize(shape: &Shape) -> String {
    let (name, body) = match shape {
        Shape::NamedStruct { name, fields } => {
            let build = gen_named_build(name, fields, "__map");
            (
                name,
                format!(
                    "let __map = __v.as_map().ok_or_else(|| \
                     ::serde::Error::expected(\"map\", \"{name}\"))?; {build}"
                ),
            )
        }
        Shape::TupleStruct { name, arity: 1 } => (
            name,
            format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize_value(__v)?))"
            ),
        ),
        Shape::TupleStruct { name, arity } => {
            let mut items = String::new();
            for idx in 0..*arity {
                let _ = write!(
                    items,
                    "::serde::Deserialize::deserialize_value(&__seq[{idx}])?,"
                );
            }
            (
                name,
                format!(
                    "let __seq = __v.as_seq().ok_or_else(|| \
                     ::serde::Error::expected(\"seq\", \"{name}\"))?; \
                     if __seq.len() != {arity} {{ return ::std::result::Result::Err(\
                     ::serde::Error::expected(\"seq of len {arity}\", \"{name}\")); }} \
                     ::std::result::Result::Ok({name}({items}))"
                ),
            )
        }
        Shape::UnitStruct { name } => (
            name,
            format!("let _ = __v; ::std::result::Result::Ok({name})"),
        ),
        Shape::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut content_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = write!(
                            unit_arms,
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"
                        );
                        // Also accept the map form `{"Variant": null}`.
                        let _ = write!(
                            content_arms,
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"
                        );
                    }
                    VariantKind::Tuple(1) => {
                        let _ = write!(
                            content_arms,
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::deserialize_value(__content)?)),"
                        );
                    }
                    VariantKind::Tuple(arity) => {
                        let mut items = String::new();
                        for idx in 0..*arity {
                            let _ = write!(
                                items,
                                "::serde::Deserialize::deserialize_value(&__seq[{idx}])?,"
                            );
                        }
                        let _ = write!(
                            content_arms,
                            "\"{vn}\" => {{ let __seq = __content.as_seq().ok_or_else(|| \
                             ::serde::Error::expected(\"seq\", \"{name}::{vn}\"))?; \
                             if __seq.len() != {arity} {{ return ::std::result::Result::Err(\
                             ::serde::Error::expected(\"seq of len {arity}\", \"{name}::{vn}\")); }} \
                             ::std::result::Result::Ok({name}::{vn}({items})) }},"
                        );
                    }
                    VariantKind::Named(fields) => {
                        let build = gen_named_build(&format!("{name}::{vn}"), fields, "__vmap");
                        let _ = write!(
                            content_arms,
                            "\"{vn}\" => {{ let __vmap = __content.as_map().ok_or_else(|| \
                             ::serde::Error::expected(\"map\", \"{name}::{vn}\"))?; {build} }},"
                        );
                    }
                }
            }
            (
                name,
                format!(
                    "match __v {{ \
                     ::serde::Value::Str(__s) => match __s.as_str() {{ {unit_arms} \
                       __other => ::std::result::Result::Err(\
                       ::serde::Error::unknown_variant(__other, \"{name}\")), }}, \
                     ::serde::Value::Map(__entries) if __entries.len() == 1 => {{ \
                       let (__k, __content) = &__entries[0]; \
                       let __k = __k.as_str().ok_or_else(|| \
                       ::serde::Error::expected(\"string variant key\", \"{name}\"))?; \
                       match __k {{ {content_arms} \
                       __other => ::std::result::Result::Err(\
                       ::serde::Error::unknown_variant(__other, \"{name}\")), }} }}, \
                     _ => ::std::result::Result::Err(\
                       ::serde::Error::expected(\"enum representation\", \"{name}\")), }}"
                ),
            )
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn deserialize_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}"
    )
}
